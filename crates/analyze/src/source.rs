//! Pass 2 — the workspace source invariant checker.
//!
//! A lightweight line scanner (no parser, no new dependencies) enforcing the
//! contracts the simulation's reproducibility rests on:
//!
//! * **No wall clocks or entropy in determinism-critical crates.** The
//!   multi-seed harness promises byte-identical artifacts per seed; one
//!   `Instant::now()` or `thread_rng()` on a sim path silently breaks that.
//!   Profiling sites that feed telemetry (and never influence sim state) are
//!   acknowledged inline with `// fg-analyze: allow(wall-clock): <why>`.
//! * **No host-topology queries in determinism-critical crates.** A shard or
//!   worker count derived from `available_parallelism` makes the replay a
//!   function of the machine, not the seed; partitioning is configured
//!   through `ConcurrencyMode` instead.
//! * **`#![forbid(unsafe_code)]` in every crate root**, workspace and vendor
//!   alike. The single escape hatch is a root carrying both
//!   `// fg-analyze: allow(missing-forbid-unsafe): <why>` and
//!   `#![deny(unsafe_code)]` with scoped `#[allow]`s — required only by the
//!   signal-handler FFI shim, which `forbid` cannot express.
//! * **No SipHash maps in hot-path crates.** `fg_core::hash` (Fx) is
//!   mandated where map operations dominate the per-request budget
//!   (detection, mitigation).
//!
//! The scanner strips comments and string literals before matching, so prose
//! mentioning `Instant::now` never trips it; the allow-marker is read from
//! the comment part of the same line.

use crate::diag::{Diagnostic, Severity};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Stable lint ids for pass 2.
pub mod lints {
    /// `Instant::now` / `SystemTime` in a determinism-critical crate.
    pub const WALL_CLOCK: &str = "wall-clock";
    /// Entropy-seeded randomness in a determinism-critical crate.
    pub const ENTROPY_RNG: &str = "entropy-rng";
    /// Host-topology queries (`available_parallelism`, `num_cpus`) in a
    /// determinism-critical crate.
    pub const MACHINE_DEPENDENT: &str = "machine-dependent";
    /// Crate root missing `#![forbid(unsafe_code)]`.
    pub const MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
    /// `std::collections::HashMap`/`HashSet` in a hot-path crate where
    /// `fg_core::hash` is mandated.
    pub const STD_HASH_COLLECTIONS: &str = "std-hash-collections";
}

/// Crates whose behaviour must be a pure function of the seed.
pub const DETERMINISM_CRITICAL: &[&str] = &[
    "behavior",
    "core",
    "detection",
    "fingerprint",
    "inventory",
    "mitigation",
    "netsim",
    "scenario",
    "smsgw",
];

/// Crates where `fg_core::hash` is mandated for map-heavy request paths.
pub const HOT_PATH: &[&str] = &["detection", "mitigation"];

/// Workspace crates exempt from the determinism and hashing lints: telemetry
/// and benchmarking measure wall-clock by design, the analyzer itself names
/// the forbidden patterns, and the serving layer (`serve`) is where
/// determinism deliberately stops — request latency, socket timeouts, and
/// drain deadlines are wall-clock phenomena, while every decision it returns
/// still comes from the deterministic core underneath.
/// (`#![forbid(unsafe_code)]` still applies to all of them.)
pub const EXEMPT: &[&str] = &["analyze", "bench", "serve", "telemetry"];

/// The per-lint pattern classes shared with the taint pass ([`crate::taint`]),
/// which uses them both to seed direct taint and to verify that inline allow
/// markers still match the line they waive.
pub fn pattern_classes() -> [(&'static str, &'static [&'static str]); 4] {
    [
        (lints::WALL_CLOCK, WALL_CLOCK_PATTERNS),
        (lints::ENTROPY_RNG, ENTROPY_PATTERNS),
        (lints::MACHINE_DEPENDENT, MACHINE_DEPENDENT_PATTERNS),
        (lints::STD_HASH_COLLECTIONS, STD_HASH_PATTERNS),
    ]
}

const WALL_CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime"];
const ENTROPY_PATTERNS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "rand::random"];
// Host-topology queries make shard/worker counts follow the machine, so the
// same seed would replay differently on different hardware. Shard counts must
// come from config (`ConcurrencyMode`), never from the host.
const MACHINE_DEPENDENT_PATTERNS: &[&str] = &["available_parallelism", "num_cpus"];
const STD_HASH_PATTERNS: &[&str] = &[
    "HashMap::new(",
    "HashSet::new(",
    "HashMap::with_capacity(",
    "HashSet::with_capacity(",
    "collections::HashMap",
    "collections::HashSet",
];

/// Scans every workspace crate under `root` (both `crates/` and `vendor/`)
/// and returns the findings. Paths in diagnostics are root-relative.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for tree in ["crates", "vendor"] {
        let dir = root.join(tree);
        let mut crates: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for crate_dir in crates {
            let crate_name = crate_dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            let src = crate_dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&src, &mut files)?;
            files.sort();
            for file in files {
                let content = fs::read_to_string(&file)?;
                let rel = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                // Vendored subsets are third-party idiom kept API-compatible;
                // only the unsafe-code contract applies to them.
                let name_for_rules = if tree == "vendor" {
                    "vendor"
                } else {
                    &crate_name
                };
                diags.extend(scan_file(name_for_rules, &rel, &content));
            }
        }
    }
    Ok(diags)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans one file's content under the rules for `crate_name`. `path` is used
/// only for diagnostic spans, so fixtures can pass any label.
pub fn scan_file(crate_name: &str, path: &str, content: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // A crate root may trade `forbid` down to `deny` only when it both says
    // so with an allow-marker and actually carries the `deny` attribute —
    // the single FFI shim (`vendor/unix-signal`) needs scoped
    // `#[allow(unsafe_code)]` blocks, which `forbid` cannot coexist with.
    let unsafe_waived = content.contains("fg-analyze: allow(missing-forbid-unsafe)")
        && content.contains("#![deny(unsafe_code)]");
    if path.ends_with("src/lib.rs")
        && !content.contains("#![forbid(unsafe_code)]")
        && !unsafe_waived
    {
        diags.push(Diagnostic::new(
            lints::MISSING_FORBID_UNSAFE,
            Severity::Deny,
            path,
            "crate root does not `#![forbid(unsafe_code)]`",
        ));
    }

    let critical = DETERMINISM_CRITICAL.contains(&crate_name);
    let hot = HOT_PATH.contains(&crate_name);
    if !critical && !hot {
        return diags;
    }

    for (idx, view) in crate::lexer::strip_lines(content).iter().enumerate() {
        let line_no = idx + 1;
        let (code, comment) = (&view.code, &view.comment);
        let allow = |lint: &str| comment.contains(&format!("fg-analyze: allow({lint})"));

        if critical {
            for pat in WALL_CLOCK_PATTERNS {
                if code.contains(pat) && !allow(lints::WALL_CLOCK) {
                    diags.push(
                        Diagnostic::new(
                            lints::WALL_CLOCK,
                            Severity::Deny,
                            format!("{path}:{line_no}"),
                            format!(
                                "`{pat}` in determinism-critical crate `{crate_name}`: \
                                 wall-clock reads break byte-identical multi-seed runs"
                            ),
                        )
                        .note("pattern", pat)
                        .note("crate", crate_name),
                    );
                    break;
                }
            }
            for pat in ENTROPY_PATTERNS {
                if code.contains(pat) && !allow(lints::ENTROPY_RNG) {
                    diags.push(
                        Diagnostic::new(
                            lints::ENTROPY_RNG,
                            Severity::Deny,
                            format!("{path}:{line_no}"),
                            format!(
                                "`{pat}` in determinism-critical crate `{crate_name}`: \
                                 all randomness must derive from the run seed"
                            ),
                        )
                        .note("pattern", pat)
                        .note("crate", crate_name),
                    );
                    break;
                }
            }
            for pat in MACHINE_DEPENDENT_PATTERNS {
                if code.contains(pat) && !allow(lints::MACHINE_DEPENDENT) {
                    diags.push(
                        Diagnostic::new(
                            lints::MACHINE_DEPENDENT,
                            Severity::Deny,
                            format!("{path}:{line_no}"),
                            format!(
                                "`{pat}` in determinism-critical crate `{crate_name}`: \
                                 shard and worker counts must come from config, \
                                 not the host's core count"
                            ),
                        )
                        .note("pattern", pat)
                        .note("crate", crate_name),
                    );
                    break;
                }
            }
        }
        if hot {
            for pat in STD_HASH_PATTERNS {
                if code.contains(pat) && !allow(lints::STD_HASH_COLLECTIONS) {
                    diags.push(
                        Diagnostic::new(
                            lints::STD_HASH_COLLECTIONS,
                            Severity::Warn,
                            format!("{path}:{line_no}"),
                            format!(
                                "std SipHash collections in hot-path crate \
                                 `{crate_name}`: use `fg_core::hash::FxHashMap`/`FxHashSet`"
                            ),
                        )
                        .note("pattern", pat)
                        .note("crate", crate_name),
                    );
                    break;
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.lint.as_str()).collect()
    }

    #[test]
    fn wall_clock_fires_in_critical_crates_only() {
        let code = "let t = std::time::Instant::now();\n";
        assert_eq!(
            lints_of(&scan_file("detection", "x.rs", code)),
            vec![lints::WALL_CLOCK]
        );
        assert!(scan_file("telemetry", "x.rs", code).is_empty());
        assert!(scan_file("vendor", "x.rs", code).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_its_line_only() {
        let code = "let t = Instant::now(); // fg-analyze: allow(wall-clock): profiling\n\
                    let u = Instant::now();\n";
        let diags = scan_file("scenario", "x.rs", code);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].source.ends_with(":2"));
    }

    #[test]
    fn entropy_rng_fires() {
        for pat in ["rand::thread_rng()", "StdRng::from_entropy()", "OsRng"] {
            let code = format!("let r = {pat};\n");
            assert_eq!(
                lints_of(&scan_file("behavior", "x.rs", &code)),
                vec![lints::ENTROPY_RNG],
                "{pat}"
            );
        }
        // Seeded RNG is the contract, not a violation.
        assert!(scan_file("behavior", "x.rs", "StdRng::seed_from_u64(7)\n").is_empty());
    }

    #[test]
    fn machine_dependent_queries_fire_in_critical_crates_only() {
        for pat in ["std::thread::available_parallelism()", "num_cpus::get()"] {
            let code = format!("let n = {pat};\n");
            assert_eq!(
                lints_of(&scan_file("scenario", "x.rs", &code)),
                vec![lints::MACHINE_DEPENDENT],
                "{pat}"
            );
            // The bench harness may size its worker pool from the host.
            assert!(scan_file("bench", "x.rs", &code).is_empty(), "{pat}");
        }
        // A config-driven shard count is the contract, not a violation.
        assert!(scan_file("scenario", "x.rs", "let n = config.shards.max(1);\n").is_empty());
    }

    #[test]
    fn std_hash_collections_fire_only_in_hot_path_crates() {
        let code = "let m: HashMap<u32, u32> = HashMap::new();\n";
        assert_eq!(
            lints_of(&scan_file("mitigation", "x.rs", code)),
            vec![lints::STD_HASH_COLLECTIONS]
        );
        // behavior is determinism-critical but not hash-mandated.
        assert!(scan_file("behavior", "x.rs", code).is_empty());
        let import = "use std::collections::HashMap;\n";
        assert_eq!(
            lints_of(&scan_file("detection", "x.rs", import)),
            vec![lints::STD_HASH_COLLECTIONS]
        );
    }

    #[test]
    fn missing_forbid_unsafe_is_deny_for_lib_roots() {
        let diags = scan_file("newcrate", "crates/newcrate/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(lints_of(&diags), vec![lints::MISSING_FORBID_UNSAFE]);
        assert_eq!(diags[0].severity, Severity::Deny);
        // Non-root files are not required to repeat it.
        assert!(scan_file("newcrate", "crates/newcrate/src/other.rs", "fn f() {}\n").is_empty());
        // A compliant root passes.
        assert!(scan_file(
            "newcrate",
            "crates/newcrate/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_waiver_needs_both_marker_and_deny() {
        // Marker + deny: the scoped-FFI escape hatch.
        assert!(scan_file(
            "unix-signal",
            "vendor/unix-signal/src/lib.rs",
            "// fg-analyze: allow(missing-forbid-unsafe): scoped FFI shim\n\
             #![deny(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
        // Marker alone is not enough...
        assert_eq!(
            lints_of(&scan_file(
                "unix-signal",
                "vendor/unix-signal/src/lib.rs",
                "// fg-analyze: allow(missing-forbid-unsafe): scoped FFI shim\npub fn f() {}\n"
            )),
            vec![lints::MISSING_FORBID_UNSAFE]
        );
        // ...and neither is `deny` alone.
        assert_eq!(
            lints_of(&scan_file(
                "unix-signal",
                "vendor/unix-signal/src/lib.rs",
                "#![deny(unsafe_code)]\npub fn f() {}\n"
            )),
            vec![lints::MISSING_FORBID_UNSAFE]
        );
    }

    #[test]
    fn comments_and_strings_do_not_trip_patterns() {
        let code = "// Instant::now is forbidden here\n\
                    /* SystemTime too,\n\
                       across lines */\n\
                    let s = \"thread_rng\";\n\
                    let ok = 1;\n";
        assert!(
            scan_file("detection", "x.rs", code).is_empty(),
            "prose is not code"
        );
    }

    #[test]
    fn raw_strings_do_not_trip_patterns() {
        // The pass-1 stripper treated `r#"..."#` like a plain string and got
        // derailed by the unescaped interior quote; pattern text smuggled in a
        // raw string must stay invisible, and real code after it must not.
        let code = "let doc = r#\"call Instant::now() to \"time\" it\"#;\n\
                    let multi = r##\"thread_rng\n\
                    spans \"lines\" too\"##;\n\
                    let ok = 1;\n";
        assert!(
            scan_file("detection", "x.rs", code).is_empty(),
            "raw-string contents are not code"
        );
        let trailing = "let doc = r#\"no \"clock\" here\"#; let t = Instant::now();\n";
        assert_eq!(
            lints_of(&scan_file("detection", "x.rs", trailing)),
            vec![lints::WALL_CLOCK],
            "code after a raw string on the same line is still scanned"
        );
    }

    #[test]
    fn nested_block_comments_do_not_trip_patterns() {
        // Rust block comments nest; a naive depth counter that misses the
        // inner `/*` would resurface the tail of the outer comment as code.
        let code = "/* outer /* Instant::now() inner */ still comment */\n\
                    let ok = 1;\n\
                    /* a /* b /* SystemTime::now() */ c */ d */ let t = Instant::now();\n";
        assert_eq!(
            lints_of(&scan_file("detection", "x.rs", code)),
            vec![lints::WALL_CLOCK],
            "only the real call after the fully closed comment fires"
        );
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_scanner() {
        let code = "fn f<'a>(x: &'a str) -> char { let q = '\"'; let t = Instant::now(); q }\n";
        assert_eq!(
            lints_of(&scan_file("detection", "x.rs", code)),
            vec![lints::WALL_CLOCK]
        );
    }

    #[test]
    fn workspace_is_clean_under_the_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = scan_workspace(&root).expect("workspace scan reads all sources");
        assert!(
            diags.is_empty(),
            "source invariants violated:\n{}",
            crate::diag::render_pretty(&diags)
        );
    }
}
