//! The `fg-analyze` binary: run every analysis pass and gate on severity.
//!
//! ```text
//! fg-analyze [--json | --sarif] [--filter SUBSTR] [--deny info|warn|deny]
//!            [--root PATH] [--baseline FILE] [--bless-baseline FILE]
//! ```
//!
//! * `--json` — emit the diagnostics as a JSON array (CI artifact) instead
//!   of the pretty report.
//! * `--sarif` — emit the diagnostics as a SARIF 2.1.0 log instead of the
//!   pretty report (CI uploads this for SARIF viewers).
//! * `--filter SUBSTR` — keep only diagnostics whose lint id or source
//!   contains `SUBSTR`.
//! * `--deny LEVEL` — exit non-zero if any unwaived diagnostic is at or
//!   above `LEVEL` (default `deny`).
//! * `--root PATH` — workspace root for the source pass (defaults to the
//!   workspace this binary was built from).
//! * `--baseline FILE` — also compare against a committed
//!   `ANALYZE_baseline.json` and exit non-zero on any new `(lint, file)`
//!   finding, regardless of severity (the "no new diagnostics" ratchet).
//! * `--bless-baseline FILE` — write the current report as the new baseline
//!   instead of gating.
//!
//! Exit codes: `0` clean, `1` gate or baseline failed, `2` usage error.

#![forbid(unsafe_code)]

use fg_analyze::{full_report, render_json, render_pretty, render_sarif, Baseline, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

enum Output {
    Pretty,
    Json,
    Sarif,
}

struct Args {
    output: Output,
    filter: Option<String>,
    deny: Severity,
    root: PathBuf,
    baseline: Option<PathBuf>,
    bless: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: fg-analyze [--json | --sarif] [--filter SUBSTR] [--deny info|warn|deny] \
     [--root PATH] [--baseline FILE] [--bless-baseline FILE]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        output: Output::Pretty,
        filter: None,
        deny: Severity::Deny,
        root: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        baseline: None,
        bless: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.output = Output::Json,
            "--sarif" => args.output = Output::Sarif,
            "--filter" => {
                args.filter = Some(it.next().ok_or("--filter needs a value")?);
            }
            "--deny" => {
                let level = it.next().ok_or("--deny needs a value")?;
                args.deny =
                    Severity::parse(&level).ok_or_else(|| format!("unknown severity {level:?}"))?;
            }
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--bless-baseline" => {
                args.bless = Some(PathBuf::from(
                    it.next().ok_or("--bless-baseline needs a value")?,
                ));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut diags = match full_report(&args.root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(filter) = &args.filter {
        diags.retain(|d| d.lint.contains(filter.as_str()) || d.source.contains(filter.as_str()));
    }

    if let Some(path) = &args.bless {
        let baseline = Baseline::from_diags(&diags);
        if let Err(e) = std::fs::write(path, baseline.render()) {
            eprintln!("error: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "fg-analyze: blessed {} finding(s) in {} bucket(s) to {}",
            diags.len(),
            baseline.entries.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    match args.output {
        Output::Json => println!("{}", render_json(&diags)),
        Output::Sarif => println!("{}", render_sarif(&diags)),
        Output::Pretty => print!("{}", render_pretty(&diags)),
    }

    let mut failed = false;
    if let Some(path) = &args.baseline {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Baseline::parse(&text));
        match baseline {
            Ok(baseline) => {
                let cmp = baseline.compare(&diags);
                for stale in &cmp.stale {
                    eprintln!("fg-analyze: baseline entry now stale (re-bless): {stale}");
                }
                if !cmp.regressions.is_empty() {
                    for regression in &cmp.regressions {
                        eprintln!("fg-analyze: new diagnostic over baseline: {regression}");
                    }
                    eprintln!(
                        "fg-analyze: {} bucket(s) regressed vs {} — if intentional, \
                         re-bless with --bless-baseline",
                        cmp.regressions.len(),
                        path.display()
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let gating = diags.iter().filter(|d| d.gates_at(args.deny)).count();
    if gating > 0 {
        eprintln!(
            "fg-analyze: {gating} diagnostic(s) at or above --deny {}",
            args.deny
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
