//! The `fg-analyze` binary: run both analysis passes and gate on severity.
//!
//! ```text
//! fg-analyze [--json] [--filter SUBSTR] [--deny info|warn|deny] [--root PATH]
//! ```
//!
//! * `--json` — emit the diagnostics as a JSON array (CI artifact) instead
//!   of the pretty report.
//! * `--filter SUBSTR` — keep only diagnostics whose lint id or source
//!   contains `SUBSTR`.
//! * `--deny LEVEL` — exit non-zero if any unwaived diagnostic is at or
//!   above `LEVEL` (default `deny`).
//! * `--root PATH` — workspace root for the source pass (defaults to the
//!   workspace this binary was built from).
//!
//! Exit codes: `0` clean, `1` gate failed, `2` usage error.

#![forbid(unsafe_code)]

use fg_analyze::{full_report, render_json, render_pretty, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    json: bool,
    filter: Option<String>,
    deny: Severity,
    root: PathBuf,
}

fn usage() -> &'static str {
    "usage: fg-analyze [--json] [--filter SUBSTR] [--deny info|warn|deny] [--root PATH]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        filter: None,
        deny: Severity::Deny,
        root: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--filter" => {
                args.filter = Some(it.next().ok_or("--filter needs a value")?);
            }
            "--deny" => {
                let level = it.next().ok_or("--deny needs a value")?;
                args.deny =
                    Severity::parse(&level).ok_or_else(|| format!("unknown severity {level:?}"))?;
            }
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut diags = match full_report(&args.root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("error: cannot scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(filter) = &args.filter {
        diags.retain(|d| d.lint.contains(filter.as_str()) || d.source.contains(filter.as_str()));
    }

    if args.json {
        println!("{}", render_json(&diags));
    } else {
        print!("{}", render_pretty(&diags));
    }

    let gating = diags.iter().filter(|d| d.gates_at(args.deny)).count();
    if gating > 0 {
        eprintln!(
            "fg-analyze: {gating} diagnostic(s) at or above --deny {}",
            args.deny
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
