//! SARIF 2.1.0 rendering of [`Diagnostic`]s.
//!
//! CI uploads the `fg-analyze --sarif` output as an artifact so findings can
//! be browsed by any SARIF viewer (editors, code-scanning UIs) without
//! knowing this workspace's diagnostic model. The mapping is deliberately
//! small:
//!
//! * each distinct lint id becomes one `rule` in the tool's driver, with the
//!   lint's worst observed severity as its `defaultConfiguration.level`;
//! * each diagnostic becomes one `result` — `deny` → `error`, `warn` →
//!   `warning`, `info` → `note`;
//! * a `path:line` source becomes a `physicalLocation` with a `startLine`
//!   region; a logical source (`spec:ablation/traditional`) becomes a
//!   `logicalLocations` entry;
//! * waived findings carry a `suppressions` entry (kind `inSource`) with the
//!   waiver reason as its justification, so viewers show them as suppressed
//!   rather than open;
//! * the explanation map lands verbatim under `properties`, preserving the
//!   machine-readable facts behind each verdict.

use crate::diag::{Diagnostic, Severity};
use serde::value::Value;

/// Splits a diagnostic source into its file part and an optional line
/// number. `"crates/x/src/y.rs:12"` → `("crates/x/src/y.rs", Some(12))`;
/// logical sources like `"spec:ablation/traditional"` have no numeric
/// suffix and come back whole.
pub fn split_source(source: &str) -> (&str, Option<usize>) {
    match source.rsplit_once(':') {
        Some((file, line)) => match line.parse::<usize>() {
            Ok(n) => (file, Some(n)),
            Err(_) => (source, None),
        },
        None => (source, None),
    }
}

fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Deny => "error",
        Severity::Warn => "warning",
        Severity::Info => "note",
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::String(text.to_owned())
}

fn rules(diags: &[Diagnostic]) -> Value {
    // One rule per lint id, at the worst severity observed for that lint.
    let mut worst: Vec<(&str, Severity)> = Vec::new();
    for d in diags {
        match worst.iter_mut().find(|(lint, _)| *lint == d.lint) {
            Some((_, sev)) => *sev = (*sev).max(d.severity),
            None => worst.push((&d.lint, d.severity)),
        }
    }
    worst.sort_by_key(|&(lint, _)| lint);
    Value::Array(
        worst
            .into_iter()
            .map(|(lint, sev)| {
                obj(vec![
                    ("id", s(lint)),
                    ("defaultConfiguration", obj(vec![("level", s(level(sev)))])),
                ])
            })
            .collect(),
    )
}

fn location(source: &str) -> Value {
    let (file, line) = split_source(source);
    match line {
        Some(n) => obj(vec![(
            "physicalLocation",
            obj(vec![
                ("artifactLocation", obj(vec![("uri", s(file))])),
                ("region", obj(vec![("startLine", Value::Int(n as i64))])),
            ]),
        )]),
        None => obj(vec![(
            "logicalLocations",
            Value::Array(vec![obj(vec![("fullyQualifiedName", s(source))])]),
        )]),
    }
}

fn result(d: &Diagnostic) -> Value {
    let mut fields = vec![
        ("ruleId", s(&d.lint)),
        ("level", s(level(d.severity))),
        ("message", obj(vec![("text", s(&d.message))])),
        ("locations", Value::Array(vec![location(&d.source)])),
    ];
    if d.waived {
        let justification = d.waive_reason.as_deref().unwrap_or("no reason given");
        fields.push((
            "suppressions",
            Value::Array(vec![obj(vec![
                ("kind", s("inSource")),
                ("justification", s(justification)),
            ])]),
        ));
    }
    if !d.explanation.is_empty() {
        fields.push((
            "properties",
            Value::Object(
                d.explanation
                    .iter()
                    .map(|(k, v)| (k.clone(), s(v)))
                    .collect(),
            ),
        ));
    }
    obj(fields)
}

/// Renders diagnostics as a SARIF 2.1.0 log (one run, stable ordering).
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let driver = obj(vec![
        ("name", s("fg-analyze")),
        (
            "informationUri",
            s("https://github.com/featureguard/featureguard"),
        ),
        ("rules", rules(diags)),
    ]);
    let run = obj(vec![
        ("tool", obj(vec![("driver", driver)])),
        ("results", Value::Array(diags.iter().map(result).collect())),
    ]);
    let log = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        ("runs", Value::Array(vec![run])),
    ]);
    serde_json::to_string_pretty(&log).expect("SARIF tree serializes infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                "panic-path",
                Severity::Deny,
                "crates/serve/src/server.rs:12",
                "unwrap on the request path",
            )
            .note("operation", ".unwrap()"),
            Diagnostic::new(
                "limiter-never-fires",
                Severity::Warn,
                "spec:ablation/traditional",
                "rate limit cannot fire",
            )
            .waived("paper-accurate misconfiguration"),
            Diagnostic::new(
                "partial-op",
                Severity::Info,
                "crates/core/src/lib.rs:3",
                "slice index",
            ),
        ]
    }

    #[test]
    fn source_splitting_distinguishes_spans_from_logical_names() {
        assert_eq!(
            split_source("crates/x/src/y.rs:12"),
            ("crates/x/src/y.rs", Some(12))
        );
        assert_eq!(
            split_source("spec:ablation/traditional"),
            ("spec:ablation/traditional", None)
        );
        assert_eq!(split_source("serve:policy"), ("serve:policy", None));
    }

    #[test]
    fn sarif_log_has_schema_rules_and_mapped_levels() {
        let sarif = render_sarif(&sample());
        let v: Value = serde_json::from_str(&sarif).expect("self-produced SARIF parses");
        assert_eq!(v.get("version").and_then(Value::as_str), Some("2.1.0"));
        let run = &v.get("runs").unwrap().as_array().unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(rules.len(), 3, "one rule per distinct lint id");
        let results = run.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].get("level").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            results[2].get("level").and_then(Value::as_str),
            Some("note")
        );
    }

    #[test]
    fn physical_and_logical_locations_are_both_emitted() {
        let sarif = render_sarif(&sample());
        let v: Value = serde_json::from_str(&sarif).unwrap();
        let results = v.get("runs").unwrap().as_array().unwrap()[0]
            .get("results")
            .and_then(Value::as_array)
            .unwrap();
        let physical = &results[0].get("locations").unwrap().as_array().unwrap()[0];
        let region = physical
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .unwrap();
        assert_eq!(region.get("startLine").and_then(Value::as_i64), Some(12));
        let logical = &results[1].get("locations").unwrap().as_array().unwrap()[0];
        assert!(logical.get("logicalLocations").is_some());
    }

    #[test]
    fn waived_findings_become_suppressions() {
        let sarif = render_sarif(&sample());
        let v: Value = serde_json::from_str(&sarif).unwrap();
        let results = v.get("runs").unwrap().as_array().unwrap()[0]
            .get("results")
            .and_then(Value::as_array)
            .unwrap();
        let supp = results[1]
            .get("suppressions")
            .and_then(Value::as_array)
            .expect("waived result is suppressed");
        assert_eq!(
            supp[0].get("justification").and_then(Value::as_str),
            Some("paper-accurate misconfiguration")
        );
        assert!(results[0].get("suppressions").is_none());
    }
}
