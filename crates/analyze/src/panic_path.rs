//! Pass 5 — the fg-serve request-path panic surface.
//!
//! The serving layer's contract (DESIGN.md, "fg-serve") is that a malformed
//! or adversarial request can never take down a worker: every request-path
//! failure becomes a 4xx/5xx answer. `catch_unwind` in the worker loop is
//! the airbag, not the seatbelt — this pass enforces the seatbelt
//! statically. Starting from the request-path entry points
//! ([`ENTRY_POINTS`]: the connection handler, `/v1/decide`, `/v1/report`,
//! and hot-reload apply), every function reachable through the
//! [`crate::callgraph::CallGraph`] is scanned for panic sites:
//!
//! * [`Severity::Deny`] — `.unwrap()`, `.expect(…)`, `panic!`, `todo!`,
//!   `unimplemented!`: an explicit decision to crash. Waivable only with
//!   `// fg-analyze: allow(panic-path): <why>` (the sanctioned reasons are
//!   boot-only paths and invariants the type system cannot carry).
//! * [`Severity::Warn`] — `unreachable!`: an impossibility claim; the pass
//!   keeps it visible because "impossible" inputs are exactly what abuse
//!   traffic supplies.
//! * [`Severity::Info`] — `partial-op`: slice indexing and `/` / `%` with a
//!   non-literal divisor. Individually reviewed, collectively tracked by
//!   the committed diagnostics baseline rather than gated, because an
//!   index proven in range two lines up is not a defect.
//!
//! Every finding carries the witness chain (`entry → … → fn`) so the
//! reviewer can see *how* the handler reaches the site. The call graph
//! over-approximates (same-named methods conflate), so a finding is a
//! question, not a verdict — but the workspace answers every question
//! either by removing the panic or waiving it with a reason.

use crate::callgraph::{CallGraph, Workspace};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{LineIndex, TokKind};

/// Stable lint ids for the panic-surface pass.
pub mod lints {
    /// A panicking operation reachable from a request-path entry point.
    pub const PANIC_PATH: &str = "panic-path";
    /// A partial operation (indexing, division) on the request path.
    pub const PARTIAL_OP: &str = "partial-op";
}

/// Crate-qualified suffixes of the fg-serve request-path entry points.
/// `accept_loop`/`worker_loop`/`shed` are covered transitively through
/// `handle_connection`; `try_reload` is the hot-reload apply path driven by
/// both SIGHUP and the config watcher.
pub const ENTRY_POINTS: &[&str] = &[
    "serve::handle_connection",
    "serve::accept_loop",
    "serve::worker_loop",
    "serve::shed",
    "serve::watch_loop",
    "serve::ServeState::decide",
    "serve::ServeState::report",
    "serve::ServeState::try_reload",
];

/// Macro names that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Runs the pass over every function reachable from [`ENTRY_POINTS`].
pub fn run(ws: &Workspace, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut entries = Vec::new();
    let mut diags = Vec::new();
    for suffix in ENTRY_POINTS {
        match graph.find(ws, suffix) {
            Some(id) => entries.push(id),
            None => diags.push(Diagnostic::new(
                lints::PANIC_PATH,
                Severity::Deny,
                format!("entry:{suffix}"),
                format!(
                    "request-path entry point `{suffix}` not found in the call \
                     graph: the panic-surface pass would silently cover nothing \
                     — update ENTRY_POINTS after renaming serve internals"
                ),
            )),
        }
    }
    let preds = graph.reachable(&entries);
    let mut ids: Vec<usize> = preds.keys().copied().collect();
    ids.sort();
    for id in ids {
        scan_fn(ws, graph, id, &preds, &mut diags);
    }
    diags
}

fn scan_fn(
    ws: &Workspace,
    graph: &CallGraph,
    id: usize,
    preds: &std::collections::HashMap<usize, Option<usize>>,
    diags: &mut Vec<Diagnostic>,
) {
    let file = graph.file(ws, id);
    let item = graph.item(ws, id);
    let lines = LineIndex::new(&file.src);
    let toks = &file.tokens;
    let idx: Vec<usize> = item
        .body
        .clone()
        .filter(|i| {
            !matches!(
                toks[*i].kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let text = |k: usize| toks[idx[k]].text(&file.src);
    let mut emit = |k: usize, lint: &str, severity: Severity, what: &str, msg: String| {
        let line_no = lines.line(toks[idx[k]].start);
        if file.allows(line_no, lint) {
            return;
        }
        diags.push(
            Diagnostic::new(lint, severity, format!("{}:{}", file.path, line_no), msg)
                .note("operation", what)
                .note("function", &item.path)
                .note("reached_via", graph.chain(ws, preds, id)),
        );
    };

    for k in 0..idx.len() {
        match toks[idx[k]].kind {
            TokKind::Ident => {
                let name = text(k);
                let next = if k + 1 < idx.len() { text(k + 1) } else { "" };
                // `.unwrap()` / `.expect(…)` — postfix method, exact name.
                if (name == "unwrap" || name == "expect")
                    && next == "("
                    && k >= 1
                    && text(k - 1) == "."
                {
                    emit(
                        k,
                        lints::PANIC_PATH,
                        Severity::Deny,
                        name,
                        format!(
                            "`.{name}(…)` reachable from the fg-serve request path: \
                             a malformed request must produce an error answer, \
                             not a worker panic"
                        ),
                    );
                } else if next == "!" && PANIC_MACROS.contains(&name) {
                    emit(
                        k,
                        lints::PANIC_PATH,
                        Severity::Deny,
                        name,
                        format!("`{name}!` reachable from the fg-serve request path"),
                    );
                } else if next == "!" && name == "unreachable" {
                    emit(
                        k,
                        lints::PANIC_PATH,
                        Severity::Warn,
                        name,
                        "`unreachable!` on the fg-serve request path: abuse traffic \
                         specialises in reaching the unreachable — prefer an error \
                         answer, or waive with the invariant that protects it"
                            .to_owned(),
                    );
                }
            }
            TokKind::Punct => {
                let p = text(k);
                // Index expressions: `expr[` where expr ends in ident/`)`/`]`.
                if p == "["
                    && k >= 1
                    && (is_expr_ident(toks[idx[k - 1]].kind, text(k - 1))
                        || text(k - 1) == ")"
                        || text(k - 1) == "]")
                    && !is_attr_open(&idx, toks, &file.src, k)
                {
                    emit(
                        k,
                        lints::PARTIAL_OP,
                        Severity::Info,
                        "index",
                        "slice/array indexing on the request path panics when out \
                         of range; prefer `.get(…)` unless the bound is local"
                            .to_owned(),
                    );
                }
                // `/` or `%` with a non-literal right-hand side.
                if (p == "/" || p == "%")
                    && k >= 1
                    && k + 1 < idx.len()
                    && (toks[idx[k - 1]].kind == TokKind::Ident
                        || toks[idx[k - 1]].kind == TokKind::Num
                        || text(k - 1) == ")"
                        || text(k - 1) == "]")
                    && toks[idx[k + 1]].kind != TokKind::Num
                {
                    emit(
                        k,
                        lints::PARTIAL_OP,
                        Severity::Info,
                        "division",
                        format!(
                            "integer `{p}` with a non-literal divisor panics on zero; \
                             guard the divisor or use `checked_{}`",
                            if p == "/" { "div" } else { "rem" }
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// An ident that can end an indexable expression — keywords (`let [a, b]`
/// slice patterns, `in [..]` array literals) cannot.
fn is_expr_ident(kind: TokKind, text: &str) -> bool {
    kind == TokKind::Ident
        && !matches!(
            text,
            "let"
                | "in"
                | "if"
                | "else"
                | "match"
                | "return"
                | "mut"
                | "ref"
                | "as"
                | "move"
                | "while"
                | "for"
                | "loop"
                | "break"
                | "continue"
                | "where"
                | "impl"
                | "dyn"
                | "fn"
                | "static"
                | "const"
                | "use"
                | "pub"
                | "type"
                | "struct"
                | "enum"
                | "unsafe"
                | "extern"
                | "async"
                | "await"
        )
}

/// `#[…]` / `#![…]` attribute openers are not index expressions.
fn is_attr_open(idx: &[usize], toks: &[crate::lexer::Token], src: &str, k: usize) -> bool {
    (k >= 1 && toks[idx[k - 1]].text(src) == "#")
        || (k >= 2 && toks[idx[k - 1]].text(src) == "!" && toks[idx[k - 2]].text(src) == "#")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn serve_ws(body: &str) -> Vec<Diagnostic> {
        // A miniature serve crate exposing the real entry-point names, so
        // ENTRY_POINTS resolves without the full workspace.
        let src = format!(
            "struct ServeState;\n\
             impl ServeState {{\n\
                 fn decide(&self) {{ step() }}\n\
                 fn report(&self) {{}}\n\
                 fn try_reload(&self) {{}}\n\
             }}\n\
             fn handle_connection() {{}}\n\
             fn accept_loop() {{}}\n\
             fn worker_loop() {{}}\n\
             fn shed() {{}}\n\
             fn watch_loop() {{}}\n\
             {body}\n"
        );
        let ws =
            Workspace::from_sources(vec![("serve", "crates/serve/src/server.rs", src.as_str())]);
        let graph = CallGraph::build(&ws);
        run(&ws, &graph)
    }

    #[test]
    fn handler_unwrap_is_denied_with_a_witness_chain() {
        let diags = serve_ws(
            "fn step() { helper() }\nfn helper() { let v: Option<u8> = None; v.unwrap(); }",
        );
        let hit = diags
            .iter()
            .find(|d| d.lint == lints::PANIC_PATH && d.explanation["operation"] == "unwrap")
            .unwrap_or_else(|| panic!("{diags:?}"));
        assert_eq!(hit.severity, Severity::Deny);
        assert!(
            hit.explanation["reached_via"].contains("ServeState::decide"),
            "{hit:?}"
        );
    }

    #[test]
    fn unrelated_functions_are_not_scanned() {
        let diags = serve_ws("fn offline_tool() { let v: Option<u8> = None; v.unwrap(); }");
        assert!(
            diags.iter().all(|d| d.lint != lints::PANIC_PATH),
            "{diags:?}"
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_trip() {
        let diags = serve_ws(
            "fn step() { let v: Option<u8> = None; v.unwrap_or(0); v.unwrap_or_default(); }",
        );
        assert!(
            diags.iter().all(|d| d.lint != lints::PANIC_PATH),
            "{diags:?}"
        );
    }

    #[test]
    fn waivers_silence_with_a_reason() {
        let diags = serve_ws(
            "fn step() { boot() }\n\
             fn boot() { spawn().expect(\"x\"); } // fg-analyze: allow(panic-path): boot-only\n\
             fn spawn() -> Result<u8, u8> { Ok(1) }",
        );
        assert!(
            diags.iter().all(|d| d.lint != lints::PANIC_PATH),
            "{diags:?}"
        );
    }

    #[test]
    fn partial_ops_report_at_info() {
        let diags = serve_ws("fn step(v: &[u8], n: usize) -> u8 { v[n] + v[0] / n as u8 }");
        let partial: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == lints::PARTIAL_OP)
            .collect();
        assert!(partial.iter().all(|d| d.severity == Severity::Info));
        assert!(
            partial
                .iter()
                .any(|d| d.explanation["operation"] == "index"),
            "{diags:?}"
        );
        assert!(
            partial
                .iter()
                .any(|d| d.explanation["operation"] == "division"),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_entry_point_is_itself_a_deny() {
        let ws = Workspace::from_sources(vec![(
            "serve",
            "crates/serve/src/server.rs",
            "fn nothing_here() {}",
        )]);
        let graph = CallGraph::build(&ws);
        let diags = run(&ws, &graph);
        assert!(
            diags
                .iter()
                .any(|d| d.lint == lints::PANIC_PATH && d.source.starts_with("entry:")),
            "{diags:?}"
        );
    }
}
