//! Pass 3 — the alert-policy semantic linter.
//!
//! Checks each experiment's [`AlertPolicy`] against the scenario facts its
//! [`DefenceProfile`]s declare: a rule whose trigger the modeled traffic can
//! never mathematically reach is dead monitoring (the alerting twin of the
//! config pass's `limiter-never-fires`), and a modeled abuse channel no rule
//! watches is a blind spot the paper's §IV-C invoice-lag story warns about.
//! Waivers on the profiles apply here too, so paper-accurate blind spots
//! (the detectors experiment's deliberately volumetric threshold) stay
//! visible without failing the gate.

use crate::diag::{Diagnostic, Severity};
use fg_mitigation::profile::{ChannelTraffic, DefenceProfile};
use fg_sentinel::{AlertPolicy, AlertRule, DriftBaseline, MetricSource, RuleKind};

/// Stable lint ids for pass 3.
pub mod lints {
    /// No modeled traffic level can reach the rule's trigger within the
    /// deployment horizon: the alert exists but can never fire.
    pub const ALERT_RULE_NEVER_FIRES: &str = "alert-rule-never-fires";
    /// A channel with modeled abuse traffic that no alert rule watches.
    pub const ALERT_CHANNEL_UNWATCHED: &str = "alert-channel-unwatched";
}

/// The abuse channels scenario contexts model, for mapping metric names to
/// declared traffic.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Channel {
    Sms,
    Holds,
}

impl Channel {
    fn name(self) -> &'static str {
        match self {
            Channel::Sms => "sms",
            Channel::Holds => "holds",
        }
    }

    fn traffic(self, profile: &DefenceProfile) -> Option<&ChannelTraffic> {
        match self {
            Channel::Sms => profile.scenario.sms.as_ref(),
            Channel::Holds => profile.scenario.holds.as_ref(),
        }
    }
}

/// Which modeled channel a rule's metric selector draws its events from, or
/// `None` for metrics outside the channel model (e.g. honeypot diversions),
/// which the pass cannot judge and leaves alone.
fn channel_of(rule: &AlertRule) -> Option<Channel> {
    match rule.selector.name.as_str() {
        "fg_sms_sent_total" | "fg_sms_owner_cost_units" => Some(Channel::Sms),
        "fg_nip_hold" => Some(Channel::Holds),
        "fg_requests_total" => match &rule.selector.labels {
            None => Some(Channel::Holds),
            Some(labels) => labels
                .iter()
                .any(|(k, v)| k == "endpoint" && v == "/booking/hold")
                .then_some(Channel::Holds),
        },
        _ => None,
    }
}

/// Why `rule` can never fire against `traffic` over `horizon_days`, or
/// `None` if it plausibly can. Deliberately permissive: only mathematically
/// certain dead rules are reported (per-label splits and per-SMS costs are
/// not statically known, so those checks use whole-channel upper bounds).
fn never_fires(rule: &AlertRule, traffic: &ChannelTraffic, horizon_days: f64) -> Option<String> {
    let total_per_day = traffic.total_per_day();
    match &rule.kind {
        RuleKind::Threshold {
            window, min_value, ..
        } => {
            let max_events = total_per_day * window.as_days_f64().min(horizon_days);
            (max_events < *min_value).then(|| {
                format!(
                    "trigger {min_value:.0} per {:.0} h window vs at most {max_events:.1} \
                     modeled events — the volume trigger is out of reach",
                    window.as_hours_f64()
                )
            })
        }
        RuleKind::Surge {
            source: MetricSource::Gauge,
            ..
        } => {
            // Spend per SMS is not statically known; all the pass can say is
            // that zero modeled abuse cannot raise the burn rate.
            (traffic.attack_per_day <= 0.0)
                .then(|| "burn-rate rule on a channel with no modeled abuse spend".to_owned())
        }
        RuleKind::Surge {
            current_window,
            factor,
            min_count,
            floor_per_hour,
            ..
        } => {
            let max_events = total_per_day * current_window.as_days_f64().min(horizon_days);
            if max_events < *min_count {
                return Some(format!(
                    "volume guard min_count {min_count:.0} vs at most {max_events:.1} \
                     events in the current window"
                ));
            }
            // The hottest series can at most carry the whole channel over a
            // baseline no lower than the floor.
            let total_per_hour = total_per_day / 24.0;
            (total_per_hour < factor * floor_per_hour).then(|| {
                format!(
                    "surge factor {factor:.0}x is unreachable: the whole channel peaks \
                     at {total_per_hour:.2}/h against a {floor_per_hour:.2}/h baseline floor"
                )
            })
        }
        RuleKind::Drift {
            window,
            min_samples,
            baseline,
            ..
        } => {
            if let DriftBaseline::Learned { until } = baseline {
                let learn_days = until.as_millis() as f64 / fg_core::time::MILLIS_PER_DAY as f64;
                if learn_days >= horizon_days {
                    return Some(format!(
                        "baseline learning runs until day {learn_days:.1} but the horizon \
                         is {horizon_days:.1} days: the rule is inert for the whole run"
                    ));
                }
            }
            let max_samples = total_per_day * window.as_days_f64().min(horizon_days);
            (max_samples < *min_samples as f64).then(|| {
                format!(
                    "min_samples {min_samples} vs at most {max_samples:.1} modeled \
                     samples in the window — the statistic never becomes meaningful"
                )
            })
        }
        // A level rule reads an instantaneous gauge, not event volume; the
        // channel-traffic model says nothing about what values the gauge can
        // reach, so the pass cannot judge it.
        RuleKind::Level { .. } => None,
    }
}

/// Analyzes one alert policy against the defence profiles of the experiment
/// that deploys it. A rule is flagged only when it can never fire under
/// *every* profile that models its channel; profile waivers apply.
pub fn analyze_policy(
    policy: &AlertPolicy,
    profiles: &[DefenceProfile],
    src: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    for rule in &policy.rules {
        let Some(channel) = channel_of(rule) else {
            continue;
        };
        let verdicts: Vec<(String, String)> = profiles
            .iter()
            .filter_map(|p| {
                let traffic = channel.traffic(p)?;
                Some((
                    p.name.clone(),
                    never_fires(rule, traffic, p.scenario.horizon.as_days_f64())?,
                ))
            })
            .collect();
        let modeled = profiles
            .iter()
            .filter(|p| channel.traffic(p).is_some())
            .count();
        if modeled > 0 && verdicts.len() == modeled {
            let mut d = Diagnostic::new(
                lints::ALERT_RULE_NEVER_FIRES,
                Severity::Warn,
                src,
                format!(
                    "alert rule '{}' can never fire against the modeled {} traffic \
                     of any declared deployment — dead monitoring",
                    rule.id,
                    channel.name()
                ),
            )
            .note("rule", &rule.id)
            .note("channel", channel.name());
            for (profile, why) in verdicts {
                d = d.note(&profile, why);
            }
            diags.push(d);
        }
    }

    for channel in [Channel::Sms, Channel::Holds] {
        let watched = policy.rules.iter().any(|r| channel_of(r) == Some(channel));
        if watched {
            continue;
        }
        let Some((profile, traffic)) = profiles
            .iter()
            .filter_map(|p| Some((p, channel.traffic(p)?)))
            .filter(|(_, t)| t.attack_per_day > 0.0)
            .max_by(|a, b| a.1.attack_per_day.total_cmp(&b.1.attack_per_day))
        else {
            continue;
        };
        diags.push(
            Diagnostic::new(
                lints::ALERT_CHANNEL_UNWATCHED,
                Severity::Warn,
                src,
                format!(
                    "{} channel models {:.1} abuse events/day but no alert rule \
                     watches it: abuse would surface on the invoice, not a pager",
                    channel.name(),
                    traffic.attack_per_day
                ),
            )
            .note("channel", channel.name())
            .note("profile", &profile.name)
            .note("attack_per_day", format!("{:.1}", traffic.attack_per_day)),
        );
    }

    // Apply waivers from any declaring profile (the policy is experiment-wide
    // while waivers ride on profiles).
    for d in &mut diags {
        if let Some(w) = profiles.iter().find_map(|p| p.waiver_for(&d.lint)) {
            *d = d.clone().waived(w.reason);
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::time::{SimDuration, SimTime};
    use fg_mitigation::policy::PolicyConfig;
    use fg_sentinel::MetricSelector;

    fn profile(sms: Option<(f64, f64)>, holds: Option<(f64, f64)>) -> DefenceProfile {
        let mut p = DefenceProfile::airline("test", PolicyConfig::unprotected())
            .horizon(SimDuration::from_days(14));
        if let Some((legit, attack)) = sms {
            p = p.sms(legit, attack);
        }
        if let Some((legit, attack)) = holds {
            p = p.holds(legit, attack);
        }
        p
    }

    fn lints_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.lint.as_str()).collect()
    }

    #[test]
    fn volumetric_threshold_against_slow_abuse_is_dead() {
        // §III-A: a 2 000/h volume rule vs a low-and-slow spinner.
        let policy = AlertPolicy::named("test").rule(AlertRule::threshold(
            "hold-volume",
            MetricSelector::exact("fg_requests_total", &[("endpoint", "/booking/hold")]),
            SimDuration::from_hours(1),
            2_000.0,
        ));
        let diags = analyze_policy(&policy, &[profile(None, Some((250.0, 576.0)))], "t");
        assert!(
            lints_of(&diags).contains(&lints::ALERT_RULE_NEVER_FIRES),
            "{diags:?}"
        );
        // The same rule sized for the traffic is fine.
        let policy = AlertPolicy::named("test").rule(AlertRule::threshold(
            "hold-volume",
            MetricSelector::exact("fg_requests_total", &[("endpoint", "/booking/hold")]),
            SimDuration::from_hours(6),
            40.0,
        ));
        let diags = analyze_policy(&policy, &[profile(None, Some((250.0, 576.0)))], "t");
        assert!(
            !lints_of(&diags).contains(&lints::ALERT_RULE_NEVER_FIRES),
            "{diags:?}"
        );
    }

    #[test]
    fn surge_needs_enough_volume_for_its_guard() {
        // min_count 500/h vs a channel carrying ~26 events/h in total.
        let policy = AlertPolicy::named("test").rule(AlertRule::surge(
            "sms-surge",
            MetricSelector::any("fg_sms_sent_total"),
            SimDuration::from_hours(1),
            SimDuration::from_days(7),
            8.0,
            500.0,
        ));
        let diags = analyze_policy(&policy, &[profile(Some((170.0, 450.0)), None)], "t");
        assert!(
            lints_of(&diags).contains(&lints::ALERT_RULE_NEVER_FIRES),
            "{diags:?}"
        );
    }

    #[test]
    fn learned_baseline_past_the_horizon_is_inert() {
        let policy = AlertPolicy::named("test").rule(AlertRule::drift(
            "nip-drift",
            MetricSelector::exact("fg_nip_hold", &[]),
            SimDuration::from_hours(12),
            40,
            DriftBaseline::Learned {
                until: SimTime::from_days(30),
            },
            fg_sentinel::DriftStat::ChiSquarePerSample,
            0.35,
        ));
        let diags = analyze_policy(&policy, &[profile(None, Some((500.0, 576.0)))], "t");
        let d = diags
            .iter()
            .find(|d| d.lint == lints::ALERT_RULE_NEVER_FIRES)
            .expect("inert learning must be flagged");
        assert!(d.message.contains("nip-drift"), "{}", d.message);
    }

    #[test]
    fn unwatched_abuse_channel_is_flagged_and_waivable() {
        // SMS abuse modeled, but the policy only watches holds.
        let policy = AlertPolicy::named("test").rule(AlertRule::threshold(
            "hold-volume",
            MetricSelector::exact("fg_requests_total", &[("endpoint", "/booking/hold")]),
            SimDuration::from_hours(6),
            40.0,
        ));
        let profiles = [profile(Some((170.0, 4_800.0)), Some((250.0, 576.0)))];
        let diags = analyze_policy(&policy, &profiles, "t");
        let d = diags
            .iter()
            .find(|d| d.lint == lints::ALERT_CHANNEL_UNWATCHED)
            .expect("unwatched sms channel must be flagged");
        assert!(!d.waived);
        // A profile waiver marks the finding without dropping it.
        let waived = [profile(Some((170.0, 4_800.0)), Some((250.0, 576.0)))
            .waive(lints::ALERT_CHANNEL_UNWATCHED, "paper-accurate blind spot")];
        let diags = analyze_policy(&policy, &waived, "t");
        let d = diags
            .iter()
            .find(|d| d.lint == lints::ALERT_CHANNEL_UNWATCHED)
            .unwrap();
        assert!(d.waived);
        assert!(!d.gates_at(Severity::Info));
    }

    #[test]
    fn burn_rate_counts_as_watching_the_sms_channel() {
        let policy = AlertPolicy::named("test").rule(AlertRule::burn_rate(
            "burn",
            SimDuration::from_hours(6),
            SimDuration::from_days(7),
            3.0,
            1.0,
        ));
        let diags = analyze_policy(&policy, &[profile(Some((170.0, 4_800.0)), None)], "t");
        assert!(
            !lints_of(&diags).contains(&lints::ALERT_CHANNEL_UNWATCHED),
            "{diags:?}"
        );
    }

    #[test]
    fn unmapped_metrics_are_left_alone() {
        // A honeypot counter is outside the channel model: no judgement.
        let policy = AlertPolicy::named("test").rule(AlertRule::threshold(
            "honeypot-diversion",
            MetricSelector::exact("fg_honeypot_diversions_total", &[]),
            SimDuration::from_hours(24),
            1_000_000.0,
        ));
        let diags = analyze_policy(&policy, &[profile(None, None)], "t");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
