//! `fg-analyze` — static analysis for the defence stack.
//!
//! Two passes, one diagnostic model:
//!
//! * **Config pass** ([`config`]): semantic lints over [`fg_mitigation`]
//!   policy configurations *in the context of the scenario they defend* — a
//!   rate limit is not judged in isolation but against the modeled traffic
//!   it must catch. Run over the three built-in presets and every
//!   [`DefenceProfile`] declared by the experiment registry.
//! * **Source pass** ([`source`]): workspace invariant checks over the crate
//!   sources themselves — no wall clocks or entropy RNG in
//!   determinism-critical crates, `#![forbid(unsafe_code)]` in every crate
//!   root, no std hash collections on hot paths.
//! * **Alerts pass** ([`alerts`]): each experiment's [`fg_sentinel`] alert
//!   policy judged against the scenario traffic its profiles declare — dead
//!   alert rules and unwatched abuse channels.
//!
//! All passes emit [`Diagnostic`]s; `--deny <severity>` turns any unwaived
//! finding at or above that severity into a CI failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod diag;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod panic_path;
pub mod sarif;
pub mod source;
pub mod taint;

pub use baseline::Baseline;
pub use diag::{render_json, render_pretty, Diagnostic, Severity};
use fg_mitigation::policy::PolicyConfig;
use fg_mitigation::profile::DefenceProfile;
pub use sarif::render_sarif;

/// Every defence deployment committed to this workspace: the three built-in
/// presets (judged against the default airline scenario) plus each profile
/// declared by the ten registered experiments.
pub fn workspace_profiles() -> Vec<DefenceProfile> {
    let mut profiles = vec![
        DefenceProfile::airline("preset:unprotected", PolicyConfig::unprotected()),
        DefenceProfile::airline(
            "preset:traditional_antibot",
            PolicyConfig::traditional_antibot(),
        ),
        DefenceProfile::airline("preset:recommended", PolicyConfig::recommended()),
    ];
    for spec in fg_scenario::experiments::all_specs() {
        for mut profile in (spec.profiles)() {
            profile.name = format!("spec:{}/{}", spec.name, profile.name);
            profiles.push(profile);
        }
    }
    profiles
}

/// Runs the config pass over every committed deployment.
pub fn analyze_workspace_configs() -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for profile in workspace_profiles() {
        diags.extend(config::analyze_profile(&profile));
    }
    diags
}

/// Runs the alerts pass over every registered experiment's alert policy.
pub fn analyze_workspace_alerts() -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for spec in fg_scenario::experiments::all_specs() {
        let policy = (spec.alerts)();
        let profiles = (spec.profiles)();
        diags.extend(alerts::analyze_policy(
            &policy,
            &profiles,
            &format!("spec:{}/alerts:{}", spec.name, policy.name),
        ));
    }
    diags
}

/// Validates a policy intended for the online decision service (`fg-serve`).
///
/// This is the gate behind config hot-reload: a structurally invalid policy
/// ([`PolicyConfig::validate`]) or one the config pass flags at
/// [`Severity::Warn`] or above against the default airline serving scenario
/// is rejected, and the service keeps running on its previous config.
/// Waived findings never gate, matching the CI `--deny warn` contract.
pub fn validate_serve_policy(policy: &PolicyConfig) -> Result<(), Vec<Diagnostic>> {
    let mut diags: Vec<Diagnostic> = match policy.validate() {
        Ok(()) => Vec::new(),
        Err(errors) => errors
            .into_iter()
            .map(|e| Diagnostic::new("invalid-config", Severity::Deny, "serve:policy", e))
            .collect(),
    };
    // An invalid config cannot safely instantiate a PolicyEngine for the
    // semantic pass (debug builds panic at construction), so stop here.
    if diags.is_empty() {
        let profile = DefenceProfile::airline("serve:policy", policy.clone());
        diags.extend(
            config::analyze_profile(&profile)
                .into_iter()
                .filter(|d| d.gates_at(Severity::Warn)),
        );
    }
    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags)
    }
}

/// Runs the three call-graph dataflow passes (determinism taint, fg-serve
/// panic surface, shard/lock discipline) over the workspace rooted at
/// `root`.
pub fn analyze_workspace_dataflow(root: &std::path::Path) -> std::io::Result<Vec<Diagnostic>> {
    let ws = callgraph::Workspace::load(root)?;
    let graph = callgraph::CallGraph::build(&ws);
    let mut diags = taint::run(&ws, &graph);
    diags.extend(panic_path::run(&ws, &graph));
    diags.extend(locks::run(&ws, &graph));
    Ok(diags)
}

/// Runs all passes: the config pass over all committed deployments, the
/// alerts pass over all committed alert policies, the line-oriented source
/// pass, and the call-graph dataflow passes over the workspace rooted at
/// `root`.
pub fn full_report(root: &std::path::Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = analyze_workspace_configs();
    diags.extend(analyze_workspace_alerts());
    diags.extend(source::scan_workspace(root)?);
    diags.extend(analyze_workspace_dataflow(root)?);
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    /// ISSUE 4 acceptance: `fg-analyze` reports zero deny-level (and, with
    /// waivers honoured, zero warn-level) diagnostics on the committed
    /// workspace.
    #[test]
    fn committed_workspace_gates_clean_at_warn() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = full_report(&root).expect("workspace sources readable");
        let gating: Vec<_> = diags
            .iter()
            .filter(|d| d.gates_at(Severity::Warn))
            .collect();
        assert!(
            gating.is_empty(),
            "committed workspace must be clean at --deny warn:\n{}",
            render_pretty(&gating.into_iter().cloned().collect::<Vec<_>>())
        );
    }

    /// The committed `ANALYZE_baseline.json` matches the current report
    /// exactly — no regressions (new findings) and no stale entries (burned
    /// down but still recorded). Re-bless with
    /// `fg-analyze --bless-baseline ANALYZE_baseline.json` when findings
    /// change deliberately.
    #[test]
    fn committed_baseline_matches_current_report() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = full_report(&root).expect("workspace sources readable");
        let text = std::fs::read_to_string(root.join("ANALYZE_baseline.json"))
            .expect("ANALYZE_baseline.json is committed at the workspace root");
        let committed = Baseline::parse(&text).expect("committed baseline parses");
        let cmp = committed.compare(&diags);
        assert!(
            cmp.regressions.is_empty(),
            "new diagnostics over the committed baseline:\n{}",
            cmp.regressions.join("\n")
        );
        assert!(
            cmp.stale.is_empty(),
            "stale baseline entries (findings burned down — re-bless):\n{}",
            cmp.stale.join("\n")
        );
    }

    /// The hot-reload gate: the recommended posture loads, a structurally
    /// broken or semantically misconfigured one is rejected with the
    /// diagnostics that justify keeping the old config.
    #[test]
    fn serve_policy_validation_accepts_recommended_and_rejects_bad_configs() {
        assert!(validate_serve_policy(&PolicyConfig::recommended()).is_ok());

        // Structural: a NaN threshold fails PolicyConfig::validate.
        let mut broken = PolicyConfig::recommended();
        broken.block_threshold = f64::NAN;
        let diags = validate_serve_policy(&broken).unwrap_err();
        assert!(diags.iter().any(|d| d.lint == "invalid-config"));

        // Semantic: challenge at/above block makes challenges unreachable —
        // valid structurally, but the config pass flags it at warn+.
        let mut shadowed = PolicyConfig::recommended();
        shadowed.challenge_threshold = shadowed.block_threshold;
        let diags = validate_serve_policy(&shadowed).unwrap_err();
        assert!(
            diags.iter().all(|d| d.gates_at(Severity::Warn)),
            "only gating findings reject:\n{}",
            render_pretty(&diags)
        );
        assert!(!diags.is_empty());
    }

    /// The paper-accurate misconfigurations are still *reported* — waivers
    /// keep them visible without failing the gate.
    #[test]
    fn paper_misconfigurations_surface_as_waived_findings() {
        let diags = analyze_workspace_configs();
        let waived: Vec<_> = diags.iter().filter(|d| d.waived).collect();
        assert!(
            waived
                .iter()
                .any(|d| d.lint == config::lints::LIMITER_NEVER_FIRES
                    && d.source.contains("ablation/traditional")),
            "ablation's era path limit should surface as a waived finding:\n{}",
            render_pretty(&diags)
        );
        assert!(
            waived
                .iter()
                .any(|d| d.lint == config::lints::UNGUARDED_CHANNEL),
            "era postures leave the hold path unguarded (waived):\n{}",
            render_pretty(&diags)
        );
    }

    /// ISSUE 5: the detectors experiment's deliberately volumetric alert
    /// rule is dead monitoring by design — reported by the alerts pass,
    /// waived so it never gates.
    #[test]
    fn detectors_blind_spot_surfaces_as_waived_alert_finding() {
        let diags = analyze_workspace_alerts();
        let d = diags
            .iter()
            .find(|d| {
                d.lint == alerts::lints::ALERT_RULE_NEVER_FIRES && d.source.contains("detectors")
            })
            .unwrap_or_else(|| {
                panic!(
                    "detectors' volume rule should be a waived finding:\n{}",
                    render_pretty(&diags)
                )
            });
        assert!(d.waived, "{d:?}");
        assert!(
            !diags.iter().any(|d| d.gates_at(Severity::Warn)),
            "{diags:?}"
        );
    }

    #[test]
    fn every_registered_spec_declares_profiles() {
        for spec in fg_scenario::experiments::all_specs() {
            let profiles = (spec.profiles)();
            assert!(
                !profiles.is_empty(),
                "spec {} declares no defence profiles",
                spec.name
            );
            for profile in &profiles {
                profile
                    .policy
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e:?}", spec.name, profile.name));
            }
        }
    }
}
