//! Pass 1 — the defence-config semantic linter.
//!
//! Checks a [`DefenceProfile`] (policy + scenario facts) and a
//! [`BlockRuleEngine`] for the *misconfigured-for-the-feature* failure modes
//! the paper's case studies document: dead policy stages, rate limits sized
//! for volumetric attacks that can never trip on low-and-slow functional
//! abuse (§IV-C), block rules shadowed by earlier broader rules, eviction
//! policies that would forget limiter state before the limit fires, honeypot
//! decoy references that could collide with real inventory, and NiP caps out
//! of line with the legitimate group-size distribution (§IV-B).
//!
//! Everything here is *semantic*: each config is well-formed (that is
//! [`PolicyConfig::validate`]'s job) but may still be incoherent against the
//! scenario it defends.

use crate::diag::{Diagnostic, Severity};
use fg_detection::log::Endpoint;
use fg_mitigation::blocklist::{BlockRule, BlockRuleEngine};
use fg_mitigation::policy::PolicyConfig;
use fg_mitigation::profile::{ChannelTraffic, DefenceProfile, ScenarioContext};

/// Stable lint ids for pass 1.
pub mod lints {
    /// `challenge_threshold >= block_threshold`: the Challenge stage is dead.
    pub const UNREACHABLE_CHALLENGE: &str = "unreachable-challenge";
    /// NaN threshold anywhere, or an infinite threshold in an otherwise
    /// protecting deployment (the score pipeline silently disabled).
    pub const NONFINITE_THRESHOLD: &str = "nonfinite-threshold";
    /// A later block rule can never match: an earlier rule covers it.
    pub const SHADOWED_RULE: &str = "shadowed-rule";
    /// The same block rule deployed twice.
    pub const DUPLICATE_RULE: &str = "duplicate-rule";
    /// No limiter guarding a modeled abuse channel can mathematically fire
    /// within the deployment horizon (§IV-C: Airline D's 20 000/day path
    /// limit against a 3-SMS-per-hour pump).
    pub const LIMITER_NEVER_FIRES: &str = "limiter-never-fires";
    /// A modeled abuse channel with neither a limiter nor a tier gate.
    pub const UNGUARDED_CHANNEL: &str = "unguarded-channel";
    /// Idle-state eviction TTL shorter than a limiter's full refill time:
    /// state is forgotten before the limit can fire.
    pub const EVICTION_BEFORE_REFILL: &str = "eviction-before-refill";
    /// Honeypot decoy booking-reference range overlaps real inventory.
    pub const DECOY_OVERLAP: &str = "decoy-overlap";
    /// NiP cap above the largest legitimate party: the headroom serves only
    /// name-pumping abuse (§IV-B).
    pub const NIP_CAP_HEADROOM: &str = "nip-cap-headroom";
    /// NiP cap that splits a noticeable share of legitimate parties.
    pub const NIP_CAP_FRICTION: &str = "nip-cap-friction";
}

const SENSITIVE_SMS_ENDPOINTS: [Endpoint; 2] = [Endpoint::SendOtp, Endpoint::BoardingPass];

/// `true` when the policy attempts *any* protection — some limiter, a tier
/// gate, or a finite score threshold. The deliberately open
/// [`PolicyConfig::unprotected`] posture is not protecting, and scenario
/// coherence lints are meaningless for it.
pub fn is_protecting(policy: &PolicyConfig) -> bool {
    policy.booking_sms_limit.is_some()
        || policy.path_sms_limit.is_some()
        || policy.client_hold_limit.is_some()
        || policy.challenge_threshold.is_finite()
        || policy.block_threshold.is_finite()
        || Endpoint::ALL
            .iter()
            .any(|&e| policy.gate.requirement(e).is_some())
}

/// Analyzes one deployment: the profile's policy against its scenario, plus
/// whatever block rules are in force. Waivers the profile carries are applied
/// before returning (waived findings are included, marked, and never gate).
pub fn analyze(
    policy: &PolicyConfig,
    rules: &BlockRuleEngine,
    profile: &DefenceProfile,
) -> Vec<Diagnostic> {
    let src = &profile.name;
    let ctx = &profile.scenario;
    let mut diags = Vec::new();
    let protecting = is_protecting(policy);

    check_thresholds(policy, protecting, src, &mut diags);
    diags.extend(analyze_rules(rules, src));
    if protecting {
        if let Some(sms) = &ctx.sms {
            check_channel(policy, ctx, sms, SmsOrHolds::Sms, src, &mut diags);
        }
        if let Some(holds) = &ctx.holds {
            check_channel(policy, ctx, holds, SmsOrHolds::Holds, src, &mut diags);
        }
        check_eviction(policy, ctx, src, &mut diags);
    }
    check_decoys(policy, ctx, src, &mut diags);
    check_nip(ctx, src, &mut diags);

    // Apply the profile's waivers.
    for d in &mut diags {
        if let Some(w) = profile.waiver_for(&d.lint) {
            *d = d.clone().waived(w.reason);
        }
    }
    diags
}

/// Convenience wrapper: analyzes a profile with an empty rule set.
pub fn analyze_profile(profile: &DefenceProfile) -> Vec<Diagnostic> {
    analyze(&profile.policy, &BlockRuleEngine::new(), profile)
}

fn check_thresholds(
    policy: &PolicyConfig,
    protecting: bool,
    src: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let (c, b) = (policy.challenge_threshold, policy.block_threshold);
    for (name, t) in [("challenge_threshold", c), ("block_threshold", b)] {
        if t.is_nan() {
            diags.push(
                Diagnostic::new(
                    lints::NONFINITE_THRESHOLD,
                    Severity::Deny,
                    src,
                    format!("{name} is NaN: every score comparison is vacuously false"),
                )
                .note("threshold", name),
            );
        } else if t.is_infinite() && protecting {
            diags.push(
                Diagnostic::new(
                    lints::NONFINITE_THRESHOLD,
                    Severity::Warn,
                    src,
                    format!(
                        "{name} is infinite in an otherwise protecting deployment: \
                         the score pipeline is silently disabled"
                    ),
                )
                .note("threshold", name),
            );
        }
    }
    if b.is_finite() && c >= b {
        diags.push(
            Diagnostic::new(
                lints::UNREACHABLE_CHALLENGE,
                Severity::Warn,
                src,
                format!(
                    "Challenge stage is dead: every score >= challenge ({c}) \
                     is also >= block ({b}), so Block always wins"
                ),
            )
            .note("challenge_threshold", c)
            .note("block_threshold", b),
        );
    }
}

/// Which channel a traffic model describes (selects the relevant limiters
/// and gate endpoints).
#[derive(Clone, Copy)]
enum SmsOrHolds {
    Sms,
    Holds,
}

impl SmsOrHolds {
    fn name(self) -> &'static str {
        match self {
            SmsOrHolds::Sms => "sms",
            SmsOrHolds::Holds => "holds",
        }
    }
}

/// Days until a `(burst, per_day)` token bucket first rejects under
/// `demand_per_day`, or `None` if it never does (demand at or below refill).
fn days_to_first_reject(burst: f64, per_day: f64, demand_per_day: f64) -> Option<f64> {
    let excess = demand_per_day - per_day;
    if excess <= 0.0 {
        return None;
    }
    Some(burst / excess)
}

fn check_channel(
    policy: &PolicyConfig,
    ctx: &ScenarioContext,
    traffic: &ChannelTraffic,
    channel: SmsOrHolds,
    src: &str,
    diags: &mut Vec<Diagnostic>,
) {
    if traffic.attack_per_day <= 0.0 {
        return; // no abuse modeled on this channel
    }
    let horizon_days = ctx.horizon.as_days_f64();

    // (limiter name, spec, demand it faces). Keyed limiters face the
    // hottest-key concentration — the attack's single booking ref or client —
    // while the path-wide bucket faces everything.
    type LimiterRow<'a> = (&'a str, Option<(f64, f64)>, f64);
    let limiters: Vec<LimiterRow<'_>> = match channel {
        SmsOrHolds::Sms => vec![
            (
                "booking_sms_limit",
                policy.booking_sms_limit,
                traffic.attack_per_day,
            ),
            (
                "path_sms_limit",
                policy.path_sms_limit,
                traffic.total_per_day(),
            ),
        ],
        SmsOrHolds::Holds => vec![(
            "client_hold_limit",
            policy.client_hold_limit,
            traffic.attack_per_day,
        )],
    };
    let gated = match channel {
        SmsOrHolds::Sms => SENSITIVE_SMS_ENDPOINTS
            .iter()
            .any(|&e| policy.gate.requirement(e).is_some()),
        SmsOrHolds::Holds => policy.gate.requirement(Endpoint::Hold).is_some(),
    };

    let configured: Vec<(&str, (f64, f64), f64)> = limiters
        .iter()
        .filter_map(|&(name, spec, demand)| spec.map(|s| (name, s, demand)))
        .collect();
    if configured.is_empty() {
        if !gated {
            diags.push(
                Diagnostic::new(
                    lints::UNGUARDED_CHANNEL,
                    Severity::Warn,
                    src,
                    format!(
                        "{} channel models {:.1} abuse events/day but has no rate \
                         limit and no tier gate",
                        channel.name(),
                        traffic.attack_per_day
                    ),
                )
                .note("channel", channel.name())
                .note("attack_per_day", format!("{:.1}", traffic.attack_per_day))
                .note("legit_per_day", format!("{:.1}", traffic.legit_per_day)),
            );
        }
        return;
    }

    let mut firing = Vec::new();
    let mut silent = Vec::new();
    for &(name, (burst, per_day), demand) in &configured {
        match days_to_first_reject(burst, per_day, demand) {
            Some(days) if days <= horizon_days => firing.push((name, days)),
            Some(days) => silent.push((name, burst, per_day, demand, Some(days))),
            None => silent.push((name, burst, per_day, demand, None)),
        }
    }
    if firing.is_empty() {
        let mut d = Diagnostic::new(
            lints::LIMITER_NEVER_FIRES,
            Severity::Warn,
            src,
            format!(
                "no limiter guarding the {} channel can fire within the {:.0}-day \
                 horizon at the modeled demand — the limit exists but the abuse \
                 flies under it",
                channel.name(),
                horizon_days
            ),
        )
        .note("channel", channel.name())
        .note("horizon_days", format!("{horizon_days:.1}"));
        for (name, burst, per_day, demand, days) in silent {
            d = d.note(
                name,
                match days {
                    Some(days) => format!(
                        "burst {burst:.0}, {per_day:.0}/day vs {demand:.1}/day demand: \
                         first reject after {days:.1} days"
                    ),
                    None => format!(
                        "burst {burst:.0}, {per_day:.0}/day vs {demand:.1}/day demand: \
                         refill outpaces demand, never rejects"
                    ),
                },
            );
        }
        diags.push(d);
    }
}

fn check_eviction(
    policy: &PolicyConfig,
    ctx: &ScenarioContext,
    src: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(ttl) = ctx.limiter_eviction_ttl else {
        return; // refill-based eviction is lossless by construction
    };
    for (name, spec) in [
        ("booking_sms_limit", policy.booking_sms_limit),
        ("client_hold_limit", policy.client_hold_limit),
    ] {
        let Some((burst, per_day)) = spec else {
            continue;
        };
        // An empty bucket is fully refilled after burst/per_day days; evicting
        // idle keys sooner forgets consumption and resets the limit for free.
        let refill_days = if per_day > 0.0 {
            burst / per_day
        } else {
            f64::INFINITY
        };
        if ttl.as_days_f64() < refill_days {
            diags.push(
                Diagnostic::new(
                    lints::EVICTION_BEFORE_REFILL,
                    Severity::Deny,
                    src,
                    format!(
                        "eviction TTL ({:.2} days) is shorter than {name}'s full \
                         refill time ({refill_days:.2} days): an attacker who idles \
                         past the TTL gets a fresh bucket before the old one refills",
                        ttl.as_days_f64()
                    ),
                )
                .note("limiter", name)
                .note("eviction_ttl_days", format!("{:.2}", ttl.as_days_f64()))
                .note("refill_days", format!("{refill_days:.2}")),
            );
        }
    }
}

fn check_decoys(
    policy: &PolicyConfig,
    ctx: &ScenarioContext,
    src: &str,
    diags: &mut Vec<Diagnostic>,
) {
    if !policy.honeypot_instead_of_block {
        return;
    }
    // Real references are allocated sequentially from index 0; decoys count
    // up from `decoy_ref_base`. Contact would let an attacker (or a report)
    // confuse decoy holds with real inventory.
    if ctx.decoy_ref_base <= ctx.expected_bookings {
        diags.push(
            Diagnostic::new(
                lints::DECOY_OVERLAP,
                Severity::Deny,
                src,
                format!(
                    "honeypot decoy references start at index {} but the scenario \
                     may create {} real bookings: the ranges overlap",
                    ctx.decoy_ref_base, ctx.expected_bookings
                ),
            )
            .note("decoy_ref_base", ctx.decoy_ref_base)
            .note("expected_bookings", ctx.expected_bookings),
        );
    }
}

fn check_nip(ctx: &ScenarioContext, src: &str, diags: &mut Vec<Diagnostic>) {
    if ctx.nip_weights.is_empty() {
        return;
    }
    let max_legit = ctx.max_legit_party();
    if ctx.max_nip > max_legit {
        diags.push(
            Diagnostic::new(
                lints::NIP_CAP_HEADROOM,
                Severity::Warn,
                src,
                format!(
                    "NiP cap {} exceeds the largest legitimate party ({max_legit}): \
                     the headroom serves only name-pumping abuse",
                    ctx.max_nip
                ),
            )
            .note("max_nip", ctx.max_nip)
            .note("max_legit_party", max_legit),
        );
    }
    let coverage = ctx.nip_coverage(ctx.max_nip);
    if coverage < 0.999 {
        let severity = if coverage < 0.90 {
            Severity::Warn
        } else {
            Severity::Info
        };
        diags.push(
            Diagnostic::new(
                lints::NIP_CAP_FRICTION,
                severity,
                src,
                format!(
                    "NiP cap {} fits only {:.1}% of legitimate parties: larger \
                     groups must split bookings",
                    ctx.max_nip,
                    coverage * 100.0
                ),
            )
            .note("max_nip", ctx.max_nip)
            .note("coverage", format!("{coverage:.4}")),
        );
    }
}

/// `true` when a match of `outer` implies a match of `inner` for every
/// possible client — decidable statically for IP and attribute rules.
/// Identity-hash rules are opaque (the hash does not expose attributes), so
/// only equal hashes are comparable.
fn covers(outer: &BlockRule, inner: &BlockRule) -> bool {
    match (outer, inner) {
        (a, b) if a == b => true,
        (BlockRule::IpSubnet24(a), BlockRule::IpExact(b)) => a.subnet24() == b.subnet24(),
        (BlockRule::IpSubnet24(a), BlockRule::IpSubnet24(b)) => a.subnet24() == b.subnet24(),
        (
            BlockRule::AttributeCombo {
                browser: b1,
                os: o1,
                screen: None,
            },
            BlockRule::AttributeCombo {
                browser: b2,
                os: o2,
                screen: _,
            },
        ) => b1 == b2 && o1 == o2,
        _ => false,
    }
}

/// Lints an ordered rule set for duplicates and shadowing. First match wins
/// at evaluation time, so a later rule covered by an earlier one never fires
/// — it is dead weight that also misattributes hit statistics.
pub fn analyze_rules(rules: &BlockRuleEngine, src: &str) -> Vec<Diagnostic> {
    let stats = rules.stats();
    let mut diags = Vec::new();
    for (j, later) in stats.iter().enumerate() {
        for (i, earlier) in stats.iter().enumerate().take(j) {
            if earlier.rule == later.rule {
                diags.push(
                    Diagnostic::new(
                        lints::DUPLICATE_RULE,
                        Severity::Warn,
                        src,
                        format!(
                            "rule #{j} ({}) duplicates rule #{i}: it can never fire",
                            later.rule
                        ),
                    )
                    .note("rule", later.rule)
                    .note("earlier_index", i)
                    .note("index", j),
                );
                break;
            }
            if covers(&earlier.rule, &later.rule) {
                diags.push(
                    Diagnostic::new(
                        lints::SHADOWED_RULE,
                        Severity::Warn,
                        src,
                        format!(
                            "rule #{j} ({}) is shadowed by broader rule #{i} ({}): \
                             first match wins, so it can never fire",
                            later.rule, earlier.rule
                        ),
                    )
                    .note("rule", later.rule)
                    .note("shadowed_by", earlier.rule)
                    .note("earlier_index", i)
                    .note("index", j),
                );
                break;
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::time::{SimDuration, SimTime};
    use fg_mitigation::gating::TrustTier;
    use fg_mitigation::profile::Waiver;
    use fg_netsim::ip::IpAddress;

    fn named(policy: PolicyConfig) -> DefenceProfile {
        DefenceProfile::airline("test", policy)
    }

    fn lints_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.lint.as_str()).collect()
    }

    #[test]
    fn builtin_presets_are_clean() {
        for (name, policy) in [
            ("unprotected", PolicyConfig::unprotected()),
            ("traditional_antibot", PolicyConfig::traditional_antibot()),
            ("recommended", PolicyConfig::recommended()),
        ] {
            let diags = analyze_profile(&named(policy));
            assert!(diags.is_empty(), "{name}: {diags:?}");
        }
    }

    #[test]
    fn equal_thresholds_kill_the_challenge_stage() {
        let mut policy = PolicyConfig::recommended();
        policy.challenge_threshold = policy.block_threshold;
        let diags = analyze_profile(&named(policy));
        assert!(
            lints_of(&diags).contains(&lints::UNREACHABLE_CHALLENGE),
            "{diags:?}"
        );
    }

    #[test]
    fn nan_threshold_is_deny() {
        let mut policy = PolicyConfig::unprotected();
        policy.block_threshold = f64::NAN;
        let diags = analyze_profile(&named(policy));
        let d = diags
            .iter()
            .find(|d| d.lint == lints::NONFINITE_THRESHOLD)
            .expect("NaN must be flagged");
        assert_eq!(d.severity, Severity::Deny);
    }

    #[test]
    fn infinite_threshold_warns_only_when_protecting() {
        // Deliberately unprotected: no finding.
        assert!(analyze_profile(&named(PolicyConfig::unprotected())).is_empty());
        // A limiter present makes the same thresholds a silent disablement.
        let mut policy = PolicyConfig::unprotected();
        policy.path_sms_limit = Some((100.0, 100.0));
        let diags = analyze_profile(&named(policy));
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.lint == lints::NONFINITE_THRESHOLD && d.severity == Severity::Warn)
                .count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn airline_d_path_limit_never_fires() {
        // §IV-C: a 20 000/day path limit against a 200-SMS-per-hour pump plus
        // ~170 legit SMS/day. Demand never exceeds refill: silent forever.
        let profile = named(PolicyConfig::traditional_antibot()).sms(170.0, 4_800.0);
        let diags = analyze_profile(&profile);
        let d = diags
            .iter()
            .find(|d| d.lint == lints::LIMITER_NEVER_FIRES)
            .expect("the volumetric-era limit must be flagged");
        assert!(d.message.contains("sms"), "{}", d.message);
        assert!(
            d.explanation["path_sms_limit"].contains("never rejects"),
            "{:?}",
            d.explanation
        );
    }

    #[test]
    fn per_booking_limit_catches_what_the_path_limit_misses() {
        // Same demand, recommended posture: the keyed 3/day booking limit
        // faces the full hot-key concentration and fires within minutes.
        let profile = named(PolicyConfig::recommended()).sms(170.0, 4_800.0);
        let diags = analyze_profile(&profile);
        assert!(
            !lints_of(&diags).contains(&lints::LIMITER_NEVER_FIRES),
            "{diags:?}"
        );
    }

    #[test]
    fn slow_pump_within_headroom_is_flagged() {
        // Airline D's posture *after* the path limit was added, against the
        // actual 3/hour pump: limit = 1.02x legit daily, demand above refill,
        // fires after ~4 days — within a 3-week horizon, so no finding.
        let legit = 270.0;
        let mut policy = PolicyConfig::unprotected();
        policy.path_sms_limit = Some((legit * 1.02, legit * 1.02));
        let fires = named(policy.clone()).sms(legit, 72.0);
        assert!(!lints_of(&analyze_profile(&fires)).contains(&lints::LIMITER_NEVER_FIRES));
        // Shrink the horizon below the time-to-fire and it becomes a finding.
        let too_short = named(policy)
            .sms(legit, 72.0)
            .horizon(SimDuration::from_days(2));
        assert!(lints_of(&analyze_profile(&too_short)).contains(&lints::LIMITER_NEVER_FIRES));
    }

    #[test]
    fn unguarded_channel_needs_limiter_or_gate() {
        // Protecting posture (finite thresholds), hold abuse modeled, but no
        // hold limiter and no gate: unguarded.
        let profile = named(PolicyConfig::traditional_antibot()).holds(400.0, 288.0);
        assert!(lints_of(&analyze_profile(&profile)).contains(&lints::UNGUARDED_CHANNEL));
        // A tier gate on Hold counts as a guard.
        let mut gated = PolicyConfig::traditional_antibot();
        gated.gate.require(Endpoint::Hold, TrustTier::Verified);
        let profile = named(gated).holds(400.0, 288.0);
        assert!(!lints_of(&analyze_profile(&profile)).contains(&lints::UNGUARDED_CHANNEL));
        // The deliberately unprotected posture is exempt.
        let profile = named(PolicyConfig::unprotected()).holds(400.0, 288.0);
        assert!(analyze_profile(&profile).is_empty());
    }

    #[test]
    fn eviction_ttl_shorter_than_refill_is_deny() {
        let mut profile = named(PolicyConfig::recommended());
        // booking_sms_limit (3, 3/day) refills in 1 day; a 6 h TTL loses state.
        profile.scenario.limiter_eviction_ttl = Some(SimDuration::from_hours(6));
        let diags = analyze_profile(&profile);
        let d = diags
            .iter()
            .find(|d| d.lint == lints::EVICTION_BEFORE_REFILL)
            .expect("short TTL must be flagged");
        assert_eq!(d.severity, Severity::Deny);
        // A TTL past the slowest refill is fine.
        profile.scenario.limiter_eviction_ttl = Some(SimDuration::from_days(2));
        assert!(analyze_profile(&profile).is_empty());
    }

    #[test]
    fn decoy_range_must_clear_real_inventory() {
        let mut profile = named(PolicyConfig::recommended());
        profile.scenario.decoy_ref_base = 1_000;
        profile.scenario.expected_bookings = 5_000;
        let diags = analyze_profile(&profile);
        let d = diags
            .iter()
            .find(|d| d.lint == lints::DECOY_OVERLAP)
            .expect("overlapping decoys must be flagged");
        assert_eq!(d.severity, Severity::Deny);
        // Without the honeypot the decoy range is unused.
        let mut no_pot = profile.clone();
        no_pot.policy.honeypot_instead_of_block = false;
        assert!(!lints_of(&analyze_profile(&no_pot)).contains(&lints::DECOY_OVERLAP));
    }

    #[test]
    fn nip_cap_above_legit_parties_is_headroom_for_abuse() {
        let profile = named(PolicyConfig::recommended()).max_nip(12);
        assert!(lints_of(&analyze_profile(&profile)).contains(&lints::NIP_CAP_HEADROOM));
    }

    #[test]
    fn nip_cap_friction_scales_with_coverage() {
        // Cap 4 fits 94% of parties: informational.
        let profile = named(PolicyConfig::recommended()).max_nip(4);
        let diags = analyze_profile(&profile);
        let d = diags
            .iter()
            .find(|d| d.lint == lints::NIP_CAP_FRICTION)
            .expect("a splitting cap is reported");
        assert_eq!(d.severity, Severity::Info);
        // Cap 1 fits 52%: a warning.
        let profile = named(PolicyConfig::recommended()).max_nip(1);
        let diags = analyze_profile(&profile);
        let d = diags
            .iter()
            .find(|d| d.lint == lints::NIP_CAP_FRICTION)
            .unwrap();
        assert_eq!(d.severity, Severity::Warn);
    }

    #[test]
    fn duplicate_and_shadowed_rules_are_flagged() {
        let mut rules = BlockRuleEngine::new();
        let ip = IpAddress::from_octets(203, 0, 113, 7);
        let sibling = IpAddress::from_octets(203, 0, 113, 99);
        rules.add_rule(BlockRule::IpSubnet24(ip), SimTime::ZERO);
        rules.add_rule(BlockRule::IpExact(sibling), SimTime::ZERO); // shadowed by /24
        rules.add_rule(BlockRule::IpSubnet24(ip), SimTime::ZERO); // duplicate
        rules.add_rule(BlockRule::FingerprintIdentity(42), SimTime::ZERO);
        rules.add_rule(BlockRule::FingerprintIdentity(42), SimTime::ZERO); // duplicate
        let diags = analyze_rules(&rules, "test");
        let lints = lints_of(&diags);
        assert_eq!(
            lints
                .iter()
                .filter(|&&l| l == lints::DUPLICATE_RULE)
                .count(),
            2,
            "{diags:?}"
        );
        assert_eq!(
            lints.iter().filter(|&&l| l == lints::SHADOWED_RULE).count(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn combo_without_screen_shadows_combo_with_screen() {
        use fg_fingerprint::attributes::{BrowserFamily, OsFamily, ScreenResolution};
        let mut rules = BlockRuleEngine::new();
        rules.add_rule(
            BlockRule::AttributeCombo {
                browser: BrowserFamily::Chrome,
                os: OsFamily::Windows,
                screen: None,
            },
            SimTime::ZERO,
        );
        rules.add_rule(
            BlockRule::AttributeCombo {
                browser: BrowserFamily::Chrome,
                os: OsFamily::Windows,
                screen: Some(ScreenResolution::new(1920, 1080)),
            },
            SimTime::ZERO,
        );
        let diags = analyze_rules(&rules, "test");
        assert!(
            lints_of(&diags).contains(&lints::SHADOWED_RULE),
            "{diags:?}"
        );
        // The reverse order is fine: narrow first, broad later.
        let mut rules = BlockRuleEngine::new();
        rules.add_rule(
            BlockRule::AttributeCombo {
                browser: BrowserFamily::Chrome,
                os: OsFamily::Windows,
                screen: Some(ScreenResolution::new(1920, 1080)),
            },
            SimTime::ZERO,
        );
        rules.add_rule(
            BlockRule::AttributeCombo {
                browser: BrowserFamily::Chrome,
                os: OsFamily::Windows,
                screen: None,
            },
            SimTime::ZERO,
        );
        assert!(analyze_rules(&rules, "test").is_empty());
    }

    #[test]
    fn waivers_mark_but_keep_findings() {
        let profile = named(PolicyConfig::traditional_antibot())
            .sms(170.0, 4_800.0)
            .waive(
                lints::LIMITER_NEVER_FIRES,
                "era-accurate posture under study",
            );
        let diags = analyze_profile(&profile);
        let d = diags
            .iter()
            .find(|d| d.lint == lints::LIMITER_NEVER_FIRES)
            .expect("waived findings are still reported");
        assert!(d.waived);
        assert_eq!(
            d.waive_reason.as_deref(),
            Some("era-accurate posture under study")
        );
        assert!(!d.gates_at(Severity::Info));
        let _ = Waiver {
            lint: lints::LIMITER_NEVER_FIRES,
            reason: "doc",
        };
    }
}
