//! The diagnostic model shared by both analysis passes.
//!
//! Every finding — whether from the config linter or the source scanner — is
//! a [`Diagnostic`]: a stable lint id, a [`Severity`], the place it was found
//! (a profile name or a `path:line` span), a human-readable message, and a
//! machine-readable explanation map carrying the numbers behind the verdict
//! (so CI artifacts can be post-processed without parsing prose).

use serde::value::Value;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// How bad a finding is.
///
/// Ordering is by badness (`Info < Warn < Deny`), so `--deny warn` is simply
/// a `>=` comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never gates.
    Info,
    /// A semantic smell that is sometimes intentional (waivable).
    Warn,
    /// A contract violation; the committed workspace must have none.
    Deny,
}

impl Severity {
    /// The lowercase name used in JSON output and `--deny` arguments.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses a `--deny` argument.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

/// One finding from an analysis pass.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable lint id (e.g. `"limiter-never-fires"`, `"wall-clock"`).
    pub lint: String,
    /// Severity before waivers are considered.
    pub severity: Severity,
    /// Where: a profile name (`"spec:ablation/traditional"`) or a source
    /// span (`"crates/detection/src/engine.rs:286"`).
    pub source: String,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Machine-readable facts behind the verdict (numbers as strings, keys
    /// sorted for stable JSON artifacts).
    pub explanation: BTreeMap<String, String>,
    /// `true` when the owning profile explicitly acknowledged this finding;
    /// waived diagnostics are reported but never gate.
    pub waived: bool,
    /// The waiver's stated reason, when waived.
    pub waive_reason: Option<String>,
}

impl Diagnostic {
    /// Creates a finding with an empty explanation.
    pub fn new(
        lint: &str,
        severity: Severity,
        source: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            lint: lint.to_owned(),
            severity,
            source: source.into(),
            message: message.into(),
            explanation: BTreeMap::new(),
            waived: false,
            waive_reason: None,
        }
    }

    /// Attaches one machine-readable fact (builder style).
    #[must_use]
    pub fn note(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.explanation.insert(key.to_owned(), value.to_string());
        self
    }

    /// Marks the finding as acknowledged by a waiver.
    #[must_use]
    pub fn waived(mut self, reason: &str) -> Self {
        self.waived = true;
        self.waive_reason = Some(reason.to_owned());
        self
    }

    /// `true` when this finding should fail a gate at `level`.
    pub fn gates_at(&self, level: Severity) -> bool {
        !self.waived && self.severity >= level
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:5} {:24} {}\n      {}",
            self.severity, self.lint, self.source, self.message
        )?;
        for (k, v) in &self.explanation {
            write!(f, "\n      · {k}: {v}")?;
        }
        if self.waived {
            write!(
                f,
                "\n      (waived: {})",
                self.waive_reason.as_deref().unwrap_or("no reason given")
            )?;
        }
        Ok(())
    }
}

/// Renders a report: every diagnostic (most severe first, stable within a
/// severity) followed by a one-line summary.
pub fn render_pretty(diags: &[Diagnostic]) -> String {
    let mut ordered: Vec<&Diagnostic> = diags.iter().collect();
    ordered.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.source.cmp(&b.source))
            .then_with(|| a.lint.cmp(&b.lint))
    });
    let mut out = String::new();
    for d in &ordered {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let (mut deny, mut warn, mut info, mut waived) = (0, 0, 0, 0);
    for d in diags {
        if d.waived {
            waived += 1;
            continue;
        }
        match d.severity {
            Severity::Deny => deny += 1,
            Severity::Warn => warn += 1,
            Severity::Info => info += 1,
        }
    }
    out.push_str(&format!(
        "{} diagnostics: {deny} deny, {warn} warn, {info} info ({waived} waived)\n",
        diags.len()
    ));
    out
}

/// Serializes diagnostics as a JSON array (stable key order).
pub fn render_json(diags: &[Diagnostic]) -> String {
    serde_json::to_string_pretty(&diags.to_vec()).expect("diagnostics serialize infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warn));
        assert_eq!(Severity::parse("loud"), None);
    }

    #[test]
    fn gating_respects_level_and_waivers() {
        let d = Diagnostic::new("x", Severity::Warn, "here", "msg");
        assert!(d.gates_at(Severity::Info));
        assert!(d.gates_at(Severity::Warn));
        assert!(!d.gates_at(Severity::Deny));
        assert!(!d.clone().waived("intentional").gates_at(Severity::Info));
    }

    #[test]
    fn pretty_report_carries_explanations_and_summary() {
        let diags = vec![
            Diagnostic::new("a-lint", Severity::Warn, "spec:x", "first").note("k", 42),
            Diagnostic::new("b-lint", Severity::Deny, "spec:y", "second"),
            Diagnostic::new("c-lint", Severity::Warn, "spec:z", "third").waived("on purpose"),
        ];
        let report = render_pretty(&diags);
        assert!(report.contains("· k: 42"), "{report}");
        assert!(report.contains("(waived: on purpose)"), "{report}");
        assert!(
            report.contains("3 diagnostics: 1 deny, 1 warn, 0 info (1 waived)"),
            "{report}"
        );
        // Deny sorts first.
        assert!(report.find("b-lint").unwrap() < report.find("a-lint").unwrap());
    }

    #[test]
    fn json_round_trips_the_fields() {
        let d = Diagnostic::new("a-lint", Severity::Deny, "src:1", "msg").note("n", 7);
        let json = render_json(&[d]);
        assert!(json.contains("\"a-lint\""), "{json}");
        assert!(json.contains("\"deny\""), "{json}");
        assert!(json.contains("\"n\""), "{json}");
    }
}
