//! CAPTCHA challenges with explicit two-sided economics.
//!
//! §V: "Even if attackers can leverage CAPTCHA-solving services, these
//! measures add cost and complexity to automated attacks." The model makes
//! that quantitative: humans pass with a small friction (and a small
//! abandonment probability — the usability cost), bots pass only by paying a
//! solver fee and waiting for solver latency.

use fg_core::money::Money;
use fg_core::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The outcome of presenting one CAPTCHA.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CaptchaOutcome {
    /// Solved; carries the solving latency and what it cost the solver side.
    Solved {
        /// Time spent solving.
        latency: SimDuration,
        /// Money the client side paid (zero for humans).
        cost: Money,
    },
    /// The client gave up — for humans this is the usability loss §V warns
    /// about; for bots, a solver failure.
    Abandoned,
}

impl CaptchaOutcome {
    /// `true` if the challenge was passed.
    pub fn solved(&self) -> bool {
        matches!(self, CaptchaOutcome::Solved { .. })
    }

    /// The monetary cost incurred (zero when abandoned or human-solved).
    pub fn cost(&self) -> Money {
        match self {
            CaptchaOutcome::Solved { cost, .. } => *cost,
            CaptchaOutcome::Abandoned => Money::ZERO,
        }
    }
}

/// CAPTCHA behaviour parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CaptchaPolicy {
    /// Probability a human abandons rather than solving (friction).
    pub human_abandon_prob: f64,
    /// Mean human solving time.
    pub human_latency: SimDuration,
    /// Per-solve price of a commercial solving service (≈ $1–3 / 1000 in the
    /// wild; default 0.2¢).
    pub solver_price: Money,
    /// Solver success probability.
    pub solver_success_prob: f64,
    /// Mean solver latency.
    pub solver_latency: SimDuration,
}

impl Default for CaptchaPolicy {
    fn default() -> Self {
        CaptchaPolicy {
            human_abandon_prob: 0.03,
            human_latency: SimDuration::from_secs(12),
            solver_price: Money::from_micros(2_000), // $0.002
            solver_success_prob: 0.92,
            solver_latency: SimDuration::from_secs(25),
        }
    }
}

impl CaptchaPolicy {
    /// Presents the challenge to a human.
    pub fn challenge_human<R: Rng + ?Sized>(&self, rng: &mut R) -> CaptchaOutcome {
        if rng.gen_bool(self.human_abandon_prob.clamp(0.0, 1.0)) {
            CaptchaOutcome::Abandoned
        } else {
            CaptchaOutcome::Solved {
                latency: jitter(self.human_latency, rng),
                cost: Money::ZERO,
            }
        }
    }

    /// Presents the challenge to a bot using a solving service. The solver
    /// fee is paid per *attempt*, succeed or fail — as real services charge.
    pub fn challenge_bot<R: Rng + ?Sized>(&self, rng: &mut R) -> CaptchaOutcome {
        if rng.gen_bool(self.solver_success_prob.clamp(0.0, 1.0)) {
            CaptchaOutcome::Solved {
                latency: jitter(self.solver_latency, rng),
                cost: self.solver_price,
            }
        } else {
            CaptchaOutcome::Abandoned
        }
    }
}

fn jitter<R: Rng + ?Sized>(mean: SimDuration, rng: &mut R) -> SimDuration {
    mean.mul_f64(rng.gen_range(0.6..1.4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn humans_usually_pass_free() {
        let policy = CaptchaPolicy::default();
        let mut rng = StdRng::seed_from_u64(1);
        let outcomes: Vec<CaptchaOutcome> = (0..1000)
            .map(|_| policy.challenge_human(&mut rng))
            .collect();
        let solved = outcomes.iter().filter(|o| o.solved()).count();
        assert!(solved > 940, "solved {solved}/1000");
        assert!(outcomes.iter().all(|o| o.cost() == Money::ZERO));
    }

    #[test]
    fn bots_pay_per_attempt() {
        let policy = CaptchaPolicy::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut paid = Money::ZERO;
        let mut solved = 0;
        for _ in 0..1000 {
            let o = policy.challenge_bot(&mut rng);
            paid += o.cost();
            solved += u32::from(o.solved());
        }
        assert!(solved > 880 && solved < 960, "solver success {solved}/1000");
        // Only solved attempts carry cost in the receipt; the ledger-level
        // per-attempt accounting lives in economics.rs.
        assert_eq!(paid, policy.solver_price * u64::from(solved));
    }

    #[test]
    fn bot_solving_is_slower_than_human() {
        let policy = CaptchaPolicy::default();
        let mut rng = StdRng::seed_from_u64(3);
        let human_mean: f64 = (0..200)
            .filter_map(|_| match policy.challenge_human(&mut rng) {
                CaptchaOutcome::Solved { latency, .. } => Some(latency.as_secs_f64()),
                CaptchaOutcome::Abandoned => None,
            })
            .sum::<f64>()
            / 200.0;
        let bot_mean: f64 = (0..200)
            .filter_map(|_| match policy.challenge_bot(&mut rng) {
                CaptchaOutcome::Solved { latency, .. } => Some(latency.as_secs_f64()),
                CaptchaOutcome::Abandoned => None,
            })
            .sum::<f64>()
            / 200.0;
        assert!(bot_mean > human_mean);
    }

    #[test]
    fn outcome_accessors() {
        let o = CaptchaOutcome::Solved {
            latency: SimDuration::from_secs(10),
            cost: Money::from_cents(1),
        };
        assert!(o.solved());
        assert_eq!(o.cost(), Money::from_cents(1));
        assert!(!CaptchaOutcome::Abandoned.solved());
        assert_eq!(CaptchaOutcome::Abandoned.cost(), Money::ZERO);
    }

    #[test]
    fn deterministic_per_seed() {
        let policy = CaptchaPolicy::default();
        let a = policy.challenge_bot(&mut StdRng::seed_from_u64(7));
        let b = policy.challenge_bot(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
