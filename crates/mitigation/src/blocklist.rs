//! Fingerprint and IP block rules with efficacy tracking.
//!
//! §IV-A's defensive loop — "we introduced blocking measures based on
//! fingerprinting patterns. Our observations revealed that attackers quickly
//! adjusted to each new fingerprint-based rule, typically rotating their
//! technical features within an average of 5.3 hours" — is exactly what
//! [`BlockRuleEngine`] instruments: each rule records when it was created,
//! when it hit, and when it went silent, so the experiment harness can
//! measure time-to-evasion per rule.

use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::attributes::{BrowserFamily, Fingerprint, OsFamily, ScreenResolution};
use fg_netsim::ip::IpAddress;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A blocking predicate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BlockRule {
    /// Block one exact fingerprint identity.
    FingerprintIdentity(u64),
    /// Block a (browser, OS, optional screen) attribute combination — the
    /// "fingerprinting patterns" of §IV-A, broader than one identity.
    AttributeCombo {
        /// Browser family to match.
        browser: BrowserFamily,
        /// OS family to match.
        os: OsFamily,
        /// Screen to match (any when `None`).
        screen: Option<ScreenResolution>,
    },
    /// Block one exact IP address.
    IpExact(IpAddress),
    /// Block a whole /24.
    IpSubnet24(IpAddress),
}

impl BlockRule {
    /// `true` if the rule matches this client.
    pub fn matches(&self, fp: &Fingerprint, ip: IpAddress) -> bool {
        match *self {
            BlockRule::FingerprintIdentity(h) => fp.identity_hash() == h,
            BlockRule::AttributeCombo {
                browser,
                os,
                screen,
            } => fp.browser == browser && fp.os == os && screen.is_none_or(|s| fp.screen == s),
            BlockRule::IpExact(a) => ip == a,
            BlockRule::IpSubnet24(a) => ip.subnet24() == a.subnet24(),
        }
    }
}

impl fmt::Display for BlockRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockRule::FingerprintIdentity(h) => write!(f, "fp:{h:016x}"),
            BlockRule::AttributeCombo {
                browser,
                os,
                screen,
            } => match screen {
                Some(s) => write!(f, "combo:{browser}/{os}/{s}"),
                None => write!(f, "combo:{browser}/{os}"),
            },
            BlockRule::IpExact(a) => write!(f, "ip:{a}"),
            BlockRule::IpSubnet24(a) => write!(f, "subnet:{}/24", a.subnet24()),
        }
    }
}

/// Lifetime statistics of one deployed rule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuleStats {
    /// The rule itself.
    pub rule: BlockRule,
    /// When the defender deployed it.
    pub created_at: SimTime,
    /// Requests it blocked.
    pub hits: u64,
    /// The last time it blocked anything.
    pub last_hit: Option<SimTime>,
}

impl RuleStats {
    /// How long the rule stayed effective: from creation to last hit.
    /// `None` if it never hit.
    pub fn effective_for(&self) -> Option<SimDuration> {
        self.last_hit.map(|t| t - self.created_at)
    }
}

/// An ordered collection of block rules.
#[derive(Clone, Debug, Default)]
pub struct BlockRuleEngine {
    rules: Vec<RuleStats>,
}

impl BlockRuleEngine {
    /// An empty engine.
    pub fn new() -> Self {
        BlockRuleEngine::default()
    }

    /// Deploys a rule at `now`. Returns its index.
    pub fn add_rule(&mut self, rule: BlockRule, now: SimTime) -> usize {
        self.rules.push(RuleStats {
            rule,
            created_at: now,
            hits: 0,
            last_hit: None,
        });
        self.rules.len() - 1
    }

    /// Deploys the rule a defender typically writes after inspecting an
    /// attack fingerprint: the exact identity plus its attribute combo.
    pub fn block_observed_fingerprint(&mut self, fp: &Fingerprint, now: SimTime) {
        self.add_rule(BlockRule::FingerprintIdentity(fp.identity_hash()), now);
        self.add_rule(
            BlockRule::AttributeCombo {
                browser: fp.browser,
                os: fp.os,
                screen: Some(fp.screen),
            },
            now,
        );
    }

    /// Checks a request; records a hit on (only) the first matching rule.
    /// Returns the matching rule, if any.
    pub fn check(&mut self, fp: &Fingerprint, ip: IpAddress, now: SimTime) -> Option<BlockRule> {
        for stats in &mut self.rules {
            if stats.rule.matches(fp, ip) {
                stats.hits += 1;
                stats.last_hit = Some(now);
                return Some(stats.rule);
            }
        }
        None
    }

    /// Read-only match test (no hit recording).
    pub fn would_block(&self, fp: &Fingerprint, ip: IpAddress) -> bool {
        self.rules.iter().any(|s| s.rule.matches(fp, ip))
    }

    /// Statistics for every deployed rule, in deployment order.
    pub fn stats(&self) -> &[RuleStats] {
        &self.rules
    }

    /// Number of deployed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when no rules are deployed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Mean effective lifetime over rules that ever hit — the defender-side
    /// view of the §IV-A "5.3 hours to evasion" statistic.
    pub fn mean_effective_lifetime(&self) -> Option<SimDuration> {
        let lifetimes: Vec<i64> = self
            .rules
            .iter()
            .filter_map(|s| s.effective_for().map(|d| d.as_millis()))
            .collect();
        if lifetimes.is_empty() {
            return None;
        }
        Some(SimDuration::from_millis(
            lifetimes.iter().sum::<i64>() / lifetimes.len() as i64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_fingerprint::PopulationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(seed: u64) -> Fingerprint {
        PopulationModel::default_web().sample_human(&mut StdRng::seed_from_u64(seed))
    }

    fn ip(host: u8) -> IpAddress {
        IpAddress::from_octets(192, 0, 2, host)
    }

    #[test]
    fn identity_rule_matches_only_that_identity() {
        let a = fp(1);
        let b = fp(2);
        let rule = BlockRule::FingerprintIdentity(a.identity_hash());
        assert!(rule.matches(&a, ip(1)));
        assert!(!rule.matches(&b, ip(1)));
    }

    #[test]
    fn combo_rule_matches_family() {
        let a = fp(1);
        let rule = BlockRule::AttributeCombo {
            browser: a.browser,
            os: a.os,
            screen: None,
        };
        assert!(rule.matches(&a, ip(1)));
        let mut rotated = a.clone();
        rotated.canvas_hash ^= 1; // identity changed, combo unchanged
        assert!(
            rule.matches(&rotated, ip(1)),
            "combo survives small rotation"
        );
    }

    #[test]
    fn subnet_rule_blocks_neighbours() {
        let rule = BlockRule::IpSubnet24(ip(10));
        assert!(rule.matches(&fp(1), ip(200)));
        assert!(!rule.matches(&fp(1), IpAddress::from_octets(192, 0, 3, 10)));
    }

    #[test]
    fn engine_records_hits_and_lifetimes() {
        let mut e = BlockRuleEngine::new();
        let target = fp(3);
        e.block_observed_fingerprint(&target, SimTime::ZERO);
        assert_eq!(e.len(), 2);

        assert!(e.check(&target, ip(1), SimTime::from_hours(1)).is_some());
        assert!(e.check(&target, ip(1), SimTime::from_hours(5)).is_some());
        let s = &e.stats()[0];
        assert_eq!(s.hits, 2);
        assert_eq!(s.effective_for(), Some(SimDuration::from_hours(5)));
        assert_eq!(
            e.mean_effective_lifetime(),
            Some(SimDuration::from_hours(5))
        );
    }

    #[test]
    fn unmatched_rule_has_no_lifetime() {
        let mut e = BlockRuleEngine::new();
        e.add_rule(BlockRule::IpExact(ip(9)), SimTime::ZERO);
        assert!(e.check(&fp(1), ip(1), SimTime::from_hours(1)).is_none());
        assert_eq!(e.stats()[0].hits, 0);
        assert_eq!(e.stats()[0].effective_for(), None);
        assert_eq!(e.mean_effective_lifetime(), None);
    }

    #[test]
    fn would_block_does_not_mutate() {
        let mut e = BlockRuleEngine::new();
        let target = fp(4);
        e.add_rule(
            BlockRule::FingerprintIdentity(target.identity_hash()),
            SimTime::ZERO,
        );
        assert!(e.would_block(&target, ip(1)));
        assert_eq!(e.stats()[0].hits, 0);
    }

    #[test]
    fn mimicry_rotation_evades_identity_and_combo_rules() {
        // The §IV-A dynamic: after full rotation, old rules stop matching.
        let mut e = BlockRuleEngine::new();
        let model = PopulationModel::default_web();
        let mut rng = StdRng::seed_from_u64(5);
        let original = model.sample_human(&mut rng);
        e.block_observed_fingerprint(&original, SimTime::ZERO);
        let mut evasions = 0;
        for _ in 0..50 {
            let rotated = model.sample_mimicry_bot(&mut rng);
            if !e.would_block(&rotated, ip(1)) {
                evasions += 1;
            }
        }
        assert!(
            evasions >= 45,
            "fresh identities usually evade: {evasions}/50"
        );
    }

    #[test]
    fn display_is_readable() {
        assert!(BlockRule::IpExact(ip(1))
            .to_string()
            .starts_with("ip:192.0.2.1"));
        let combo = BlockRule::AttributeCombo {
            browser: BrowserFamily::Chrome,
            os: OsFamily::Windows,
            screen: None,
        };
        assert_eq!(combo.to_string(), "combo:Chrome/Windows");
    }
}
