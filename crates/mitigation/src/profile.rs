//! Declarative defence-deployment profiles.
//!
//! A [`DefenceProfile`] describes one *deployment* of the defence stack: the
//! [`PolicyConfig`] in force plus the scenario facts needed to judge whether
//! that config is coherent — modeled traffic, booking-hold TTLs, legitimate
//! group-size distributions, expected inventory volume. The paper's core
//! lesson is that functional abuse slips through defences that are
//! *misconfigured for the feature* (a NiP cap that doesn't match real group
//! sizes, a rate limit that can never fire against low-and-slow abuse), and
//! those mismatches are only visible when config and scenario are examined
//! together. `fg-analyze` consumes these profiles for exactly that purpose.
//!
//! Profiles that deliberately reproduce a paper misconfiguration (e.g. the
//! §IV-C era path limit sized for volumetric attacks) attach [`Waiver`]s
//! naming the lint they expect to trip and why — the finding is reported but
//! does not fail the CI gate.

use crate::policy::PolicyConfig;
use fg_core::time::SimDuration;

/// The Fig. 1 airline group-size (names-in-PNR) distribution as
/// `(party_size, weight)` pairs.
///
/// This mirrors `LegitConfig::default_airline` in `fg-behavior` (which cannot
/// be imported here without a dependency cycle); a test on the scenario side
/// asserts the two stay identical.
pub const AIRLINE_NIP_WEIGHTS: [(u32, f64); 9] = [
    (1, 52.0),
    (2, 30.0),
    (3, 7.0),
    (4, 5.0),
    (5, 2.5),
    (6, 1.5),
    (7, 1.0),
    (8, 0.6),
    (9, 0.4),
];

/// An acknowledged, intentional lint finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// The lint id being waived (e.g. `"limiter-never-fires"`).
    pub lint: &'static str,
    /// Why the finding is accepted rather than fixed.
    pub reason: &'static str,
}

/// Modeled steady-state demand on one abusable channel, in events per day.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelTraffic {
    /// Legitimate demand across the whole population.
    pub legit_per_day: f64,
    /// Attack demand concentrated on the *hottest single key* (one booking
    /// ref, one client) — the worst case a keyed limiter must catch.
    pub attack_per_day: f64,
}

impl ChannelTraffic {
    /// Total path-wide demand.
    pub fn total_per_day(&self) -> f64 {
        self.legit_per_day + self.attack_per_day
    }
}

/// Scenario facts a policy config must be judged against.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioContext {
    /// How long the deployment runs.
    pub horizon: SimDuration,
    /// Booking-hold time-to-live.
    pub hold_ttl: SimDuration,
    /// The names-in-PNR cap enforced by the application.
    pub max_nip: u32,
    /// Legitimate group-size distribution as `(party_size, weight)` pairs.
    pub nip_weights: Vec<(u32, f64)>,
    /// SMS-path demand, when the scenario models SMS abuse.
    pub sms: Option<ChannelTraffic>,
    /// Hold-path demand, when the scenario models hold abuse.
    pub holds: Option<ChannelTraffic>,
    /// Real bookings the scenario may create over the horizon (bounds the
    /// real booking-reference index range, for decoy-overlap checks).
    pub expected_bookings: u64,
    /// First index of the honeypot decoy booking-reference range (defaults
    /// to [`crate::honeypot::DECOY_REF_BASE`]).
    pub decoy_ref_base: u64,
    /// Idle-state eviction TTL for keyed limiters, if the deployment evicts
    /// by age. `None` means refill-based (lossless) eviction — the committed
    /// implementation — which cannot lose limiter state by construction.
    pub limiter_eviction_ttl: Option<SimDuration>,
}

impl Default for ScenarioContext {
    /// The Fig. 1 "average week" airline: 400 arrivals/day over three weeks,
    /// 30-minute holds, NiP capped at the largest legitimate party.
    fn default() -> Self {
        ScenarioContext {
            horizon: SimDuration::from_days(21),
            hold_ttl: SimDuration::from_mins(30),
            max_nip: 9,
            nip_weights: AIRLINE_NIP_WEIGHTS.to_vec(),
            sms: None,
            holds: None,
            expected_bookings: 400 * 21,
            decoy_ref_base: crate::honeypot::DECOY_REF_BASE,
            limiter_eviction_ttl: None,
        }
    }
}

impl ScenarioContext {
    /// Fraction of legitimate parties that fit within `cap` names.
    ///
    /// Returns 1.0 for an empty distribution (nothing to exclude).
    pub fn nip_coverage(&self, cap: u32) -> f64 {
        let total: f64 = self.nip_weights.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return 1.0;
        }
        let within: f64 = self
            .nip_weights
            .iter()
            .filter(|&&(size, _)| size <= cap)
            .map(|&(_, w)| w)
            .sum();
        within / total
    }

    /// The largest party size legitimate customers book.
    pub fn max_legit_party(&self) -> u32 {
        self.nip_weights
            .iter()
            .map(|&(size, _)| size)
            .max()
            .unwrap_or(0)
    }
}

/// One named deployment of the defence stack, ready for semantic analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct DefenceProfile {
    /// Where this deployment appears (e.g. `"ablation/traditional"`).
    pub name: String,
    /// The policy in force.
    pub policy: PolicyConfig,
    /// The scenario it defends.
    pub scenario: ScenarioContext,
    /// Lints this profile intentionally trips.
    pub waivers: Vec<Waiver>,
}

impl DefenceProfile {
    /// A profile over the default airline scenario.
    pub fn airline(name: impl Into<String>, policy: PolicyConfig) -> Self {
        DefenceProfile {
            name: name.into(),
            policy,
            scenario: ScenarioContext::default(),
            waivers: Vec::new(),
        }
    }

    /// Sets the deployment horizon (builder style).
    #[must_use]
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.scenario.horizon = horizon;
        self
    }

    /// Sets the booking-hold TTL (builder style).
    #[must_use]
    pub fn hold_ttl(mut self, ttl: SimDuration) -> Self {
        self.scenario.hold_ttl = ttl;
        self
    }

    /// Sets the enforced NiP cap (builder style).
    #[must_use]
    pub fn max_nip(mut self, cap: u32) -> Self {
        self.scenario.max_nip = cap;
        self
    }

    /// Models SMS-path demand (builder style).
    #[must_use]
    pub fn sms(mut self, legit_per_day: f64, attack_per_day: f64) -> Self {
        self.scenario.sms = Some(ChannelTraffic {
            legit_per_day,
            attack_per_day,
        });
        self
    }

    /// Models hold-path demand (builder style).
    #[must_use]
    pub fn holds(mut self, legit_per_day: f64, attack_per_day: f64) -> Self {
        self.scenario.holds = Some(ChannelTraffic {
            legit_per_day,
            attack_per_day,
        });
        self
    }

    /// Sets the expected real-booking volume (builder style).
    #[must_use]
    pub fn expected_bookings(mut self, n: u64) -> Self {
        self.scenario.expected_bookings = n;
        self
    }

    /// Acknowledges an intentional lint finding (builder style).
    #[must_use]
    pub fn waive(mut self, lint: &'static str, reason: &'static str) -> Self {
        self.waivers.push(Waiver { lint, reason });
        self
    }

    /// The waiver for `lint`, if one is attached.
    pub fn waiver_for(&self, lint: &str) -> Option<&Waiver> {
        self.waivers.iter().find(|w| w.lint == lint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nip_coverage_is_cumulative() {
        let ctx = ScenarioContext::default();
        assert!((ctx.nip_coverage(9) - 1.0).abs() < 1e-12);
        // 52 + 30 + 7 + 5 = 94 of 100 weight fits in 4 names.
        assert!((ctx.nip_coverage(4) - 0.94).abs() < 1e-12);
        assert!(ctx.nip_coverage(1) < ctx.nip_coverage(2));
        assert_eq!(ctx.max_legit_party(), 9);
    }

    #[test]
    fn empty_distribution_covers_trivially() {
        let mut ctx = ScenarioContext::default();
        ctx.nip_weights.clear();
        assert_eq!(ctx.nip_coverage(1), 1.0);
        assert_eq!(ctx.max_legit_party(), 0);
    }

    #[test]
    fn builder_composes() {
        let p = DefenceProfile::airline("t", PolicyConfig::recommended())
            .horizon(SimDuration::from_days(14))
            .hold_ttl(SimDuration::from_hours(3))
            .max_nip(4)
            .sms(270.0, 72.0)
            .holds(400.0, 48.0)
            .expected_bookings(9_999)
            .waive("limiter-never-fires", "era-accurate posture");
        assert_eq!(p.scenario.horizon, SimDuration::from_days(14));
        assert_eq!(p.scenario.max_nip, 4);
        assert_eq!(p.scenario.sms.unwrap().total_per_day(), 342.0);
        assert_eq!(p.scenario.expected_bookings, 9_999);
        assert!(p.waiver_for("limiter-never-fires").is_some());
        assert!(p.waiver_for("decoy-overlap").is_none());
    }
}
