//! Token-bucket rate limiting.

use fg_core::hash::FxHashMap;
use fg_core::shard::ShardedStore;
use fg_core::time::SimTime;
use std::hash::Hash;

/// A classic token bucket: capacity `burst`, refilled at `rate_per_sec`.
///
/// # Example
///
/// ```
/// use fg_mitigation::rate_limit::TokenBucket;
/// use fg_core::time::SimTime;
///
/// let mut tb = TokenBucket::new(2.0, 1.0); // burst 2, 1 token/sec
/// assert!(tb.try_acquire(SimTime::ZERO));
/// assert!(tb.try_acquire(SimTime::ZERO));
/// assert!(!tb.try_acquire(SimTime::ZERO));
/// assert!(tb.try_acquire(SimTime::from_secs(1)), "refilled after 1s");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate_per_sec: f64,
    updated: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `rate_per_sec` is negative.
    pub fn new(capacity: f64, rate_per_sec: f64) -> Self {
        assert!(capacity > 0.0, "bucket capacity must be positive");
        assert!(rate_per_sec >= 0.0, "refill rate cannot be negative");
        TokenBucket {
            capacity,
            tokens: capacity,
            rate_per_sec,
            updated: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.updated).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.capacity);
        self.updated = self.updated.max(now);
    }

    /// Attempts to take one token at `now`. Returns `true` on success.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.try_acquire_n(now, 1.0)
    }

    /// Attempts to take `n` tokens at `now`.
    pub fn try_acquire_n(&mut self, now: SimTime, n: f64) -> bool {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refill at `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// The bucket's capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

/// One hash partition of a [`KeyedLimiter`]: a flat bucket map plus its own
/// grant/reject tallies. Self-contained (it carries the bucket parameters)
/// so scoped threads can each own one shard and acquire/evict without any
/// cross-shard coordination.
#[derive(Clone, Debug)]
pub struct LimiterShard<K> {
    capacity: f64,
    rate_per_sec: f64,
    // Fx-hashed: keyed by integer client/booking keys on the request path.
    buckets: FxHashMap<K, TokenBucket>,
    rejections: u64,
    grants: u64,
}

impl<K: Eq + Hash> LimiterShard<K> {
    fn new(capacity: f64, rate_per_sec: f64) -> Self {
        LimiterShard {
            capacity,
            rate_per_sec,
            buckets: FxHashMap::default(),
            rejections: 0,
            grants: 0,
        }
    }

    /// Attempts to take one token for `key` at `now`.
    ///
    /// Correct only for keys this shard owns — the parent limiter routes;
    /// callers holding a shard directly (parallel workers) must partition
    /// keys with [`KeyedLimiter::shard_index`] first.
    pub fn try_acquire(&mut self, key: K, now: SimTime) -> bool {
        let (capacity, rate) = (self.capacity, self.rate_per_sec);
        let bucket = self.buckets.entry(key).or_insert_with(|| {
            let mut b = TokenBucket::new(capacity, rate);
            // A fresh key's bucket starts full *now*, not at epoch.
            b.updated = now;
            b
        });
        let granted = bucket.try_acquire(now);
        if granted {
            self.grants += 1;
        } else {
            self.rejections += 1;
        }
        granted
    }

    /// Drops every bucket in this shard that has refilled to capacity.
    pub fn evict_idle(&mut self, now: SimTime) {
        let capacity = self.capacity;
        self.buckets.retain(|_, b| b.available(now) < capacity);
    }

    /// Granted acquisitions routed to this shard.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Rejected acquisitions routed to this shard.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Keys with a materialized bucket in this shard.
    pub fn tracked_keys(&self) -> usize {
        self.buckets.len()
    }
}

/// A map of token buckets, one per key — per-booking, per-IP, per-user, or
/// per-path depending on the key type the caller chooses.
///
/// Internally hash-partitioned into [`LimiterShard`]s (1 shard by default,
/// which is bit-identical to a flat map). Aggregate reads sum over shards in
/// index order, so totals are independent of the shard count.
#[derive(Clone, Debug)]
pub struct KeyedLimiter<K> {
    shards: ShardedStore<K, LimiterShard<K>>,
}

impl<K: Eq + Hash> KeyedLimiter<K> {
    /// Creates a single-shard limiter whose per-key buckets have `capacity`
    /// and refill at `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TokenBucket::new`].
    pub fn new(capacity: f64, rate_per_sec: f64) -> Self {
        Self::with_shards(capacity, rate_per_sec, 1)
    }

    /// Creates a limiter hash-partitioned into `shards` partitions (rounded
    /// up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TokenBucket::new`].
    pub fn with_shards(capacity: f64, rate_per_sec: f64, shards: usize) -> Self {
        // Validate eagerly so a bad config fails at construction.
        let _ = TokenBucket::new(capacity, rate_per_sec);
        KeyedLimiter {
            shards: ShardedStore::new(shards, |_| LimiterShard::new(capacity, rate_per_sec)),
        }
    }

    /// Attempts to take one token for `key` at `now`.
    pub fn try_acquire(&mut self, key: K, now: SimTime) -> bool {
        self.shards.shard_mut(&key).try_acquire(key, now)
    }

    /// Drops every bucket that has refilled to capacity by `now`, striping
    /// the scan shard by shard.
    ///
    /// A full bucket is indistinguishable from the fresh bucket
    /// [`KeyedLimiter::try_acquire`] would materialize on the key's next
    /// request (fresh buckets start full *at* that request), so eviction is
    /// lossless: grant/deny outcomes are identical with or without it. Under
    /// identity-rotating workloads (fingerprints retired every few hours,
    /// per-request proxy exits) this is what keeps the key map bounded by the
    /// *live* population instead of growing with every identity ever seen.
    pub fn evict_idle(&mut self, now: SimTime) {
        // fg-analyze: allow(shard-discipline): full-sweep maintenance — idle eviction visits every shard
        for shard in self.shards.shards_mut() {
            shard.evict_idle(now);
        }
    }

    /// Total granted acquisitions across all shards.
    pub fn grants(&self) -> u64 {
        self.shards.fold(0, |acc, s| acc + s.grants)
    }

    /// Total rejected acquisitions across all shards.
    pub fn rejections(&self) -> u64 {
        self.shards.fold(0, |acc, s| acc + s.rejections)
    }

    /// Number of keys with a materialized bucket, summed over shards.
    pub fn tracked_keys(&self) -> usize {
        self.shards.fold(0, |acc, s| acc + s.buckets.len())
    }

    /// Number of shards (1 unless built via [`KeyedLimiter::with_shards`]).
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// The shard index owning `key` — parallel workers partition their key
    /// streams with this before taking shards from
    /// [`KeyedLimiter::shards_mut`].
    pub fn shard_index(&self, key: &K) -> usize {
        self.shards.shard_index(key)
    }

    /// All shards, mutably, for coordination-free parallel acquisition:
    /// each scoped thread takes one `&mut LimiterShard` and drives only the
    /// keys that [`KeyedLimiter::shard_index`] routes to it.
    pub fn shards_mut(&mut self) -> &mut [LimiterShard<K>] {
        self.shards.shards_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn bucket_enforces_burst_and_rate() {
        let mut tb = TokenBucket::new(3.0, 0.5);
        let t0 = SimTime::ZERO;
        assert!(tb.try_acquire(t0));
        assert!(tb.try_acquire(t0));
        assert!(tb.try_acquire(t0));
        assert!(!tb.try_acquire(t0));
        // 0.5 tokens/sec: after 2s exactly one token.
        let t2 = t0 + SimDuration::from_secs(2);
        assert!(tb.try_acquire(t2));
        assert!(!tb.try_acquire(t2));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut tb = TokenBucket::new(2.0, 100.0);
        assert!((tb.available(SimTime::from_days(300)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn acquire_n_takes_bulk() {
        let mut tb = TokenBucket::new(5.0, 0.0);
        assert!(tb.try_acquire_n(SimTime::ZERO, 4.0));
        assert!(!tb.try_acquire_n(SimTime::ZERO, 2.0));
        assert!(tb.try_acquire_n(SimTime::ZERO, 1.0));
    }

    #[test]
    fn zero_rate_bucket_never_refills() {
        let mut tb = TokenBucket::new(1.0, 0.0);
        assert!(tb.try_acquire(SimTime::ZERO));
        assert!(!tb.try_acquire(SimTime::from_days(365)));
    }

    #[test]
    fn keyed_limiter_isolates_keys() {
        let mut l: KeyedLimiter<&str> = KeyedLimiter::new(1.0, 0.0);
        assert!(l.try_acquire("a", SimTime::ZERO));
        assert!(!l.try_acquire("a", SimTime::ZERO));
        assert!(l.try_acquire("b", SimTime::ZERO), "other keys unaffected");
        assert_eq!(l.grants(), 2);
        assert_eq!(l.rejections(), 1);
        assert_eq!(l.tracked_keys(), 2);
    }

    #[test]
    fn fresh_key_bucket_starts_full_at_first_use() {
        // A key first seen late must not have accumulated "phantom" refill
        // beyond capacity nor start empty.
        let mut l: KeyedLimiter<&str> = KeyedLimiter::new(2.0, 1.0);
        let late = SimTime::from_days(30);
        assert!(l.try_acquire("k", late));
        assert!(l.try_acquire("k", late));
        assert!(!l.try_acquire("k", late));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    fn evict_idle_drops_refilled_buckets_only() {
        let mut l: KeyedLimiter<&str> = KeyedLimiter::new(2.0, 0.5);
        assert!(l.try_acquire("idle", SimTime::ZERO));
        assert!(l.try_acquire("busy", SimTime::from_secs(10)));
        assert_eq!(l.tracked_keys(), 2);
        // At t=11s "idle" refilled long ago; "busy" (1.5 tokens) has not.
        l.evict_idle(SimTime::from_secs(11));
        assert_eq!(l.tracked_keys(), 1);
        // At t=12s "busy" is full again and evictable too.
        l.evict_idle(SimTime::from_secs(12));
        assert_eq!(l.tracked_keys(), 0);
    }

    #[test]
    fn eviction_is_lossless_for_outcomes() {
        // The same acquisition sequence against an evicting and a
        // non-evicting limiter grants identically.
        let mut evicting: KeyedLimiter<u32> = KeyedLimiter::new(3.0, 0.5);
        let mut reference: KeyedLimiter<u32> = KeyedLimiter::new(3.0, 0.5);
        let mut now = SimTime::ZERO;
        for step in 0..200u32 {
            now += SimDuration::from_secs(u64::from(step % 7) as i64);
            let key = step % 4;
            assert_eq!(
                evicting.try_acquire(key, now),
                reference.try_acquire(key, now),
                "diverged at step {step}"
            );
            if step % 5 == 0 {
                evicting.evict_idle(now);
            }
        }
        assert_eq!(evicting.grants(), reference.grants());
        assert_eq!(evicting.rejections(), reference.rejections());
        assert!(evicting.tracked_keys() <= reference.tracked_keys());
    }

    #[test]
    fn sharded_limiter_matches_single_shard() {
        // The same acquisition stream through a 4-shard and a 1-shard
        // limiter must grant identically and report identical aggregates —
        // shard count is a layout choice, not a semantics choice.
        let mut sharded: KeyedLimiter<u32> = KeyedLimiter::with_shards(2.0, 0.25, 4);
        let mut flat: KeyedLimiter<u32> = KeyedLimiter::new(2.0, 0.25);
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(flat.shard_count(), 1);
        let mut now = SimTime::ZERO;
        for step in 0..500u32 {
            now += SimDuration::from_secs(i64::from(step % 5));
            let key = step % 17;
            assert_eq!(
                sharded.try_acquire(key, now),
                flat.try_acquire(key, now),
                "diverged at step {step}"
            );
            if step % 11 == 0 {
                sharded.evict_idle(now);
                flat.evict_idle(now);
            }
        }
        assert_eq!(sharded.grants(), flat.grants());
        assert_eq!(sharded.rejections(), flat.rejections());
        assert_eq!(sharded.tracked_keys(), flat.tracked_keys());
    }

    #[test]
    fn shard_partition_is_exhaustive_and_exclusive() {
        // Every key routes to exactly one shard, and driving shards
        // directly (as parallel workers do) reproduces routed behaviour.
        let mut l: KeyedLimiter<u64> = KeyedLimiter::with_shards(1.0, 0.0, 4);
        let keys: Vec<u64> = (0..64).collect();
        let idx: Vec<usize> = keys.iter().map(|k| l.shard_index(k)).collect();
        for (k, &i) in keys.iter().zip(&idx) {
            assert!(i < l.shard_count());
            l.shards_mut()[i].try_acquire(*k, SimTime::ZERO);
        }
        // Each key took its shard's single token; the routed path now
        // rejects every one of them.
        for k in &keys {
            assert!(!l.try_acquire(*k, SimTime::ZERO));
        }
        assert_eq!(l.grants(), 64);
        assert_eq!(l.rejections(), 64);
    }

    #[test]
    fn multi_year_horizon_does_not_truncate_token_accounting() {
        // Long-horizon (multi-year sim-time) runs exercise refill arithmetic
        // with elapsed times around 1e8 seconds; the bucket must neither
        // overflow nor phantom-refill beyond capacity, and a key first seen
        // years in still starts at exactly its burst budget.
        let decade = SimTime::from_days(3650);
        let mut tb = TokenBucket::new(4.0, 0.5);
        assert!(
            (tb.available(decade) - 4.0).abs() < 1e-9,
            "capped at capacity"
        );
        assert!(tb.try_acquire(decade));
        assert!((tb.available(decade) - 3.0).abs() < 1e-9);

        let mut l: KeyedLimiter<u32> = KeyedLimiter::new(2.0, 1.0 / 86_400.0);
        assert!(l.try_acquire(7, decade));
        assert!(l.try_acquire(7, decade));
        assert!(!l.try_acquire(7, decade), "no phantom refill from epoch");
        // One more token exactly one refill period later.
        assert!(l.try_acquire(7, decade + SimDuration::from_days(1)));
        assert!(!l.try_acquire(7, decade + SimDuration::from_days(1)));
    }

    proptest! {
        /// Within any single instant, grants never exceed burst capacity.
        #[test]
        fn prop_burst_bound(capacity in 1.0f64..20.0, attempts in 1usize..100) {
            let mut tb = TokenBucket::new(capacity, 0.0);
            let granted = (0..attempts).filter(|_| tb.try_acquire(SimTime::ZERO)).count();
            prop_assert!(granted as f64 <= capacity + 1e-9);
        }

        /// Idle-bucket eviction never changes any grant/deny outcome, no
        /// matter where eviction ticks land in the request stream.
        #[test]
        fn prop_eviction_preserves_outcomes(
            capacity in 1.0f64..5.0,
            rate in 0.0f64..2.0,
            ops in proptest::collection::vec((0u8..6, 0u64..5_000, any::<bool>()), 1..200),
        ) {
            let mut evicting: KeyedLimiter<u8> = KeyedLimiter::new(capacity, rate);
            let mut reference: KeyedLimiter<u8> = KeyedLimiter::new(capacity, rate);
            let mut now = SimTime::ZERO;
            for (key, dt, evict) in ops {
                now += SimDuration::from_secs(dt as i64);
                if evict {
                    evicting.evict_idle(now);
                }
                prop_assert_eq!(
                    evicting.try_acquire(key, now),
                    reference.try_acquire(key, now)
                );
            }
            prop_assert_eq!(evicting.grants(), reference.grants());
            prop_assert_eq!(evicting.rejections(), reference.rejections());
        }

        /// Shard count never changes any grant/deny outcome or aggregate,
        /// for any op stream and any shard count.
        #[test]
        fn prop_shard_count_preserves_outcomes(
            capacity in 1.0f64..5.0,
            rate in 0.0f64..2.0,
            shards in 1usize..9,
            ops in proptest::collection::vec((0u8..12, 0u64..5_000, any::<bool>()), 1..200),
        ) {
            let mut sharded: KeyedLimiter<u8> = KeyedLimiter::with_shards(capacity, rate, shards);
            let mut flat: KeyedLimiter<u8> = KeyedLimiter::new(capacity, rate);
            let mut now = SimTime::ZERO;
            for (key, dt, evict) in ops {
                now += SimDuration::from_secs(dt as i64);
                if evict {
                    sharded.evict_idle(now);
                    flat.evict_idle(now);
                }
                prop_assert_eq!(
                    sharded.try_acquire(key, now),
                    flat.try_acquire(key, now)
                );
            }
            prop_assert_eq!(sharded.grants(), flat.grants());
            prop_assert_eq!(sharded.rejections(), flat.rejections());
            prop_assert_eq!(sharded.tracked_keys(), flat.tracked_keys());
        }

        /// Over a long horizon, grants never exceed burst + rate × time.
        #[test]
        fn prop_long_run_rate_bound(
            rate in 0.1f64..5.0,
            steps in proptest::collection::vec(1u64..100, 1..100),
        ) {
            let mut tb = TokenBucket::new(3.0, rate);
            let mut now = SimTime::ZERO;
            let mut granted = 0u64;
            for dt in steps {
                now += SimDuration::from_secs(dt as i64);
                while tb.try_acquire(now) {
                    granted += 1;
                }
            }
            let bound = 3.0 + rate * now.as_secs() as f64;
            prop_assert!(granted as f64 <= bound + 1e-6, "granted {granted} > bound {bound}");
        }
    }
}
