//! # fg-mitigation
//!
//! The mitigation layer of the FeatureGuard framework — every countermeasure
//! the paper's §V catalogue recommends, as composable components:
//!
//! * [`rate_limit`] — **ad-hoc rate limiting**: token buckets and keyed
//!   limiters for per-path, per-user, and per-booking caps on SMS-based
//!   services and holds.
//! * [`gating`] — **feature access restrictions**: trust tiers (anonymous /
//!   verified / loyalty) gating high-risk functionality.
//! * [`captcha`] — **increased anti-bot layers**: CAPTCHA challenges with an
//!   explicit solver-service cost model, so "add cost and complexity to
//!   automated attacks" is measurable.
//! * [`honeypot`] — **undermining the economic incentive**: a decoy
//!   environment where attackers hold fake inventory while real stock stays
//!   sellable, and their "need to rotate fingerprints … diminishes".
//! * [`blocklist`] — fingerprint/IP block rules with efficacy tracking
//!   (time-to-evasion — the §IV-A 5.3 h statistic).
//! * [`policy`] — the decision engine mapping detection verdicts and
//!   limiter state to `Allow / Challenge / RateLimit / Honeypot / Block`.
//! * [`economics`] — the two-sided ledger proving (or disproving) that a
//!   mitigation made the attack economically unviable.
//! * [`profile`] — declarative deployment profiles (config + scenario facts
//!   + waivers) consumed by the `fg-analyze` semantic linter.
//!
//! # Example
//!
//! ```
//! use fg_mitigation::rate_limit::KeyedLimiter;
//! use fg_core::time::{SimDuration, SimTime};
//!
//! // §IV-C's missing control: at most 2 boarding-pass SMS per booking/day.
//! let mut limiter: KeyedLimiter<&str> =
//!     KeyedLimiter::new(2.0, 2.0 / SimDuration::from_days(1).as_secs_f64());
//! assert!(limiter.try_acquire("PNR123", SimTime::ZERO));
//! assert!(limiter.try_acquire("PNR123", SimTime::ZERO));
//! assert!(!limiter.try_acquire("PNR123", SimTime::ZERO), "third send today is refused");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocklist;
pub mod captcha;
pub mod economics;
pub mod gating;
pub mod honeypot;
pub mod policy;
pub mod profile;
pub mod rate_limit;

pub use blocklist::{BlockRule, BlockRuleEngine};
pub use captcha::{CaptchaOutcome, CaptchaPolicy};
pub use economics::{AttackerLedger, DefenderLedger};
pub use gating::{FeatureGate, TrustTier};
pub use honeypot::Honeypot;
pub use policy::{Decision, PolicyConfig, PolicyEngine};
pub use profile::{ChannelTraffic, DefenceProfile, ScenarioContext, Waiver};
pub use rate_limit::{KeyedLimiter, TokenBucket};
