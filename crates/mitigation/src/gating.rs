//! Trust-tier feature gating.
//!
//! §V: "Limiting high-risk functionalities (e.g. SMS reception, items holding
//! for long periods of time) to trusted users, such as verified loyalty
//! program members."

use fg_core::hash::FxHashMap;
use fg_detection::log::Endpoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A client's trust standing with the platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrustTier {
    /// No account, or a fresh unverified one.
    Anonymous,
    /// E-mail / phone verified account.
    Verified,
    /// Loyalty-program member with purchase history.
    Loyalty,
}

impl fmt::Display for TrustTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrustTier::Anonymous => "anonymous",
            TrustTier::Verified => "verified",
            TrustTier::Loyalty => "loyalty",
        };
        f.write_str(s)
    }
}

/// Maps endpoints to the minimum tier allowed to use them.
///
/// # Example
///
/// ```
/// use fg_mitigation::gating::{FeatureGate, TrustTier};
/// use fg_detection::log::Endpoint;
///
/// let mut gate = FeatureGate::permissive();
/// gate.require(Endpoint::BoardingPass, TrustTier::Verified);
/// assert!(!gate.allows(Endpoint::BoardingPass, TrustTier::Anonymous));
/// assert!(gate.allows(Endpoint::BoardingPass, TrustTier::Loyalty));
/// assert!(gate.allows(Endpoint::Search, TrustTier::Anonymous));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureGate {
    requirements: FxHashMap<Endpoint, TrustTier>,
    denials: u64,
}

impl FeatureGate {
    /// A gate with no restrictions — the pre-incident configuration.
    pub fn permissive() -> Self {
        FeatureGate::default()
    }

    /// The §V-recommended posture: SMS-triggering features and holds need a
    /// verified account.
    pub fn recommended() -> Self {
        let mut g = FeatureGate::permissive();
        g.require(Endpoint::SendOtp, TrustTier::Verified);
        g.require(Endpoint::BoardingPass, TrustTier::Verified);
        g.require(Endpoint::Hold, TrustTier::Verified);
        g
    }

    /// Sets the minimum tier for `endpoint`.
    pub fn require(&mut self, endpoint: Endpoint, min_tier: TrustTier) {
        self.requirements.insert(endpoint, min_tier);
    }

    /// Removes any restriction on `endpoint`.
    pub fn clear(&mut self, endpoint: Endpoint) {
        self.requirements.remove(&endpoint);
    }

    /// `true` when `tier` may use `endpoint`.
    pub fn allows(&self, endpoint: Endpoint, tier: TrustTier) -> bool {
        self.requirements
            .get(&endpoint)
            .is_none_or(|&min| tier >= min)
    }

    /// Checks and counts: like [`FeatureGate::allows`], but records denials
    /// for reporting.
    pub fn check(&mut self, endpoint: Endpoint, tier: TrustTier) -> bool {
        let ok = self.allows(endpoint, tier);
        if !ok {
            self.denials += 1;
        }
        ok
    }

    /// Total denials recorded through [`FeatureGate::check`].
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// The minimum tier for `endpoint`, if restricted.
    pub fn requirement(&self, endpoint: Endpoint) -> Option<TrustTier> {
        self.requirements.get(&endpoint).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered() {
        assert!(TrustTier::Anonymous < TrustTier::Verified);
        assert!(TrustTier::Verified < TrustTier::Loyalty);
    }

    #[test]
    fn permissive_allows_everything() {
        let g = FeatureGate::permissive();
        for e in Endpoint::ALL {
            assert!(g.allows(e, TrustTier::Anonymous));
        }
    }

    #[test]
    fn recommended_posture_gates_high_risk_features() {
        let g = FeatureGate::recommended();
        for e in [Endpoint::SendOtp, Endpoint::BoardingPass, Endpoint::Hold] {
            assert!(!g.allows(e, TrustTier::Anonymous), "{e}");
            assert!(g.allows(e, TrustTier::Verified), "{e}");
        }
        assert!(g.allows(Endpoint::Search, TrustTier::Anonymous));
        assert_eq!(g.requirement(Endpoint::Hold), Some(TrustTier::Verified));
        assert_eq!(g.requirement(Endpoint::Search), None);
    }

    #[test]
    fn check_counts_denials() {
        let mut g = FeatureGate::recommended();
        assert!(!g.check(Endpoint::Hold, TrustTier::Anonymous));
        assert!(!g.check(Endpoint::SendOtp, TrustTier::Anonymous));
        assert!(g.check(Endpoint::Hold, TrustTier::Loyalty));
        assert_eq!(g.denials(), 2);
    }

    #[test]
    fn clear_removes_restriction() {
        let mut g = FeatureGate::recommended();
        g.clear(Endpoint::Hold);
        assert!(g.allows(Endpoint::Hold, TrustTier::Anonymous));
    }

    #[test]
    fn loyalty_requirement_blocks_verified() {
        let mut g = FeatureGate::permissive();
        g.require(Endpoint::Hold, TrustTier::Loyalty);
        assert!(!g.allows(Endpoint::Hold, TrustTier::Verified));
        assert!(g.allows(Endpoint::Hold, TrustTier::Loyalty));
    }
}
