//! Honeypot decoy environments.
//!
//! §V proposes "decoy environments that resemble the real website and to
//! which attackers are redirected … attackers waste resources believing to
//! hold items in a false environment while legitimate users remain
//! unaffected. By keeping attackers engaged with a controlled replica, their
//! need to rotate fingerprints or adjust tactics diminishes" (building on the
//! scraping honeypots of ref \[53\]).
//!
//! [`Honeypot`] accepts any hold/request and always "succeeds", while
//! recording the attacker effort absorbed. Nothing it does touches real
//! inventory.

use fg_core::hash::FxHashMap;
use fg_core::ids::{BookingRef, ClientId};
use fg_core::money::Money;
use fg_core::time::SimTime;
use serde::{Deserialize, Serialize};

/// First index of the decoy booking-reference range.
///
/// Real references are allocated sequentially from index 0; decoys count up
/// from the middle of the `u64` index space, so the two ranges cannot collide
/// in any report (`fg-analyze` lint `decoy-overlap` checks this invariant
/// against each scenario's expected real-booking volume).
pub const DECOY_REF_BASE: u64 = u64::MAX / 2;

/// Statistics about what the decoy absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoneypotStats {
    /// Fake holds granted.
    pub holds_absorbed: u64,
    /// Fake seats "reserved".
    pub seats_absorbed: u64,
    /// Fake SMS requests swallowed (never reaching a carrier).
    pub sms_absorbed: u64,
    /// Distinct diverted clients.
    pub clients_diverted: u64,
}

/// A decoy reservation environment.
///
/// # Example
///
/// ```
/// use fg_mitigation::Honeypot;
/// use fg_core::ids::ClientId;
/// use fg_core::time::SimTime;
///
/// let mut pot = Honeypot::new();
/// // The attacker "holds" 6 seats — on nothing.
/// let fake_ref = pot.absorb_hold(ClientId(9), 6, SimTime::ZERO);
/// assert!(pot.is_diverted(ClientId(9)));
/// assert_eq!(pot.stats().seats_absorbed, 6);
/// # let _ = fake_ref;
/// ```
#[derive(Clone, Debug, Default)]
pub struct Honeypot {
    diverted: FxHashMap<ClientId, SimTime>,
    stats: HoneypotStats,
    fake_ref_counter: u64,
    attacker_cost_absorbed: Money,
}

impl Honeypot {
    /// An empty decoy.
    pub fn new() -> Self {
        Honeypot::default()
    }

    /// Marks a client as diverted into the decoy from `now` on.
    pub fn divert(&mut self, client: ClientId, now: SimTime) {
        if self.diverted.insert(client, now).is_none() {
            self.stats.clients_diverted += 1;
        }
    }

    /// `true` when the client is currently served by the decoy.
    pub fn is_diverted(&self, client: ClientId) -> bool {
        self.diverted.contains_key(&client)
    }

    /// Accepts a fake hold of `seats` seats and returns a plausible booking
    /// reference. Diverts the client implicitly if not already diverted.
    pub fn absorb_hold(&mut self, client: ClientId, seats: u32, now: SimTime) -> BookingRef {
        self.divert(client, now);
        self.stats.holds_absorbed += 1;
        self.stats.seats_absorbed += u64::from(seats);
        // Decoy references come from a distinct, deterministic index range so
        // they can never collide with real references in reports.
        self.fake_ref_counter += 1;
        BookingRef::from_index(DECOY_REF_BASE + self.fake_ref_counter)
    }

    /// Accepts a fake SMS request (nothing is sent, nothing is paid).
    pub fn absorb_sms(&mut self, client: ClientId, now: SimTime) {
        self.divert(client, now);
        self.stats.sms_absorbed += 1;
    }

    /// Records attacker spend wasted inside the decoy (proxy leases, solver
    /// fees spent to interact with fake inventory).
    pub fn absorb_attacker_cost(&mut self, cost: Money) {
        self.attacker_cost_absorbed += cost;
    }

    /// Attacker money the decoy has burned.
    pub fn attacker_cost_absorbed(&self) -> Money {
        self.attacker_cost_absorbed
    }

    /// Absorption statistics.
    pub fn stats(&self) -> HoneypotStats {
        self.stats
    }

    /// Releases a client from the decoy (e.g. a false positive appeal).
    pub fn release(&mut self, client: ClientId) -> bool {
        self.diverted.remove(&client).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diversion_is_sticky_and_counted_once() {
        let mut pot = Honeypot::new();
        pot.divert(ClientId(1), SimTime::ZERO);
        pot.divert(ClientId(1), SimTime::from_hours(1));
        pot.divert(ClientId(2), SimTime::ZERO);
        assert_eq!(pot.stats().clients_diverted, 2);
        assert!(pot.is_diverted(ClientId(1)));
        assert!(!pot.is_diverted(ClientId(3)));
    }

    #[test]
    fn absorbed_holds_accumulate() {
        let mut pot = Honeypot::new();
        let r1 = pot.absorb_hold(ClientId(7), 6, SimTime::ZERO);
        let r2 = pot.absorb_hold(ClientId(7), 6, SimTime::from_mins(30));
        assert_ne!(r1, r2, "each fake hold gets a fresh reference");
        assert_eq!(pot.stats().holds_absorbed, 2);
        assert_eq!(pot.stats().seats_absorbed, 12);
        assert_eq!(pot.stats().clients_diverted, 1);
    }

    #[test]
    fn sms_absorption_counts() {
        let mut pot = Honeypot::new();
        for _ in 0..100 {
            pot.absorb_sms(ClientId(5), SimTime::ZERO);
        }
        assert_eq!(pot.stats().sms_absorbed, 100);
    }

    #[test]
    fn attacker_cost_ledger() {
        let mut pot = Honeypot::new();
        pot.absorb_attacker_cost(Money::from_cents(60));
        pot.absorb_attacker_cost(Money::from_cents(40));
        assert_eq!(pot.attacker_cost_absorbed(), Money::from_units(1));
    }

    #[test]
    fn release_frees_a_client() {
        let mut pot = Honeypot::new();
        pot.divert(ClientId(1), SimTime::ZERO);
        assert!(pot.release(ClientId(1)));
        assert!(!pot.is_diverted(ClientId(1)));
        assert!(!pot.release(ClientId(1)), "second release is a no-op");
    }
}
