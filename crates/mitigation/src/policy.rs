//! The mitigation decision engine.
//!
//! Maps one request's detection verdict plus limiter/gate state to a
//! [`Decision`]. Presets correspond to the defensive postures the
//! experiments compare: no protection, traditional anti-bot, and the paper's
//! §V recommended posture.

use crate::blocklist::BlockRuleEngine;
use crate::gating::{FeatureGate, TrustTier};
use crate::rate_limit::{KeyedLimiter, TokenBucket};
use fg_core::ids::BookingRef;
use fg_core::time::SimTime;
use fg_detection::engine::Verdict;
use fg_detection::log::Endpoint;
use fg_fingerprint::attributes::Fingerprint;
use fg_netsim::ip::IpAddress;
use fg_telemetry::metrics::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the defence does with a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Serve normally.
    Allow,
    /// Serve after a CAPTCHA challenge.
    Challenge,
    /// Refuse: a rate limit is exhausted.
    RateLimited,
    /// Refuse: trust tier too low for this feature.
    TierDenied,
    /// Silently divert to the decoy environment.
    Honeypot,
    /// Refuse outright.
    Block,
}

impl Decision {
    /// `true` when the request reaches the real application.
    pub fn reaches_application(self) -> bool {
        matches!(self, Decision::Allow | Decision::Challenge)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Decision::Allow => "allow",
            Decision::Challenge => "challenge",
            Decision::RateLimited => "rate-limited",
            Decision::TierDenied => "tier-denied",
            Decision::Honeypot => "honeypot",
            Decision::Block => "block",
        };
        f.write_str(s)
    }
}

/// Tunable policy parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Verdict score at which a CAPTCHA is demanded.
    pub challenge_threshold: f64,
    /// Verdict score at which the request is blocked (or honeypotted).
    pub block_threshold: f64,
    /// Divert to the honeypot instead of blocking (§V economics play).
    pub honeypot_instead_of_block: bool,
    /// Per-booking SMS limit as `(burst, per_day)`; `None` = unlimited (the
    /// §IV-C vulnerable configuration).
    pub booking_sms_limit: Option<(f64, f64)>,
    /// Whole-path SMS limit as `(burst, per_day)` — the coarse limit that
    /// *eventually* caught the Airline D attack.
    pub path_sms_limit: Option<(f64, f64)>,
    /// Per-client hold limit as `(burst, per_day)`.
    pub client_hold_limit: Option<(f64, f64)>,
    /// Trust-tier gate.
    pub gate: FeatureGate,
}

impl PolicyConfig {
    /// No protection at all — the §IV-C "December 2022" posture.
    pub fn unprotected() -> Self {
        PolicyConfig {
            challenge_threshold: f64::INFINITY,
            block_threshold: f64::INFINITY,
            honeypot_instead_of_block: false,
            booking_sms_limit: None,
            path_sms_limit: None,
            client_hold_limit: None,
            gate: FeatureGate::permissive(),
        }
    }

    /// Traditional anti-bot posture: fingerprint/behaviour thresholds and a
    /// coarse path limit, but no per-feature limits or gating.
    pub fn traditional_antibot() -> Self {
        PolicyConfig {
            challenge_threshold: 0.5,
            block_threshold: 0.9,
            honeypot_instead_of_block: false,
            booking_sms_limit: None,
            path_sms_limit: Some((20_000.0, 20_000.0)),
            client_hold_limit: None,
            gate: FeatureGate::permissive(),
        }
    }

    /// The §V recommended posture: everything on, honeypot diversion for
    /// high-confidence bots, tight per-feature limits, trust gating.
    pub fn recommended() -> Self {
        PolicyConfig {
            challenge_threshold: 0.4,
            block_threshold: 0.85,
            honeypot_instead_of_block: true,
            booking_sms_limit: Some((3.0, 3.0)),
            path_sms_limit: Some((10_000.0, 10_000.0)),
            client_hold_limit: Some((5.0, 10.0)),
            gate: FeatureGate::recommended(),
        }
    }

    /// Checks the hard well-formedness invariants every deployable config
    /// must satisfy, returning every violation found.
    ///
    /// These are the *constructive* rules — a config failing any of them is
    /// broken, not merely questionable (`fg-analyze` layers softer semantic
    /// lints, e.g. dead stages or limits that can never fire, on top of this):
    ///
    /// * thresholds are not NaN and not negative (`+∞` is legal: it encodes
    ///   "stage disabled", as in [`PolicyConfig::unprotected`]);
    /// * `challenge_threshold <= block_threshold` — a challenge bar *above*
    ///   the block bar would invert the escalation ladder;
    /// * every `(burst, per_day)` limit has a finite positive burst and a
    ///   finite non-negative daily allowance (what
    ///   [`TokenBucket::new`] asserts at construction).
    ///
    /// [`PolicyEngine::new`] runs this in debug builds and panics on
    /// violations, so a malformed config fails fast in tests instead of
    /// silently mis-deciding in a week-long simulation.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        for (name, t) in [
            ("challenge_threshold", self.challenge_threshold),
            ("block_threshold", self.block_threshold),
        ] {
            if t.is_nan() {
                errors.push(format!("{name} is NaN"));
            } else if t < 0.0 {
                errors.push(format!("{name} is negative ({t})"));
            }
        }
        if self.challenge_threshold > self.block_threshold {
            errors.push(format!(
                "challenge_threshold ({}) exceeds block_threshold ({}): the escalation \
                 ladder is inverted and Block fires before Challenge",
                self.challenge_threshold, self.block_threshold
            ));
        }
        for (name, limit) in [
            ("booking_sms_limit", self.booking_sms_limit),
            ("path_sms_limit", self.path_sms_limit),
            ("client_hold_limit", self.client_hold_limit),
        ] {
            if let Some((burst, per_day)) = limit {
                if !burst.is_finite() || burst <= 0.0 {
                    errors.push(format!("{name} burst must be finite and > 0, got {burst}"));
                }
                if !per_day.is_finite() || per_day < 0.0 {
                    errors.push(format!(
                        "{name} per_day must be finite and >= 0, got {per_day}"
                    ));
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

/// Per-request context handed to the policy.
#[derive(Clone, Debug)]
pub struct RequestContext<'a> {
    /// Request time.
    pub now: SimTime,
    /// Source address.
    pub ip: IpAddress,
    /// Presented fingerprint.
    pub fingerprint: &'a Fingerprint,
    /// Endpoint requested.
    pub endpoint: Endpoint,
    /// Booking reference, for booking-scoped features.
    pub booking: Option<BookingRef>,
    /// The requesting client's trust tier.
    pub tier: TrustTier,
    /// A stable key for per-client limits (e.g. account id or ip+fp hash).
    pub client_key: u64,
    /// Detection verdict for this request.
    pub verdict: &'a Verdict,
}

/// The ordered stages of [`PolicyEngine::decide`], named for the reason
/// chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyStage {
    /// Explicit incident-response block rules.
    BlockRules,
    /// Trust-tier feature gate.
    TierGate,
    /// Verdict score vs the block threshold.
    ScoreBlock,
    /// Feature-scoped rate limits (SMS, holds).
    FeatureRateLimits,
    /// Verdict score vs the challenge threshold.
    ScoreChallenge,
}

impl PolicyStage {
    /// Every stage, in evaluation order.
    pub const ALL: [PolicyStage; 5] = [
        PolicyStage::BlockRules,
        PolicyStage::TierGate,
        PolicyStage::ScoreBlock,
        PolicyStage::FeatureRateLimits,
        PolicyStage::ScoreChallenge,
    ];
}

impl fmt::Display for PolicyStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyStage::BlockRules => "block-rules",
            PolicyStage::TierGate => "tier-gate",
            PolicyStage::ScoreBlock => "score-block",
            PolicyStage::FeatureRateLimits => "feature-rate-limits",
            PolicyStage::ScoreChallenge => "score-challenge",
        };
        f.write_str(s)
    }
}

/// One link in the machine-readable reason chain: a stage that was
/// consulted, whether it fired, and (when it fired) why.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReasonLink {
    /// The stage consulted.
    pub stage: PolicyStage,
    /// `true` when this stage determined the decision.
    pub triggered: bool,
    /// Machine-readable detail, e.g. `score=0.950 >= block_threshold=0.900`.
    /// Empty for stages that merely passed.
    pub detail: String,
}

impl ReasonLink {
    fn passed(stage: PolicyStage) -> Self {
        ReasonLink {
            stage,
            triggered: false,
            detail: String::new(),
        }
    }

    fn triggered(stage: PolicyStage, detail: String) -> Self {
        ReasonLink {
            stage,
            triggered: true,
            detail,
        }
    }
}

impl fmt::Display for ReasonLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}",
            self.stage,
            if self.triggered { "triggered" } else { "pass" }
        )?;
        if !self.detail.is_empty() {
            write!(f, "({})", self.detail)?;
        }
        Ok(())
    }
}

/// A decision plus the ordered reason chain that produced it — every stage
/// consulted, ending with the one that fired (all stages pass for `Allow`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// The decision taken.
    pub decision: Decision,
    /// Stages consulted, in order.
    pub chain: Vec<ReasonLink>,
}

impl DecisionTrace {
    /// The link that determined the decision, if any stage fired.
    pub fn triggered(&self) -> Option<&ReasonLink> {
        self.chain.iter().find(|l| l.triggered)
    }

    /// The chain rendered as stable string tokens (for audit records).
    pub fn reason_strings(&self) -> Vec<String> {
        self.chain.iter().map(ToString::to_string).collect()
    }
}

/// Counters of decisions taken, for experiment reports.
///
/// Since the telemetry refactor this is a *snapshot* of the live
/// [`DecisionCounters`] a [`PolicyEngine`] maintains; the field and
/// accessor surface is unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCounts {
    /// Allowed.
    pub allow: u64,
    /// Challenged.
    pub challenge: u64,
    /// Rate limited.
    pub rate_limited: u64,
    /// Denied by trust tier.
    pub tier_denied: u64,
    /// Diverted to honeypot.
    pub honeypot: u64,
    /// Blocked.
    pub block: u64,
}

impl DecisionCounts {
    /// Total decisions taken.
    pub fn total(&self) -> u64 {
        self.allow
            + self.challenge
            + self.rate_limited
            + self.tier_denied
            + self.honeypot
            + self.block
    }
}

/// Live decision counters backed by telemetry [`Counter`]s, so the policy
/// engine's per-decision tallies and the exported `fg_decisions_total`
/// series are the same cells.
#[derive(Clone, Debug, Default)]
pub struct DecisionCounters {
    allow: Counter,
    challenge: Counter,
    rate_limited: Counter,
    tier_denied: Counter,
    honeypot: Counter,
    block: Counter,
}

impl DecisionCounters {
    fn counter(&self, d: Decision) -> &Counter {
        match d {
            Decision::Allow => &self.allow,
            Decision::Challenge => &self.challenge,
            Decision::RateLimited => &self.rate_limited,
            Decision::TierDenied => &self.tier_denied,
            Decision::Honeypot => &self.honeypot,
            Decision::Block => &self.block,
        }
    }

    fn bump(&self, d: Decision) {
        self.counter(d).inc();
    }

    /// Point-in-time copy of all six tallies.
    pub fn snapshot(&self) -> DecisionCounts {
        DecisionCounts {
            allow: self.allow.get(),
            challenge: self.challenge.get(),
            rate_limited: self.rate_limited.get(),
            tier_denied: self.tier_denied.get(),
            honeypot: self.honeypot.get(),
            block: self.block.get(),
        }
    }

    /// Exposes the counters in `registry` as
    /// `fg_decisions_total{decision="..."}`.
    pub fn register_in(&self, registry: &MetricsRegistry) {
        registry.set_help("fg_decisions_total", "Policy decisions issued, by kind");
        for d in [
            Decision::Allow,
            Decision::Challenge,
            Decision::RateLimited,
            Decision::TierDenied,
            Decision::Honeypot,
            Decision::Block,
        ] {
            let label = d.to_string();
            registry.adopt_counter(
                "fg_decisions_total",
                &[("decision", label.as_str())],
                self.counter(d),
            );
        }
    }
}

/// The stateful policy engine.
///
/// # Example
///
/// ```
/// use fg_mitigation::policy::{PolicyConfig, PolicyEngine, RequestContext, Decision};
/// use fg_mitigation::gating::TrustTier;
/// use fg_detection::{engine::Verdict, log::Endpoint};
/// use fg_fingerprint::PopulationModel;
/// use fg_netsim::ip::IpAddress;
/// use fg_core::time::SimTime;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut engine = PolicyEngine::new(PolicyConfig::recommended());
/// let fp = PopulationModel::default_web().sample_human(&mut StdRng::seed_from_u64(0));
/// let verdict = Verdict::clean();
/// let decision = engine.decide(&RequestContext {
///     now: SimTime::ZERO,
///     ip: IpAddress::from_octets(10, 0, 0, 1),
///     fingerprint: &fp,
///     endpoint: Endpoint::Search,
///     booking: None,
///     tier: TrustTier::Anonymous,
///     client_key: 1,
///     verdict: &verdict,
/// });
/// assert_eq!(decision, Decision::Allow);
/// ```
#[derive(Debug)]
pub struct PolicyEngine {
    config: PolicyConfig,
    rules: BlockRuleEngine,
    booking_sms_limiter: Option<KeyedLimiter<BookingRef>>,
    path_sms_limiter: Option<TokenBucket>,
    client_hold_limiter: Option<KeyedLimiter<u64>>,
    counters: DecisionCounters,
}

const SECS_PER_DAY: f64 = 86_400.0;

impl PolicyEngine {
    /// Creates an engine from a config.
    ///
    /// # Panics
    ///
    /// In debug builds, panics when `config` fails
    /// [`PolicyConfig::validate`] — a malformed config should die at
    /// construction, not steer a long simulation.
    pub fn new(config: PolicyConfig) -> Self {
        Self::with_shards(config, 1)
    }

    /// Creates an engine whose keyed limiters are hash-partitioned into
    /// `shards` partitions (rounded up to a power of two). Shard count
    /// changes memory layout and housekeeping striping only — decisions and
    /// counters are identical at any count. (The per-path limiter is a
    /// single bucket, not keyed, so it has nothing to shard.)
    ///
    /// # Panics
    ///
    /// In debug builds, panics when `config` fails
    /// [`PolicyConfig::validate`] — a malformed config should die at
    /// construction, not steer a long simulation.
    pub fn with_shards(config: PolicyConfig, shards: usize) -> Self {
        #[cfg(debug_assertions)]
        if let Err(errors) = config.validate() {
            // fg-analyze: allow(panic-path): debug-only guard — the serve reload path validates via validate_serve_policy before any engine is built
            panic!("invalid PolicyConfig: {}", errors.join("; "));
        }
        fn mk_keyed<K: Eq + std::hash::Hash>(
            spec: Option<(f64, f64)>,
            shards: usize,
        ) -> Option<KeyedLimiter<K>> {
            spec.map(|(burst, per_day)| {
                KeyedLimiter::with_shards(burst, per_day / SECS_PER_DAY, shards)
            })
        }
        PolicyEngine {
            booking_sms_limiter: mk_keyed(config.booking_sms_limit, shards),
            client_hold_limiter: mk_keyed(config.client_hold_limit, shards),
            path_sms_limiter: config
                .path_sms_limit
                .map(|(burst, per_day)| TokenBucket::new(burst, per_day / SECS_PER_DAY)),
            rules: BlockRuleEngine::new(),
            counters: DecisionCounters::default(),
            config,
        }
    }

    /// The active config.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// The block-rule engine, for the incident-response loop (§IV-A: deploy
    /// a rule against each observed attack fingerprint).
    pub fn rules_mut(&mut self) -> &mut BlockRuleEngine {
        &mut self.rules
    }

    /// Read access to the block rules.
    pub fn rules(&self) -> &BlockRuleEngine {
        &self.rules
    }

    /// Evicts idle (fully refilled) buckets from every keyed limiter — the
    /// housekeeping hook that keeps limiter state bounded by the live key
    /// population under identity-rotating workloads. Lossless: see
    /// [`KeyedLimiter::evict_idle`].
    pub fn evict_idle(&mut self, now: SimTime) {
        if let Some(l) = &mut self.booking_sms_limiter {
            l.evict_idle(now);
        }
        if let Some(l) = &mut self.client_hold_limiter {
            l.evict_idle(now);
        }
    }

    /// Keys currently materialized in the (booking-SMS, client-hold) keyed
    /// limiters, for `fg_tracked_keys` gauges and bounded-state assertions.
    pub fn limiter_tracked_keys(&self) -> (usize, usize) {
        (
            self.booking_sms_limiter
                .as_ref()
                .map_or(0, KeyedLimiter::tracked_keys),
            self.client_hold_limiter
                .as_ref()
                .map_or(0, KeyedLimiter::tracked_keys),
        )
    }

    /// Decision counters so far.
    pub fn counts(&self) -> DecisionCounts {
        self.counters.snapshot()
    }

    /// The live telemetry-backed counters, for registry adoption.
    pub fn decision_counters(&self) -> &DecisionCounters {
        &self.counters
    }

    /// Replaces this engine's decision counters with shared handles carried
    /// over from a previous engine. [`Counter`]s clone as handles to the
    /// same cell, so a rebuilt engine (e.g. after a config hot-swap in the
    /// decision service) keeps incrementing the `fg_decisions_total` cells
    /// already adopted into a registry instead of resetting the series.
    pub fn adopt_counters(&mut self, counters: DecisionCounters) {
        self.counters = counters;
    }

    /// Decides one request.
    pub fn decide(&mut self, ctx: &RequestContext<'_>) -> Decision {
        self.decide_traced(ctx).decision
    }

    /// Decides one request and returns the full reason chain alongside the
    /// decision — the audit trail's view of this engine.
    pub fn decide_traced(&mut self, ctx: &RequestContext<'_>) -> DecisionTrace {
        let trace = self.trace_inner(ctx);
        self.counters.bump(trace.decision);
        trace
    }

    fn block_or_divert(&self) -> Decision {
        if self.config.honeypot_instead_of_block {
            Decision::Honeypot
        } else {
            Decision::Block
        }
    }

    fn trace_inner(&mut self, ctx: &RequestContext<'_>) -> DecisionTrace {
        let mut chain = Vec::with_capacity(PolicyStage::ALL.len());
        let done = |decision: Decision, chain: Vec<ReasonLink>| DecisionTrace { decision, chain };

        // 1. Explicit block rules (incident response) come first.
        if self.rules.check(ctx.fingerprint, ctx.ip, ctx.now).is_some() {
            chain.push(ReasonLink::triggered(
                PolicyStage::BlockRules,
                "incident-response rule matched".to_owned(),
            ));
            return done(self.block_or_divert(), chain);
        }
        chain.push(ReasonLink::passed(PolicyStage::BlockRules));

        // 2. Trust-tier gate.
        if !self.config.gate.allows(ctx.endpoint, ctx.tier) {
            chain.push(ReasonLink::triggered(
                PolicyStage::TierGate,
                format!("tier={:?} denied endpoint={}", ctx.tier, ctx.endpoint),
            ));
            return done(Decision::TierDenied, chain);
        }
        chain.push(ReasonLink::passed(PolicyStage::TierGate));

        // 3. Verdict-driven thresholds.
        if ctx.verdict.score >= self.config.block_threshold {
            chain.push(ReasonLink::triggered(
                PolicyStage::ScoreBlock,
                format!(
                    "score={:.3} >= block_threshold={:.3}",
                    ctx.verdict.score, self.config.block_threshold
                ),
            ));
            return done(self.block_or_divert(), chain);
        }
        chain.push(ReasonLink::passed(PolicyStage::ScoreBlock));

        // 4. Feature-scoped rate limits.
        let sms_endpoint = matches!(ctx.endpoint, Endpoint::SendOtp | Endpoint::BoardingPass);
        if sms_endpoint {
            if let (Some(limiter), Some(booking)) = (&mut self.booking_sms_limiter, ctx.booking) {
                if !limiter.try_acquire(booking, ctx.now) {
                    chain.push(ReasonLink::triggered(
                        PolicyStage::FeatureRateLimits,
                        "booking-sms limiter exhausted".to_owned(),
                    ));
                    return done(Decision::RateLimited, chain);
                }
            }
            if let Some(bucket) = &mut self.path_sms_limiter {
                if !bucket.try_acquire(ctx.now) {
                    chain.push(ReasonLink::triggered(
                        PolicyStage::FeatureRateLimits,
                        "path-sms limiter exhausted".to_owned(),
                    ));
                    return done(Decision::RateLimited, chain);
                }
            }
        }
        if ctx.endpoint == Endpoint::Hold {
            if let Some(limiter) = &mut self.client_hold_limiter {
                if !limiter.try_acquire(ctx.client_key, ctx.now) {
                    chain.push(ReasonLink::triggered(
                        PolicyStage::FeatureRateLimits,
                        "client-hold limiter exhausted".to_owned(),
                    ));
                    return done(Decision::RateLimited, chain);
                }
            }
        }
        chain.push(ReasonLink::passed(PolicyStage::FeatureRateLimits));

        // 5. Challenge band.
        if ctx.verdict.score >= self.config.challenge_threshold {
            chain.push(ReasonLink::triggered(
                PolicyStage::ScoreChallenge,
                format!(
                    "score={:.3} >= challenge_threshold={:.3}",
                    ctx.verdict.score, self.config.challenge_threshold
                ),
            ));
            return done(Decision::Challenge, chain);
        }
        chain.push(ReasonLink::passed(PolicyStage::ScoreChallenge));

        done(Decision::Allow, chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_detection::engine::Signal;
    use fg_fingerprint::PopulationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp() -> Fingerprint {
        PopulationModel::default_web().sample_human(&mut StdRng::seed_from_u64(1))
    }

    fn ctx<'a>(
        fp: &'a Fingerprint,
        verdict: &'a Verdict,
        endpoint: Endpoint,
        booking: Option<BookingRef>,
        now: SimTime,
    ) -> RequestContext<'a> {
        RequestContext {
            now,
            ip: IpAddress::from_octets(10, 0, 0, 1),
            fingerprint: fp,
            endpoint,
            booking,
            tier: TrustTier::Verified,
            client_key: 42,
            verdict,
        }
    }

    fn verdict(score: f64) -> Verdict {
        Verdict {
            score,
            signals: vec![Signal::TrapHit],
        }
    }

    #[test]
    fn unprotected_allows_everything() {
        let mut e = PolicyEngine::new(PolicyConfig::unprotected());
        let f = fp();
        let v = verdict(1.0);
        for _ in 0..100 {
            let d = e.decide(&ctx(
                &f,
                &v,
                Endpoint::BoardingPass,
                Some(BookingRef::from_index(1)),
                SimTime::ZERO,
            ));
            assert_eq!(d, Decision::Allow);
        }
        assert_eq!(e.counts().allow, 100);
    }

    #[test]
    fn verdict_thresholds_drive_challenge_and_block() {
        let mut e = PolicyEngine::new(PolicyConfig::traditional_antibot());
        let f = fp();
        let clean = Verdict::clean();
        assert_eq!(
            e.decide(&ctx(&f, &clean, Endpoint::Search, None, SimTime::ZERO)),
            Decision::Allow
        );
        let mid = verdict(0.6);
        assert_eq!(
            e.decide(&ctx(&f, &mid, Endpoint::Search, None, SimTime::ZERO)),
            Decision::Challenge
        );
        let high = verdict(0.95);
        assert_eq!(
            e.decide(&ctx(&f, &high, Endpoint::Search, None, SimTime::ZERO)),
            Decision::Block
        );
    }

    #[test]
    fn recommended_honeypots_instead_of_blocking() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let high = verdict(0.95);
        assert_eq!(
            e.decide(&ctx(&f, &high, Endpoint::Search, None, SimTime::ZERO)),
            Decision::Honeypot
        );
    }

    #[test]
    fn per_booking_sms_limit_enforced() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let clean = Verdict::clean();
        let booking = BookingRef::from_index(9);
        let mut decisions = Vec::new();
        for i in 0..5 {
            decisions.push(e.decide(&ctx(
                &f,
                &clean,
                Endpoint::BoardingPass,
                Some(booking),
                SimTime::from_mins(i),
            )));
        }
        assert_eq!(&decisions[..3], &[Decision::Allow; 3]);
        assert_eq!(&decisions[3..], &[Decision::RateLimited; 2]);
        // A different booking is unaffected.
        let other = BookingRef::from_index(10);
        assert_eq!(
            e.decide(&ctx(
                &f,
                &clean,
                Endpoint::BoardingPass,
                Some(other),
                SimTime::from_mins(6)
            )),
            Decision::Allow
        );
    }

    #[test]
    fn tier_gate_blocks_anonymous_holds() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let clean = Verdict::clean();
        let mut c = ctx(&f, &clean, Endpoint::Hold, None, SimTime::ZERO);
        c.tier = TrustTier::Anonymous;
        assert_eq!(e.decide(&c), Decision::TierDenied);
        c.tier = TrustTier::Verified;
        assert_eq!(e.decide(&c), Decision::Allow);
    }

    #[test]
    fn client_hold_limit_throttles_spinning() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let clean = Verdict::clean();
        let mut limited = 0;
        for i in 0..20 {
            let d = e.decide(&ctx(
                &f,
                &clean,
                Endpoint::Hold,
                None,
                SimTime::from_mins(i),
            ));
            if d == Decision::RateLimited {
                limited += 1;
            }
        }
        assert!(limited >= 10, "spinning throttled after burst: {limited}");
    }

    #[test]
    fn block_rules_short_circuit() {
        let mut e = PolicyEngine::new(PolicyConfig::traditional_antibot());
        let f = fp();
        e.rules_mut().block_observed_fingerprint(&f, SimTime::ZERO);
        let clean = Verdict::clean();
        assert_eq!(
            e.decide(&ctx(
                &f,
                &clean,
                Endpoint::Search,
                None,
                SimTime::from_mins(1)
            )),
            Decision::Block
        );
        assert!(e.rules().stats()[0].hits > 0);
    }

    #[test]
    fn path_limit_catches_unkeyed_floods_eventually() {
        // Airline D: no per-booking limit, only a path-wide one.
        let mut cfg = PolicyConfig::unprotected();
        cfg.path_sms_limit = Some((100.0, 100.0));
        let mut e = PolicyEngine::new(cfg);
        let f = fp();
        let clean = Verdict::clean();
        let booking = BookingRef::from_index(1);
        let mut first_limited = None;
        for i in 0..200u64 {
            let d = e.decide(&ctx(
                &f,
                &clean,
                Endpoint::BoardingPass,
                Some(booking),
                SimTime::from_secs(i),
            ));
            if d == Decision::RateLimited && first_limited.is_none() {
                first_limited = Some(i);
            }
        }
        let hit = first_limited.expect("path limit fires");
        assert!(
            hit >= 100,
            "path limit only fires after ~100 sends, at {hit}"
        );
    }

    #[test]
    fn traced_decisions_explain_the_triggering_stage() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let high = verdict(0.95);
        let trace = e.decide_traced(&ctx(&f, &high, Endpoint::Search, None, SimTime::ZERO));
        assert_eq!(trace.decision, Decision::Honeypot);
        let fired = trace.triggered().expect("a stage fired");
        assert_eq!(fired.stage, PolicyStage::ScoreBlock);
        assert!(fired.detail.contains("score=0.950"), "{}", fired.detail);
        // Chain records the stages consulted before the trigger.
        assert_eq!(
            trace.chain.iter().map(|l| l.stage).collect::<Vec<_>>(),
            vec![
                PolicyStage::BlockRules,
                PolicyStage::TierGate,
                PolicyStage::ScoreBlock
            ]
        );
    }

    #[test]
    fn allow_trace_consults_every_stage() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let clean = Verdict::clean();
        let trace = e.decide_traced(&ctx(&f, &clean, Endpoint::Search, None, SimTime::ZERO));
        assert_eq!(trace.decision, Decision::Allow);
        assert!(trace.triggered().is_none());
        assert_eq!(trace.chain.len(), PolicyStage::ALL.len());
        assert_eq!(
            trace.reason_strings(),
            vec![
                "block-rules:pass",
                "tier-gate:pass",
                "score-block:pass",
                "feature-rate-limits:pass",
                "score-challenge:pass"
            ]
        );
    }

    #[test]
    fn reason_chain_round_trips_through_json() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let high = verdict(0.95);
        let trace = e.decide_traced(&ctx(&f, &high, Endpoint::Search, None, SimTime::ZERO));
        let json = serde_json::to_string(&trace).unwrap();
        let back: DecisionTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn counts_are_telemetry_backed() {
        let registry = fg_telemetry::MetricsRegistry::new();
        let mut e = PolicyEngine::new(PolicyConfig::traditional_antibot());
        e.decision_counters().register_in(&registry);
        let f = fp();
        let clean = Verdict::clean();
        let high = verdict(0.95);
        e.decide(&ctx(&f, &clean, Endpoint::Search, None, SimTime::ZERO));
        e.decide(&ctx(&f, &high, Endpoint::Search, None, SimTime::ZERO));
        // The snapshot accessor and the exported counters agree because
        // they are the same cells.
        let counts = e.counts();
        assert_eq!(counts.allow, 1);
        assert_eq!(counts.block, 1);
        assert_eq!(counts.total(), 2);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("fg_decisions_total", &[("decision", "allow")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("fg_decisions_total", &[("decision", "block")]),
            Some(1)
        );
    }

    #[test]
    fn evict_idle_bounds_limiter_state_without_changing_outcomes() {
        let mut e = PolicyEngine::new(PolicyConfig::recommended());
        let f = fp();
        let clean = Verdict::clean();
        // 50 distinct bookings each trigger one SMS: 50 buckets materialize.
        for i in 0..50 {
            let d = e.decide(&ctx(
                &f,
                &clean,
                Endpoint::SendOtp,
                Some(BookingRef::from_index(i)),
                SimTime::from_mins(i),
            ));
            assert_eq!(d, Decision::Allow);
        }
        assert_eq!(e.limiter_tracked_keys().0, 50);
        // A day later every bucket has refilled; housekeeping drops them all.
        e.evict_idle(SimTime::from_days(2));
        assert_eq!(e.limiter_tracked_keys(), (0, 0));
        // Outcomes for a returning booking match a fresh limiter's.
        use fg_core::time::SimDuration;
        let booking = BookingRef::from_index(7);
        for i in 0..3 {
            assert_eq!(
                e.decide(&ctx(
                    &f,
                    &clean,
                    Endpoint::SendOtp,
                    Some(booking),
                    SimTime::from_days(2) + SimDuration::from_mins(i),
                )),
                Decision::Allow
            );
        }
        assert_eq!(
            e.decide(&ctx(
                &f,
                &clean,
                Endpoint::SendOtp,
                Some(booking),
                SimTime::from_days(2) + SimDuration::from_mins(5),
            )),
            Decision::RateLimited
        );
    }

    #[test]
    fn decision_reaches_application() {
        assert!(Decision::Allow.reaches_application());
        assert!(Decision::Challenge.reaches_application());
        for d in [
            Decision::Block,
            Decision::Honeypot,
            Decision::RateLimited,
            Decision::TierDenied,
        ] {
            assert!(!d.reaches_application());
        }
    }

    #[test]
    fn builtin_presets_validate() {
        for cfg in [
            PolicyConfig::unprotected(),
            PolicyConfig::traditional_antibot(),
            PolicyConfig::recommended(),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_malformed_configs() {
        let mut inverted = PolicyConfig::recommended();
        inverted.challenge_threshold = 0.9;
        inverted.block_threshold = 0.4;
        let errors = inverted.validate().unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("escalation")),
            "{errors:?}"
        );

        let mut nan = PolicyConfig::unprotected();
        nan.challenge_threshold = f64::NAN;
        assert!(nan.validate().is_err());

        let mut bad_limit = PolicyConfig::unprotected();
        bad_limit.booking_sms_limit = Some((0.0, 3.0));
        assert!(bad_limit.validate().is_err());

        let mut negative_refill = PolicyConfig::unprotected();
        negative_refill.path_sms_limit = Some((5.0, -1.0));
        assert!(negative_refill.validate().is_err());
    }

    #[test]
    fn equal_thresholds_are_valid_but_linted_elsewhere() {
        // challenge == block is *well-formed* (Challenge is merely dead);
        // fg-analyze's `unreachable-challenge` lint covers the semantic smell.
        let mut cfg = PolicyConfig::recommended();
        cfg.challenge_threshold = cfg.block_threshold;
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid PolicyConfig")]
    fn debug_engine_construction_rejects_invalid_config() {
        let mut cfg = PolicyConfig::recommended();
        cfg.challenge_threshold = 0.95; // above block_threshold 0.85
        let _ = PolicyEngine::new(cfg);
    }

    mod validate_props {
        use super::super::*;
        use proptest::prelude::*;

        /// Decodes a raw draw into a deployable threshold: a score bar in
        /// `[0, 1]`, or `+∞` ("stage disabled") for draws above 1.
        fn threshold(raw: f64) -> f64 {
            if raw > 1.0 {
                f64::INFINITY
            } else {
                raw
            }
        }

        /// Decodes a raw draw into an optional `(burst, per_day)` limit.
        fn limit(sel: u8, burst: f64, per_day: f64) -> Option<(f64, f64)> {
            (sel > 0).then_some((burst, per_day))
        }

        proptest! {
            /// Every config built the intended way round (challenge bar at or
            /// below block bar) validates, constructs an engine without
            /// panicking, and keeps `challenge_threshold <= block_threshold`.
            #[test]
            fn valid_configs_keep_challenge_below_block(
                a in 0.0f64..1.3,
                b in 0.0f64..1.3,
                booking in (0u8..3, 0.1f64..1_000.0, 0.0f64..100_000.0),
                path in (0u8..3, 0.1f64..1_000.0, 0.0f64..100_000.0),
                hold in (0u8..3, 0.1f64..1_000.0, 0.0f64..100_000.0),
            ) {
                let (a, b) = (threshold(a), threshold(b));
                let cfg = PolicyConfig {
                    challenge_threshold: a.min(b),
                    block_threshold: a.max(b),
                    honeypot_instead_of_block: false,
                    booking_sms_limit: limit(booking.0, booking.1, booking.2),
                    path_sms_limit: limit(path.0, path.1, path.2),
                    client_hold_limit: limit(hold.0, hold.1, hold.2),
                    gate: FeatureGate::permissive(),
                };
                prop_assert_eq!(cfg.validate(), Ok(()));
                prop_assert!(cfg.challenge_threshold <= cfg.block_threshold);
                let engine = PolicyEngine::new(cfg.clone());
                prop_assert_eq!(engine.config(), &cfg);
            }

            /// Inverted ladders never validate.
            #[test]
            fn inverted_thresholds_never_validate(
                block in 0.0f64..0.9,
                gap in 0.01f64..0.5,
            ) {
                let mut cfg = PolicyConfig::unprotected();
                cfg.challenge_threshold = block + gap;
                cfg.block_threshold = block;
                prop_assert!(cfg.validate().is_err());
            }
        }
    }
}
