//! Two-sided attack economics.
//!
//! §V's strongest recommendation: "Since many functional abuse attacks are
//! financially motivated, making them economically unviable is one of the
//! strongest deterrents." These ledgers make every experiment's outcome a
//! money statement: the attacker's ROI and the defender's total loss, with
//! and without each mitigation.

use fg_core::money::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The attacker's profit-and-loss ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackerLedger {
    /// Residential proxy leases.
    pub proxy_spend: Money,
    /// CAPTCHA-solver fees.
    pub solver_spend: Money,
    /// Tickets / goods actually purchased to enable the attack (§IV-C).
    pub purchase_spend: Money,
    /// Infrastructure (bot development, hosting) amortized per campaign.
    pub infra_spend: Money,
    /// Revenue: SMS termination kickbacks.
    pub sms_revenue: Money,
    /// Revenue: resale / competitive gain / price-drop capture.
    pub other_revenue: Money,
}

impl AttackerLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        AttackerLedger::default()
    }

    /// Total spend.
    pub fn total_cost(&self) -> Money {
        self.proxy_spend + self.solver_spend + self.purchase_spend + self.infra_spend
    }

    /// Total revenue.
    pub fn total_revenue(&self) -> Money {
        self.sms_revenue + self.other_revenue
    }

    /// Net profit (revenue − cost).
    pub fn profit(&self) -> Money {
        self.total_revenue() - self.total_cost()
    }

    /// Return on investment: profit / cost. `None` with zero cost.
    pub fn roi(&self) -> Option<f64> {
        let cost = self.total_cost().as_f64();
        if cost <= 0.0 {
            None
        } else {
            Some(self.profit().as_f64() / cost)
        }
    }

    /// `true` when the campaign lost money — the §V success criterion.
    pub fn unviable(&self) -> bool {
        self.profit().is_negative()
    }
}

impl fmt::Display for AttackerLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attacker: cost={} revenue={} profit={}",
            self.total_cost(),
            self.total_revenue(),
            self.profit()
        )
    }
}

/// The defender's loss ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenderLedger {
    /// SMS termination fees paid for attack traffic.
    pub sms_cost: Money,
    /// Revenue lost to legitimate customers denied by held inventory.
    pub lost_sales: Money,
    /// Revenue lost to legitimate customers who abandoned at friction
    /// (CAPTCHA, gating) — the §V usability cost made explicit.
    pub friction_losses: Money,
    /// Infrastructure cost of serving attack traffic.
    pub serving_cost: Money,
    /// Cost of operating mitigations (honeypot hosting, anti-bot licences).
    pub mitigation_cost: Money,
}

impl DefenderLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        DefenderLedger::default()
    }

    /// Total loss across all categories.
    pub fn total_loss(&self) -> Money {
        self.sms_cost
            + self.lost_sales
            + self.friction_losses
            + self.serving_cost
            + self.mitigation_cost
    }
}

impl fmt::Display for DefenderLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "defender: sms={} lost-sales={} friction={} serving={} mitigation={} total={}",
            self.sms_cost,
            self.lost_sales,
            self.friction_losses,
            self.serving_cost,
            self.mitigation_cost,
            self.total_loss()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_profit_and_roi() {
        let mut l = AttackerLedger::new();
        l.proxy_spend = Money::from_units(50);
        l.solver_spend = Money::from_units(10);
        l.sms_revenue = Money::from_units(200);
        assert_eq!(l.total_cost(), Money::from_units(60));
        assert_eq!(l.profit(), Money::from_units(140));
        assert!((l.roi().unwrap() - 140.0 / 60.0).abs() < 1e-9);
        assert!(!l.unviable());
    }

    #[test]
    fn attacker_unviable_when_losing() {
        let mut l = AttackerLedger::new();
        l.purchase_spend = Money::from_units(500); // bought tickets
        l.sms_revenue = Money::from_units(100);
        assert!(l.unviable());
        assert!(l.roi().unwrap() < 0.0);
    }

    #[test]
    fn zero_cost_roi_is_none() {
        let mut l = AttackerLedger::new();
        l.sms_revenue = Money::from_units(10);
        assert_eq!(l.roi(), None);
        assert!(!l.unviable(), "free profit is (sadly) viable");
    }

    #[test]
    fn defender_total_sums_categories() {
        let mut d = DefenderLedger::new();
        d.sms_cost = Money::from_units(3);
        d.lost_sales = Money::from_units(7);
        d.friction_losses = Money::from_units(1);
        d.serving_cost = Money::from_cents(50);
        d.mitigation_cost = Money::from_cents(50);
        assert_eq!(d.total_loss(), Money::from_units(12));
    }

    #[test]
    fn ledger_totals_saturate_instead_of_wrapping() {
        // Multi-year sim-time runs can peg individual categories; the
        // derived totals must rail at i64 micros rather than wrap a
        // catastrophic loss into a profit.
        let rail = Money::from_micros(i64::MAX);
        let mut a = AttackerLedger::new();
        a.proxy_spend = rail;
        a.solver_spend = rail;
        assert_eq!(a.total_cost(), rail);
        assert!(a.unviable(), "pegged cost with no revenue is a loss");
        assert!(a.roi().unwrap() < 0.0);

        let mut d = DefenderLedger::new();
        d.sms_cost = rail;
        d.lost_sales = rail;
        d.friction_losses = rail;
        assert_eq!(d.total_loss(), rail);
        assert!(
            !d.total_loss().is_negative(),
            "a loss total can never wrap negative"
        );
    }

    #[test]
    fn profit_of_pegged_revenue_and_cost_stays_in_range() {
        // revenue − cost at opposite rails is the worst-case subtraction.
        let mut l = AttackerLedger::new();
        l.sms_revenue = Money::from_micros(i64::MAX);
        l.purchase_spend = Money::from_micros(i64::MIN);
        assert_eq!(l.profit(), Money::from_micros(i64::MAX));
        l.sms_revenue = Money::from_micros(i64::MIN);
        l.purchase_spend = Money::from_micros(i64::MAX);
        assert_eq!(l.profit(), Money::from_micros(i64::MIN));
    }

    #[test]
    fn display_mentions_profit() {
        let mut l = AttackerLedger::new();
        l.sms_revenue = Money::from_units(5);
        assert!(l.to_string().contains("profit=$5.00"));
        assert!(DefenderLedger::new().to_string().contains("total=$0.00"));
    }
}
