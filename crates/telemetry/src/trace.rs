//! **fg-trace** — deterministic causal span tracing across the defence
//! pipeline.
//!
//! The paper's operational claim is that functional-abuse defence is an
//! *explainability* problem: an analyst must be able to reconstruct why one
//! session was challenged while a near-identical one was allowed. Flat
//! audit records answer *what* was decided; spans answer *why, in what
//! order, through which stages* — and link each decision back to its
//! session.
//!
//! Everything here is a pure function of simulation state:
//!
//! * **Trace ids** come from [`fg_core::hash::trace_id`] (session id ×
//!   per-run request sequence) — no wall clock, no entropy, so exported
//!   traces are byte-identical across `--jobs`.
//! * **Span times** are sim-time microseconds. Pipeline stages inside one
//!   request are instantaneous in sim-time, so each stage is laid out at a
//!   deterministic 1 µs *logical* offset inside its request span; the
//!   request span widens to cover its children. This is what makes the
//!   Chrome trace-event export render as a properly nested flame in
//!   Perfetto.
//! * **Sampling** ([`Tracer::submit`]) is head+tail and hash-keyed: every
//!   non-`allow` decision is kept, every pinned (sentinel-correlated)
//!   session is kept, and `allow` traces are kept when
//!   `splitmix64(trace_id ^ salt)` falls under the configured rate — a
//!   deterministic per-trace coin.
//!
//! Retention is bounded: when the trace budget fills, sampled `allow`
//! traces evict first (oldest first); important traces (non-allow or
//! pinned) only evict each other. Eviction counts are exported in the
//! [`TraceSnapshot`] so a truncated export never masquerades as complete.

use fg_core::rng::splitmix64;
use fg_core::time::SimTime;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Default probability of keeping an `allow`-decision trace: 1/32. Exact in
/// binary, so the keep/drop threshold arithmetic has no rounding surprises.
pub const DEFAULT_ALLOW_SAMPLE_RATE: f64 = 0.031_25;

/// Default request-trace retention budget.
pub const DEFAULT_TRACE_CAPACITY: usize = 16_384;

/// Default auxiliary-span retention budget (sentinel evaluations, team
/// reviews — spans not tied to one request).
pub const DEFAULT_AUX_CAPACITY: usize = 8_192;

/// Salt folded into the sampling hash so the keep/drop coin is independent
/// of any other use of the trace id.
const SAMPLE_SALT: u64 = 0x5AD5_ABE1_7A1E_D00D;

/// Tracer tuning.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Probability of keeping an `allow`-decision trace, in `[0, 1]`.
    pub allow_sample_rate: f64,
    /// Maximum retained request traces.
    pub capacity: usize,
    /// Maximum retained auxiliary spans.
    pub aux_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            allow_sample_rate: DEFAULT_ALLOW_SAMPLE_RATE,
            capacity: DEFAULT_TRACE_CAPACITY,
            aux_capacity: DEFAULT_AUX_CAPACITY,
        }
    }
}

/// One exported span: a named interval with structured attributes, causally
/// parented inside its trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace this span belongs to (session-root spans carry their own id).
    pub trace_id: u64,
    /// This span's id, unique within the export.
    pub span_id: u64,
    /// Parent span id; `0` for roots.
    pub parent_id: u64,
    /// Span name, e.g. `request /booking/hold` or `detect.ip-velocity`.
    pub name: String,
    /// The session (client id) the span executed under — the export's
    /// thread lane.
    pub session: u64,
    /// Start, in sim-time microseconds (plus the logical stage offset).
    pub start_us: u64,
    /// Duration in microseconds (logical for instantaneous stages).
    pub dur_us: u64,
    /// Structured attributes (signal scores, reason chains, limiter keys).
    pub attrs: Vec<(String, String)>,
}

/// Stage record inside a [`RequestTrace`]: `(parent, name, attrs)`.
/// Parent `0` is the request root; parent `i > 0` is `stages[i - 1]`.
type StageRecord = (usize, String, Vec<(String, String)>);

/// One in-flight request trace, built inside `DefendedApp::gate` and handed
/// to [`Tracer::submit`] with the final decision.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    trace_id: u64,
    session: u64,
    endpoint: String,
    at: SimTime,
    decision: String,
    stages: Vec<StageRecord>,
    pinned: bool,
}

impl RequestTrace {
    /// Opens a request trace rooted at `at` for the given session.
    pub fn new(trace_id: u64, session: u64, endpoint: &str, at: SimTime) -> Self {
        RequestTrace {
            trace_id,
            session,
            endpoint: endpoint.to_owned(),
            at,
            decision: String::new(),
            stages: Vec::new(),
            pinned: false,
        }
    }

    /// The trace id this request runs under.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Forces this trace into the always-keep set regardless of its
    /// decision label — the serving layer pins slow requests and 5xx
    /// responses so every exemplar cited in `/metrics` stays retrievable.
    pub fn pin(&mut self) {
        self.pinned = true;
    }

    /// Appends a pipeline-stage span under the request root; returns a
    /// handle usable as a parent for [`RequestTrace::child`] and for
    /// [`RequestTrace::attr`].
    pub fn stage(&mut self, name: &str) -> usize {
        self.stages.push((0, name.to_owned(), Vec::new()));
        self.stages.len()
    }

    /// Appends a span nested under the stage `parent` (as returned by
    /// [`RequestTrace::stage`]).
    pub fn child(&mut self, parent: usize, name: &str) -> usize {
        debug_assert!(parent >= 1 && parent <= self.stages.len());
        self.stages.push((parent, name.to_owned(), Vec::new()));
        self.stages.len()
    }

    /// Attaches one attribute to a stage handle.
    pub fn attr(&mut self, stage: usize, key: &str, value: impl ToString) {
        if let Some(s) = self.stages.get_mut(stage.wrapping_sub(1)) {
            s.2.push((key.to_owned(), value.to_string()));
        }
    }

    /// Stamps the final decision label (`allow`, `challenge`, …). The
    /// sampler's head+tail rule keys off this.
    pub fn finish(&mut self, decision: &str) {
        self.decision = decision.to_owned();
    }

    /// Flattens into exportable spans: the request root spanning its
    /// children, each stage at a deterministic 1 µs logical offset.
    fn to_spans(&self) -> Vec<SpanRecord> {
        let t0 = self.at.as_millis() * 1_000;
        let n = self.stages.len() as u64;
        let span_id = |idx: u64| match splitmix64(self.trace_id ^ (idx + 1)) {
            0 => 1,
            id => id,
        };
        let root_id = span_id(0);
        let mut out = Vec::with_capacity(self.stages.len() + 1);
        out.push(SpanRecord {
            trace_id: self.trace_id,
            span_id: root_id,
            parent_id: 0,
            name: format!("request {}", self.endpoint),
            session: self.session,
            start_us: t0,
            dur_us: n + 2,
            attrs: vec![
                ("endpoint".to_owned(), self.endpoint.clone()),
                ("decision".to_owned(), self.decision.clone()),
            ],
        });
        for (i, (parent, name, attrs)) in self.stages.iter().enumerate() {
            out.push(SpanRecord {
                trace_id: self.trace_id,
                span_id: span_id(i as u64 + 1),
                parent_id: if *parent == 0 {
                    root_id
                } else {
                    span_id(*parent as u64)
                },
                name: name.clone(),
                session: self.session,
                // Child stages sit inside their parent stage's slot: the
                // layout is one slot per stage in record order, nested
                // stages borrowing the tail of the parent's microsecond.
                start_us: t0 + 1 + i as u64,
                dur_us: 1,
                attrs: attrs.clone(),
            });
        }
        // Widen parent stages over their children so Chrome-trace viewers
        // nest by containment. Children immediately follow their parent in
        // record order, so extend each parent's duration to cover the last
        // descendant slot.
        for i in (0..self.stages.len()).rev() {
            let (parent, _, _) = self.stages[i];
            if parent > 0 {
                let child_end = out[i + 1].start_us + out[i + 1].dur_us;
                let p = &mut out[parent];
                let p_end = p.start_us + p.dur_us;
                if child_end > p_end {
                    p.dur_us = child_end - p.start_us;
                }
            }
        }
        out
    }
}

/// A point-in-time export of the tracer: retained spans plus the sampling
/// and retention accounting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    /// Request traces submitted to the sampler.
    pub submitted: u64,
    /// Traces the sampler kept (before any capacity eviction).
    pub kept: u64,
    /// `allow` traces dropped by the sampling coin.
    pub sampled_out: u64,
    /// Kept traces later evicted by the retention budget.
    pub evicted: u64,
    /// Auxiliary spans dropped by their retention budget.
    pub aux_dropped: u64,
    /// Every retained span (session roots, request roots, stages,
    /// auxiliary), sorted by `(start_us, trace_id, span_id)`.
    pub spans: Vec<SpanRecord>,
}

impl TraceSnapshot {
    /// The set of request trace ids present in the export (session-root and
    /// auxiliary ids excluded — these are what audit records and incident
    /// exemplars refer to).
    pub fn request_trace_ids(&self) -> BTreeSet<u64> {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with("request "))
            .map(|s| s.trace_id)
            .collect()
    }

    /// Renders the export as a Chrome trace-event / Perfetto-loadable JSON
    /// object: `traceEvents` holds one complete (`"ph": "X"`) event per
    /// span, lanes (`tid`) are session ids, and `otherData` carries the
    /// provenance pairs passed in.
    pub fn to_chrome_trace(&self, other_data: &[(&str, Value)]) -> Value {
        let events: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                let mut args: Vec<(String, Value)> = vec![
                    (
                        "trace_id".to_owned(),
                        Value::String(format!("{:#018x}", s.trace_id)),
                    ),
                    (
                        "span_id".to_owned(),
                        Value::String(format!("{:#018x}", s.span_id)),
                    ),
                    (
                        "parent_id".to_owned(),
                        Value::String(format!("{:#018x}", s.parent_id)),
                    ),
                ];
                for (k, v) in &s.attrs {
                    args.push((k.clone(), Value::String(v.clone())));
                }
                Value::Object(vec![
                    ("name".to_owned(), Value::String(s.name.clone())),
                    ("cat".to_owned(), Value::String("fg".to_owned())),
                    ("ph".to_owned(), Value::String("X".to_owned())),
                    ("ts".to_owned(), Value::UInt(s.start_us)),
                    ("dur".to_owned(), Value::UInt(s.dur_us)),
                    ("pid".to_owned(), Value::UInt(1)),
                    ("tid".to_owned(), Value::UInt(s.session)),
                    ("args".to_owned(), Value::Object(args)),
                ])
            })
            .collect();
        let stats = Value::Object(vec![
            ("submitted".to_owned(), Value::UInt(self.submitted)),
            ("kept".to_owned(), Value::UInt(self.kept)),
            ("sampled_out".to_owned(), Value::UInt(self.sampled_out)),
            ("evicted".to_owned(), Value::UInt(self.evicted)),
            ("aux_dropped".to_owned(), Value::UInt(self.aux_dropped)),
        ]);
        let mut other: Vec<(String, Value)> = other_data
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect();
        other.push(("sampling".to_owned(), stats));
        Value::Object(vec![
            ("traceEvents".to_owned(), Value::Array(events)),
            ("displayTimeUnit".to_owned(), Value::String("ms".to_owned())),
            ("otherData".to_owned(), Value::Object(other)),
        ])
    }

    /// Renders the export as compact JSONL: one span object per line, in
    /// export order — the streaming-friendly form for external tooling.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&serde_json::to_string(span).expect("spans serialize cleanly"));
            out.push('\n');
        }
        out
    }
}

/// The deterministic span tracer: head+tail sampling over submitted request
/// traces plus an auxiliary span ring, all bounded.
#[derive(Debug, Default)]
pub struct Tracer {
    config: Option<TraceConfig>,
    pinned: BTreeSet<u64>,
    /// Sampled `allow` traces — the first to evict under pressure.
    kept_sampled: VecDeque<RequestTrace>,
    /// Non-allow or pinned-session traces — evicted only among themselves.
    kept_important: VecDeque<RequestTrace>,
    aux: VecDeque<SpanRecord>,
    submitted: u64,
    sampled_out: u64,
    evicted: u64,
    aux_dropped: u64,
}

impl Tracer {
    /// Creates a disabled tracer ([`Tracer::submit`] drops everything until
    /// [`Tracer::enable`]).
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Turns tracing on with the given config.
    pub fn enable(&mut self, config: TraceConfig) {
        self.config = Some(config);
    }

    /// Whether tracing is on.
    pub fn is_enabled(&self) -> bool {
        self.config.is_some()
    }

    /// Marks a session as sentinel-correlated: its traces bypass the
    /// sampling coin (tail-kept) so incident exemplars always resolve.
    pub fn pin_session(&mut self, session: u64) {
        self.pinned.insert(session);
    }

    /// The deterministic keep/drop coin for an `allow` trace.
    fn sample_keeps(trace_id: u64, rate: f64) -> bool {
        let threshold = (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        splitmix64(trace_id ^ SAMPLE_SALT) <= threshold
    }

    /// Submits a finished request trace. Head+tail rule: non-`allow`
    /// decisions, pinned sessions, and individually pinned traces
    /// ([`RequestTrace::pin`]) are always kept; `allow` traces are kept at
    /// the configured hash-keyed rate.
    pub fn submit(&mut self, trace: RequestTrace) {
        let Some(config) = self.config else {
            return;
        };
        self.submitted += 1;
        let important =
            trace.pinned || trace.decision != "allow" || self.pinned.contains(&trace.session);
        if !important && !Self::sample_keeps(trace.trace_id, config.allow_sample_rate) {
            self.sampled_out += 1;
            return;
        }
        if important {
            self.kept_important.push_back(trace);
        } else {
            self.kept_sampled.push_back(trace);
        }
        while self.kept_sampled.len() + self.kept_important.len() > config.capacity {
            // Sampled allows evict first; important traces only evict each
            // other once no sampled trace remains.
            if self.kept_sampled.pop_front().is_none() {
                self.kept_important.pop_front();
            }
            self.evicted += 1;
        }
    }

    /// Records a span not tied to one request (sentinel rule evaluation,
    /// team review). Bounded by `aux_capacity`, oldest dropped first.
    pub fn record_aux(&mut self, span: SpanRecord) {
        let Some(config) = self.config else {
            return;
        };
        if self.aux.len() == config.aux_capacity.max(1) {
            self.aux.pop_front();
            self.aux_dropped += 1;
        }
        self.aux.push_back(span);
    }

    /// Trace ids currently retained (what incident exemplars may cite).
    pub fn retained_ids(&self) -> BTreeSet<u64> {
        self.kept_important
            .iter()
            .chain(self.kept_sampled.iter())
            .map(|t| t.trace_id)
            .collect()
    }

    /// Exports every retained span: per-session root spans bracketing each
    /// session's retained requests, the request/stage spans, and the
    /// auxiliary ring — sorted by `(start_us, trace_id, span_id)`.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut spans: Vec<SpanRecord> = Vec::new();
        // Session roots: one per client with retained traces, spanning the
        // first request's start to the last request's end.
        let mut sessions: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for trace in self.kept_important.iter().chain(self.kept_sampled.iter()) {
            let request_spans = trace.to_spans();
            let start = request_spans[0].start_us;
            let end = start + request_spans[0].dur_us;
            sessions
                .entry(trace.session)
                .and_modify(|(s, e)| {
                    *s = (*s).min(start);
                    *e = (*e).max(end);
                })
                .or_insert((start, end));
            spans.extend(request_spans);
        }
        for (&session, &(start, end)) in &sessions {
            let root_trace = fg_core::hash::trace_id(session, 0);
            spans.push(SpanRecord {
                trace_id: root_trace,
                span_id: root_trace,
                parent_id: 0,
                name: format!("session c{session}"),
                session,
                start_us: start,
                dur_us: end - start,
                attrs: vec![("client".to_owned(), format!("c{session}"))],
            });
        }
        spans.extend(self.aux.iter().cloned());
        spans.sort_by(|a, b| {
            (a.start_us, a.trace_id, a.span_id).cmp(&(b.start_us, b.trace_id, b.span_id))
        });
        let kept = (self.kept_important.len() + self.kept_sampled.len()) as u64 + self.evicted;
        TraceSnapshot {
            submitted: self.submitted,
            kept,
            sampled_out: self.sampled_out,
            evicted: self.evicted,
            aux_dropped: self.aux_dropped,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(session: u64, seq: u64, decision: &str) -> RequestTrace {
        let mut t = RequestTrace::new(
            fg_core::hash::trace_id(session, seq),
            session,
            "/booking/hold",
            SimTime::from_secs(seq),
        );
        let assess = t.stage("detect.assess");
        t.attr(assess, "score", "0.42");
        let sig = t.child(assess, "detect.ip-velocity");
        t.attr(sig, "weight", "0.16");
        let policy = t.stage("policy.decide");
        t.attr(policy, "reasons", "score-challenge:triggered");
        t.finish(decision);
        t
    }

    fn enabled() -> Tracer {
        let mut tr = Tracer::new();
        tr.enable(TraceConfig::default());
        tr
    }

    #[test]
    fn disabled_tracer_drops_everything() {
        let mut tr = Tracer::new();
        tr.submit(trace(1, 1, "block"));
        let snap = tr.snapshot();
        assert_eq!(snap.submitted, 0);
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn non_allow_is_always_kept_and_allows_are_sampled() {
        let mut tr = Tracer::new();
        tr.enable(TraceConfig {
            allow_sample_rate: 0.0,
            ..TraceConfig::default()
        });
        tr.submit(trace(1, 1, "allow"));
        tr.submit(trace(1, 2, "challenge"));
        tr.submit(trace(1, 3, "block"));
        let snap = tr.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.sampled_out, 1);
        assert_eq!(snap.request_trace_ids().len(), 2);
    }

    #[test]
    fn pinned_sessions_bypass_the_sampling_coin() {
        let mut tr = Tracer::new();
        tr.enable(TraceConfig {
            allow_sample_rate: 0.0,
            ..TraceConfig::default()
        });
        tr.pin_session(7);
        tr.submit(trace(7, 1, "allow"));
        tr.submit(trace(8, 1, "allow"));
        let snap = tr.snapshot();
        assert_eq!(snap.request_trace_ids().len(), 1);
        assert!(snap
            .request_trace_ids()
            .contains(&fg_core::hash::trace_id(7, 1)));
    }

    #[test]
    fn pinned_traces_bypass_the_sampling_coin() {
        let mut tr = Tracer::new();
        tr.enable(TraceConfig {
            allow_sample_rate: 0.0,
            ..TraceConfig::default()
        });
        let mut slow_allow = trace(9, 1, "allow");
        slow_allow.pin();
        tr.submit(slow_allow);
        tr.submit(trace(9, 2, "allow"));
        let snap = tr.snapshot();
        assert_eq!(snap.request_trace_ids().len(), 1);
        assert!(snap
            .request_trace_ids()
            .contains(&fg_core::hash::trace_id(9, 1)));
    }

    #[test]
    fn sampling_coin_is_deterministic() {
        let rate = DEFAULT_ALLOW_SAMPLE_RATE;
        for seq in 0..1_000u64 {
            let id = fg_core::hash::trace_id(3, seq);
            assert_eq!(
                Tracer::sample_keeps(id, rate),
                Tracer::sample_keeps(id, rate)
            );
        }
        let kept = (0..10_000u64)
            .filter(|&seq| Tracer::sample_keeps(fg_core::hash::trace_id(3, seq), rate))
            .count();
        // 1/32 of 10 000 ≈ 312; allow generous slack for hash variance.
        assert!((150..600).contains(&kept), "kept {kept} of 10000");
    }

    #[test]
    fn capacity_evicts_sampled_allows_before_important_traces() {
        let mut tr = Tracer::new();
        tr.enable(TraceConfig {
            allow_sample_rate: 1.0,
            capacity: 4,
            aux_capacity: 4,
        });
        tr.submit(trace(1, 1, "allow"));
        tr.submit(trace(1, 2, "allow"));
        tr.submit(trace(1, 3, "block"));
        tr.submit(trace(1, 4, "block"));
        tr.submit(trace(1, 5, "block"));
        let snap = tr.snapshot();
        assert_eq!(snap.evicted, 1);
        let ids = snap.request_trace_ids();
        for seq in [2, 3, 4, 5] {
            assert!(
                ids.contains(&fg_core::hash::trace_id(1, seq)),
                "sequence {seq} retained"
            );
        }
        assert!(
            !ids.contains(&fg_core::hash::trace_id(1, 1)),
            "oldest allow evicted"
        );
    }

    #[test]
    fn spans_nest_inside_the_request_root() {
        let spans = trace(9, 1, "challenge").to_spans();
        assert_eq!(spans.len(), 4, "root + assess + signal + policy");
        let root = &spans[0];
        assert!(root.name.starts_with("request "));
        assert_eq!(root.parent_id, 0);
        for child in &spans[1..] {
            assert!(child.start_us >= root.start_us);
            assert!(child.start_us + child.dur_us <= root.start_us + root.dur_us);
        }
        // The signal span parents into detect.assess, which widens over it.
        let assess = spans.iter().find(|s| s.name == "detect.assess").unwrap();
        let signal = spans
            .iter()
            .find(|s| s.name == "detect.ip-velocity")
            .unwrap();
        assert_eq!(signal.parent_id, assess.span_id);
        assert!(signal.start_us + signal.dur_us <= assess.start_us + assess.dur_us);
    }

    #[test]
    fn snapshot_emits_session_roots_and_sorts_deterministically() {
        let mut tr = enabled();
        tr.submit(trace(2, 2, "block"));
        tr.submit(trace(2, 1, "block"));
        tr.submit(trace(5, 1, "challenge"));
        let snap = tr.snapshot();
        let roots: Vec<&SpanRecord> = snap
            .spans
            .iter()
            .filter(|s| s.name.starts_with("session "))
            .collect();
        assert_eq!(roots.len(), 2);
        let c2 = roots.iter().find(|s| s.session == 2).unwrap();
        // The session root brackets both of c2's requests.
        assert_eq!(c2.start_us, SimTime::from_secs(1).as_millis() * 1_000);
        let sorted: Vec<u64> = snap.spans.iter().map(|s| s.start_us).collect();
        let mut expected = sorted.clone();
        expected.sort_unstable();
        assert_eq!(sorted, expected, "spans sorted by start time");
        assert_eq!(tr.snapshot(), snap, "snapshot is a pure read");
    }

    #[test]
    fn aux_ring_is_bounded() {
        let mut tr = Tracer::new();
        tr.enable(TraceConfig {
            aux_capacity: 2,
            ..TraceConfig::default()
        });
        for i in 0..5u64 {
            tr.record_aux(SpanRecord {
                trace_id: fg_core::hash::trace_id(0, i),
                span_id: i + 1,
                parent_id: 0,
                name: "sentinel.evaluate".to_owned(),
                session: 0,
                start_us: i * 300_000_000,
                dur_us: 1,
                attrs: Vec::new(),
            });
        }
        let snap = tr.snapshot();
        assert_eq!(snap.aux_dropped, 3);
        assert_eq!(snap.spans.len(), 2);
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let mut tr = enabled();
        tr.submit(trace(3, 1, "block"));
        let snap = tr.snapshot();
        let value = snap.to_chrome_trace(&[("experiment", Value::String("t".to_owned()))]);
        let text = serde_json::to_string_pretty(&value).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let Value::Object(pairs) = parsed else {
            panic!("top level must be an object")
        };
        let events = pairs
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents present");
        let Value::Array(events) = events else {
            panic!("traceEvents must be an array")
        };
        assert_eq!(events.len(), snap.spans.len());
        for e in events {
            let Value::Object(fields) = e else {
                panic!("event must be an object")
            };
            for required in ["name", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(
                    fields.iter().any(|(k, _)| k == required),
                    "event field {required}"
                );
            }
        }
    }

    #[test]
    fn jsonl_round_trips_spans() {
        let mut tr = enabled();
        tr.submit(trace(4, 1, "challenge"));
        let snap = tr.snapshot();
        let jsonl = snap.to_jsonl();
        let back: Vec<SpanRecord> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, snap.spans);
    }
}
