//! Per-stage wall-clock profiling of the defence pipeline.
//!
//! Each named stage (a detection signal, a policy decision, a team review
//! pass) accumulates its latencies into a bounded log-linear histogram
//! ([`crate::hist::Hist`]): memory stays fixed no matter how long the
//! process runs, percentiles are within [`crate::hist::RELATIVE_ERROR`]
//! (1/64) of the exact nearest-rank value, and per-shard snapshots merge
//! exactly bucket-wise instead of averaging percentiles.

use crate::hist::{Hist, HistSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Handle to a registered stage; indexes the profiler's stage table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageId(usize);

#[derive(Clone, Debug)]
struct StageStats {
    name: String,
    nanos: Hist,
}

/// Accumulates wall-clock latencies per named pipeline stage.
#[derive(Clone, Debug, Default)]
pub struct StageProfiler {
    stages: Vec<StageStats>,
    index: HashMap<String, usize>,
}

impl StageProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        StageProfiler::default()
    }

    /// Registers (or fetches) a stage by name.
    pub fn stage(&mut self, name: &str) -> StageId {
        if let Some(&i) = self.index.get(name) {
            return StageId(i);
        }
        let i = self.stages.len();
        self.stages.push(StageStats {
            name: name.to_owned(),
            nanos: Hist::new(),
        });
        self.index.insert(name.to_owned(), i);
        StageId(i)
    }

    /// Records one latency sample for a pre-registered stage.
    pub fn record(&mut self, id: StageId, elapsed: Duration) {
        self.stages[id.0].nanos.record_duration(elapsed);
    }

    /// Records one latency sample, registering the stage if needed.
    pub fn record_named(&mut self, name: &str, elapsed: Duration) {
        let id = self.stage(name);
        self.record(id, elapsed);
    }

    /// Number of registered stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if no stage is registered.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Per-stage latency statistics, in registration order. Stages that
    /// never recorded a sample are skipped.
    pub fn snapshot(&self) -> Vec<StageSnapshot> {
        self.stages
            .iter()
            .filter(|s| !s.nanos.is_empty())
            .map(|s| StageSnapshot::from_hist(s.name.clone(), s.nanos.snapshot()))
            .collect()
    }
}

/// One stage's latency statistics, in microseconds.
///
/// The percentile fields are derived from `hist` (the mergeable source of
/// truth); [`StageSnapshot::refresh_derived`] recomputes them after a
/// merge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name, e.g. `detect.ip-velocity`.
    pub stage: String,
    /// Samples recorded.
    pub count: u64,
    /// Total time spent in the stage, milliseconds.
    pub total_ms: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Worst-case latency, microseconds.
    pub max_us: f64,
    /// The underlying log-linear histogram; merging two snapshots adds
    /// these bucket-wise, which is exact (no percentile averaging).
    pub hist: HistSnapshot,
}

impl StageSnapshot {
    /// Builds a snapshot (derived fields included) from a histogram.
    pub fn from_hist(stage: String, hist: HistSnapshot) -> Self {
        let mut snap = StageSnapshot {
            stage,
            count: 0,
            total_ms: 0.0,
            mean_us: 0.0,
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
            max_us: 0.0,
            hist,
        };
        snap.refresh_derived();
        snap
    }

    /// Recomputes count/total/mean/percentiles/max from `hist`, after the
    /// histogram has been merged or replaced.
    pub fn refresh_derived(&mut self) {
        self.count = self.hist.count;
        self.total_ms = self.hist.sum as f64 * 1e-6;
        self.mean_us = if self.hist.count == 0 {
            0.0
        } else {
            self.hist.sum as f64 * (self.hist.count as f64).recip() * 1e-3
        };
        self.p50_us = self.hist.quantile_us(0.50);
        self.p95_us = self.hist.quantile_us(0.95);
        self.p99_us = self.hist.quantile_us(0.99);
        self.max_us = self.hist.max as f64 * 1e-3;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::RELATIVE_ERROR;

    #[test]
    fn stages_register_idempotently() {
        let mut p = StageProfiler::new();
        let a = p.stage("detect.assess");
        let b = p.stage("detect.assess");
        assert_eq!(a, b);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn percentiles_come_from_recorded_samples() {
        let mut p = StageProfiler::new();
        let id = p.stage("policy.decide");
        for us in 1..=100u64 {
            p.record(id, Duration::from_micros(us));
        }
        let snap = p.snapshot();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(s.count, 100);
        // Percentiles are bucketed: within the documented relative error of
        // the exact nearest-rank values (50/95/99 µs); max is exact.
        for (got, exact) in [(s.p50_us, 50.0), (s.p95_us, 95.0), (s.p99_us, 99.0)] {
            assert!(
                (got - exact).abs() <= exact * RELATIVE_ERROR,
                "{got} vs {exact}"
            );
        }
        assert!((s.max_us - 100.0).abs() < 1e-6, "max {}", s.max_us);
        assert!((s.total_ms - 5.05).abs() < 1e-6, "total {}", s.total_ms);
        assert!((s.mean_us - 50.5).abs() < 1e-6, "mean {}", s.mean_us);
    }

    #[test]
    fn memory_is_bounded_regardless_of_sample_count() {
        // The old Summary retained every sample; the histogram must not.
        let mut p = StageProfiler::new();
        let id = p.stage("detect.assess");
        for i in 0..200_000u64 {
            p.record(id, Duration::from_nanos(100 + i % 1000));
        }
        let snap = p.snapshot();
        assert_eq!(snap[0].count, 200_000);
        assert!(
            snap[0].hist.buckets.len() <= crate::hist::BUCKET_COUNT,
            "sparse form bounded by the fixed table"
        );
    }

    #[test]
    fn empty_stages_are_omitted_from_snapshots() {
        let mut p = StageProfiler::new();
        let _never_recorded = p.stage("gate.captcha");
        p.record_named("detect.assess", Duration::from_micros(3));
        let snap = p.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].stage, "detect.assess");
    }
}
