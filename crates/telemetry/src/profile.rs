//! Per-stage wall-clock profiling of the defence pipeline.
//!
//! Each named stage (a detection signal, a policy decision, a team review
//! pass) accumulates its latencies into an `fg_core::stats::Summary`, which
//! retains samples for exact nearest-rank percentiles — the p50/p95/p99
//! reported per stage.

use fg_core::stats::Summary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Handle to a registered stage; indexes the profiler's stage table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageId(usize);

#[derive(Clone, Debug)]
struct StageStats {
    name: String,
    nanos: Summary,
}

/// Accumulates wall-clock latencies per named pipeline stage.
#[derive(Clone, Debug, Default)]
pub struct StageProfiler {
    stages: Vec<StageStats>,
    index: HashMap<String, usize>,
}

impl StageProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        StageProfiler::default()
    }

    /// Registers (or fetches) a stage by name.
    pub fn stage(&mut self, name: &str) -> StageId {
        if let Some(&i) = self.index.get(name) {
            return StageId(i);
        }
        let i = self.stages.len();
        self.stages.push(StageStats {
            name: name.to_owned(),
            nanos: Summary::new(),
        });
        self.index.insert(name.to_owned(), i);
        StageId(i)
    }

    /// Records one latency sample for a pre-registered stage.
    pub fn record(&mut self, id: StageId, elapsed: Duration) {
        self.stages[id.0].nanos.record(elapsed.as_nanos() as f64);
    }

    /// Records one latency sample, registering the stage if needed.
    pub fn record_named(&mut self, name: &str, elapsed: Duration) {
        let id = self.stage(name);
        self.record(id, elapsed);
    }

    /// Number of registered stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if no stage is registered.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Per-stage latency statistics, in registration order. Stages that
    /// never recorded a sample are skipped.
    pub fn snapshot(&self) -> Vec<StageSnapshot> {
        self.stages
            .iter()
            .filter(|s| !s.nanos.is_empty())
            .map(|s| {
                let us = 1e-3;
                StageSnapshot {
                    stage: s.name.clone(),
                    count: s.nanos.count() as u64,
                    total_ms: s.nanos.sum() * 1e-6,
                    mean_us: s.nanos.mean() * us,
                    p50_us: s.nanos.percentile(50.0).unwrap_or(0.0) * us,
                    p95_us: s.nanos.percentile(95.0).unwrap_or(0.0) * us,
                    p99_us: s.nanos.percentile(99.0).unwrap_or(0.0) * us,
                    max_us: s.nanos.max().unwrap_or(0.0) * us,
                }
            })
            .collect()
    }
}

/// One stage's latency statistics, in microseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name, e.g. `detect.ip-velocity`.
    pub stage: String,
    /// Samples recorded.
    pub count: u64,
    /// Total time spent in the stage, milliseconds.
    pub total_ms: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Worst-case latency, microseconds.
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_register_idempotently() {
        let mut p = StageProfiler::new();
        let a = p.stage("detect.assess");
        let b = p.stage("detect.assess");
        assert_eq!(a, b);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn percentiles_come_from_recorded_samples() {
        let mut p = StageProfiler::new();
        let id = p.stage("policy.decide");
        for us in 1..=100u64 {
            p.record(id, Duration::from_micros(us));
        }
        let snap = p.snapshot();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(s.count, 100);
        assert!((s.p50_us - 50.0).abs() < 1e-6, "p50 {}", s.p50_us);
        assert!((s.p95_us - 95.0).abs() < 1e-6, "p95 {}", s.p95_us);
        assert!((s.p99_us - 99.0).abs() < 1e-6, "p99 {}", s.p99_us);
        assert!((s.max_us - 100.0).abs() < 1e-6, "max {}", s.max_us);
        assert!((s.total_ms - 5.05).abs() < 1e-6, "total {}", s.total_ms);
    }

    #[test]
    fn empty_stages_are_omitted_from_snapshots() {
        let mut p = StageProfiler::new();
        let _never_recorded = p.stage("gate.captcha");
        p.record_named("detect.assess", Duration::from_micros(3));
        let snap = p.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].stage, "detect.assess");
    }
}
