//! Lock-free-on-the-hot-path metrics: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones registered once, up front, in a [`MetricsRegistry`]. A per-request
//! increment is then a single relaxed atomic write — the registry's mutex is
//! only taken at registration and snapshot time, never on the hot path.

use crate::hist::{AtomicHist, Exemplar, HistSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell, so an instrumented component can hold
/// its own handle while the registry retains another for export.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not yet in any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as raw bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Creates a detached gauge initialised to `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `dv` (compare-and-swap loop; still lock-free).
    pub fn add(&self, dv: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + dv).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bucket bounds, strictly increasing and finite. Bucket `i`
    /// counts samples `v <= bounds[i]` (Prometheus `le` semantics); one
    /// extra overflow bucket catches everything above the last bound.
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram with Prometheus `le` (less-or-equal) semantics.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Creates a histogram over the given upper bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty, non-finite, or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.into(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one sample. Non-finite samples are ignored (mirroring
    /// `fg_core::stats::Summary`).
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.0.bounds.partition_point(|&b| v > b);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured upper bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts, non-cumulative; the final element is the overflow
    /// bucket (`+Inf`).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// A shared handle to a lock-free log-linear latency histogram
/// ([`crate::hist::AtomicHist`]): bounded memory, exact bucket-wise merge,
/// quantiles within [`crate::hist::RELATIVE_ERROR`]. The exporter renders
/// these as native Prometheus histograms (in seconds) with OpenMetrics
/// exemplars linking slow buckets to trace ids.
#[derive(Clone, Debug, Default)]
pub struct Latency(Arc<AtomicHist>);

impl Latency {
    /// Creates a detached latency histogram (not yet in any registry).
    pub fn new() -> Self {
        Latency::default()
    }

    /// Records one latency sample. Lock-free.
    pub fn record(&self, elapsed: Duration) {
        self.0.record_duration(elapsed);
    }

    /// Records one latency sample given directly in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.0.record(nanos);
    }

    /// Records a sample and offers `trace_id` as the exemplar for its
    /// latency band (ignored when `trace_id` is 0, the "no trace" value).
    pub fn record_with_exemplar(&self, elapsed: Duration, trace_id: u64) {
        self.0.record_with_exemplar(
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            trace_id,
        );
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Point-in-time compact histogram plus current exemplars.
    pub fn snapshot(&self) -> (HistSnapshot, Vec<Exemplar>) {
        self.0.snapshot()
    }
}

/// A metric's identity: base name plus label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricName {
    /// Base metric name, e.g. `fg_requests_total`.
    pub name: String,
    /// Label pairs, e.g. `[("endpoint", "/search")]`.
    pub labels: Vec<(String, String)>,
}

impl MetricName {
    /// Builds a name from a base and borrowed label pairs.
    ///
    /// Debug builds assert the Prometheus exposition-format charsets at
    /// registration — metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`
    /// and label names `[a-zA-Z_][a-zA-Z0-9_]*` — so a bad name fails the
    /// test suite instead of producing an exporter output that a scraper
    /// rejects long after the run. Label *values* are unrestricted (the
    /// exporter quotes and escapes them).
    pub fn with_labels(name: &str, labels: &[(&str, &str)]) -> Self {
        debug_assert!(
            is_valid_metric_name(name),
            "invalid Prometheus metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        for (k, _) in labels {
            debug_assert!(
                is_valid_label_name(k),
                "invalid Prometheus label name {k:?} on {name:?} (want [a-zA-Z_][a-zA-Z0-9_]*)"
            );
        }
        MetricName {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric-name charset.
fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the Prometheus label-name charset.
fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl fmt::Display for MetricName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v:?}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(MetricName, Counter)>,
    gauges: Vec<(MetricName, Gauge)>,
    histograms: Vec<(MetricName, Histogram)>,
    latencies: Vec<(MetricName, Latency)>,
    /// Per-base-name help text (`# HELP` in the Prometheus exposition),
    /// keyed by base name only — labelled series share their metric's help.
    help: Vec<(String, String)>,
}

/// The registry of all exportable metric handles.
///
/// Registration is idempotent: asking twice for the same name + labels
/// returns a clone of the same underlying handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or fetches) an unlabelled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or fetches) a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricName::with_labels(name, labels);
        let mut inner = self.lock();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| *n == id) {
            return c.clone();
        }
        let c = Counter::new();
        inner.counters.push((id, c.clone()));
        c
    }

    /// Registers an existing counter handle under the given identity, so a
    /// component that pre-dates the registry (e.g. `PolicyEngine`'s decision
    /// counters) can expose its counts without rewiring its hot path.
    pub fn adopt_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) {
        let id = MetricName::with_labels(name, labels);
        let mut inner = self.lock();
        if let Some(slot) = inner.counters.iter_mut().find(|(n, _)| *n == id) {
            slot.1 = counter.clone();
        } else {
            inner.counters.push((id, counter.clone()));
        }
    }

    /// Registers (or fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or fetches) a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricName::with_labels(name, labels);
        let mut inner = self.lock();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| *n == id) {
            return g.clone();
        }
        let g = Gauge::new();
        inner.gauges.push((id, g.clone()));
        g
    }

    /// Registers (or fetches) an unlabelled histogram with the given bounds.
    ///
    /// Bounds are fixed at first registration; a second call with different
    /// bounds returns the original histogram unchanged.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// Registers (or fetches) a labelled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let id = MetricName::with_labels(name, labels);
        let mut inner = self.lock();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| *n == id) {
            return h.clone();
        }
        let h = Histogram::new(bounds);
        inner.histograms.push((id, h.clone()));
        h
    }

    /// Registers (or fetches) an unlabelled latency histogram.
    pub fn latency(&self, name: &str) -> Latency {
        self.latency_with(name, &[])
    }

    /// Registers (or fetches) a labelled latency histogram.
    pub fn latency_with(&self, name: &str, labels: &[(&str, &str)]) -> Latency {
        let id = MetricName::with_labels(name, labels);
        let mut inner = self.lock();
        if let Some((_, l)) = inner.latencies.iter().find(|(n, _)| *n == id) {
            return l.clone();
        }
        let l = Latency::new();
        inner.latencies.push((id, l.clone()));
        l
    }

    /// Attaches help text to a base metric name (`# HELP` in the Prometheus
    /// exposition). The first registration wins; registering the same text
    /// twice is a no-op, so every component can describe the metrics it
    /// creates without coordinating.
    pub fn set_help(&self, name: &str, help: &str) {
        let mut inner = self.lock();
        if inner.help.iter().any(|(n, _)| n == name) {
            return;
        }
        inner.help.push((name.to_owned(), help.to_owned()));
    }

    /// Captures every registered metric's current value, sorted by identity
    /// for deterministic export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut counters: Vec<CounterSample> = inner
            .counters
            .iter()
            .map(|(n, c)| CounterSample {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSample> = inner
            .gauges
            .iter()
            .map(|(n, g)| GaugeSample {
                name: n.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSample> = inner
            .histograms
            .iter()
            .map(|(n, h)| HistogramSample {
                name: n.clone(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut latencies: Vec<LatencySample> = inner
            .latencies
            .iter()
            .map(|(n, l)| {
                let (hist, exemplars) = l.snapshot();
                LatencySample {
                    name: n.clone(),
                    hist,
                    exemplars,
                }
            })
            .collect();
        latencies.sort_by(|a, b| a.name.cmp(&b.name));
        let mut help = inner.help.clone();
        help.sort();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            latencies,
            help,
        }
    }
}

/// One counter's exported value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric identity.
    pub name: MetricName,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge's exported value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric identity.
    pub name: MetricName,
    /// Value at snapshot time.
    pub value: f64,
}

/// One histogram's exported state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric identity.
    pub name: MetricName,
    /// Upper bucket bounds (overflow excluded).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; final element is the overflow
    /// bucket.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
}

/// One latency histogram's exported state: the compact log-linear form
/// plus its current exemplars.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencySample {
    /// Metric identity.
    pub name: MetricName,
    /// Sparse log-linear buckets, count, sum and max (nanoseconds).
    pub hist: HistSnapshot,
    /// Exemplars pinned to latency bands, ascending by latency.
    pub exemplars: Vec<Exemplar>,
}

/// A point-in-time capture of every registered metric.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by identity.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by identity.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by identity.
    pub histograms: Vec<HistogramSample>,
    /// All latency histograms, sorted by identity.
    pub latencies: Vec<LatencySample>,
    /// Per-base-name help text, sorted by name.
    pub help: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Looks up a base name's help text.
    pub fn help_for(&self, name: &str) -> Option<&str> {
        self.help
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.as_str())
    }
    /// Looks up a counter's value by base name and labels.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricName::with_labels(name, labels);
        self.counters.iter().find(|c| c.name == id).map(|c| c.value)
    }

    /// Looks up a gauge's value by base name and labels.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let id = MetricName::with_labels(name, labels);
        self.gauges.iter().find(|g| g.name == id).map(|g| g.value)
    }

    /// Looks up a latency histogram by base name and labels.
    pub fn latency_sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LatencySample> {
        let id = MetricName::with_labels(name, labels);
        self.latencies.iter().find(|l| l.name == id)
    }

    /// Merges every latency series sharing `name` (across label sets) into
    /// one histogram — e.g. the all-endpoint request-latency view. `None`
    /// when no series matches.
    pub fn latency_merged(&self, name: &str) -> Option<HistSnapshot> {
        let mut merged: Option<HistSnapshot> = None;
        for l in self.latencies.iter().filter(|l| l.name.name == name) {
            match &mut merged {
                Some(m) => m.merge(&l.hist),
                None => merged = Some(l.hist.clone()),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("fg_requests_total");
        let b = registry.counter("fg_requests_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "both handles hit the same cell");
        assert_eq!(
            registry.snapshot().counter_value("fg_requests_total", &[]),
            Some(5)
        );
    }

    #[test]
    fn labelled_counters_are_distinct() {
        let registry = MetricsRegistry::new();
        let uz = registry.counter_with("fg_sms_sent_total", &[("country", "UZ")]);
        let lt = registry.counter_with("fg_sms_sent_total", &[("country", "LT")]);
        uz.add(3);
        lt.inc();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("fg_sms_sent_total", &[("country", "UZ")]),
            Some(3)
        );
        assert_eq!(
            snap.counter_value("fg_sms_sent_total", &[("country", "LT")]),
            Some(1)
        );
    }

    #[test]
    fn gauges_set_and_add() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn adopted_counters_export_live_values() {
        let registry = MetricsRegistry::new();
        let mine = Counter::new();
        mine.add(7);
        registry.adopt_counter("fg_decisions_total", &[("decision", "block")], &mine);
        mine.inc();
        assert_eq!(
            registry
                .snapshot()
                .counter_value("fg_decisions_total", &[("decision", "block")]),
            Some(8)
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_le() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        // Exactly on a bound lands in that bucket (le semantics) …
        h.record(1.0);
        h.record(5.0);
        h.record(10.0);
        // … just above rolls to the next …
        h.record(1.0001);
        // … below the first bound lands in bucket 0 …
        h.record(0.0);
        h.record(-3.0);
        // … and above the last bound goes to overflow.
        h.record(11.0);
        assert_eq!(h.bucket_counts(), vec![3, 2, 1, 1]);
        assert_eq!(h.count(), 7);
        assert!((h.sum() - (1.0 + 5.0 + 10.0 + 1.0001 + 0.0 - 3.0 + 11.0)).abs() < 1e-9);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[5.0, 1.0]);
    }

    #[test]
    fn help_text_is_first_write_wins_and_snapshotted() {
        let registry = MetricsRegistry::new();
        registry.set_help("fg_requests_total", "Requests by endpoint");
        registry.set_help("fg_requests_total", "A later, different description");
        registry.set_help("fg_sms_sent_total", "Delivered SMS by country");
        let snap = registry.snapshot();
        assert_eq!(
            snap.help_for("fg_requests_total"),
            Some("Requests by endpoint"),
            "first registration wins"
        );
        assert_eq!(
            snap.help,
            vec![
                (
                    "fg_requests_total".to_owned(),
                    "Requests by endpoint".to_owned()
                ),
                (
                    "fg_sms_sent_total".to_owned(),
                    "Delivered SMS by country".to_owned()
                ),
            ],
            "sorted by name"
        );
    }

    #[test]
    fn metric_names_render_with_labels() {
        let n = MetricName::with_labels("fg_sms_sent_total", &[("country", "UZ")]);
        assert_eq!(n.to_string(), "fg_sms_sent_total{country=\"UZ\"}");
        let bare = MetricName::with_labels("fg_requests_total", &[]);
        assert_eq!(bare.to_string(), "fg_requests_total");
    }

    #[test]
    fn name_charset_validation_matches_the_exposition_format() {
        for ok in ["fg_requests_total", "_hidden", "ns:sub:metric", "a9"] {
            assert!(is_valid_metric_name(ok), "{ok}");
        }
        for bad in ["", "9leading", "has-dash", "has space", "utf8_é"] {
            assert!(!is_valid_metric_name(bad), "{bad}");
        }
        for ok in ["endpoint", "_private", "le9"] {
            assert!(is_valid_label_name(ok), "{ok}");
        }
        for bad in ["", "9x", "with:colon", "with-dash"] {
            assert!(!is_valid_label_name(bad), "{bad}");
        }
        // Label values are deliberately unrestricted.
        let n = MetricName::with_labels("fg_requests_total", &[("endpoint", "/booking/hold")]);
        assert_eq!(n.labels[0].1, "/booking/hold");
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    #[cfg(debug_assertions)]
    fn bad_metric_name_is_rejected_at_registration() {
        let _ = MetricName::with_labels("fg-requests-total", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus label name")]
    #[cfg(debug_assertions)]
    fn bad_label_name_is_rejected_at_registration() {
        let _ = MetricName::with_labels("fg_requests_total", &[("end-point", "/search")]);
    }
}
