//! Exporters: a JSON artifact (via `serde_json`) and Prometheus text
//! exposition format. The ASCII table renderer lives in
//! `fg_scenario::report`, which already owns table layout for the rest of
//! the reports.

use crate::audit::AuditSnapshot;
use crate::metrics::{MetricName, MetricsSnapshot};
use crate::profile::StageSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A complete point-in-time export of a [`crate::Telemetry`] instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counters, gauges, histograms.
    pub metrics: MetricsSnapshot,
    /// Per-stage latency statistics.
    pub stages: Vec<StageSnapshot>,
    /// The decision audit trail.
    pub audit: AuditSnapshot,
}

impl TelemetrySnapshot {
    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry snapshots serialize cleanly")
    }

    /// Renders metrics and stage latencies in Prometheus text exposition
    /// format. Stage latencies appear as `summary` metrics in seconds under
    /// `fg_stage_latency_seconds`; the audit trail is JSON-only.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();

        let mut last_type_header = String::new();
        let mut type_header = |out: &mut String, name: &str, kind: &str| {
            if last_type_header != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type_header = name.to_owned();
            }
        };

        for c in &self.metrics.counters {
            let name = sanitize(&c.name.name);
            type_header(&mut out, &name, "counter");
            let _ = writeln!(out, "{}{} {}", name, render_labels(&c.name, &[]), c.value);
        }
        for g in &self.metrics.gauges {
            let name = sanitize(&g.name.name);
            type_header(&mut out, &name, "gauge");
            let _ = writeln!(
                out,
                "{}{} {}",
                name,
                render_labels(&g.name, &[]),
                render_f64(g.value)
            );
        }
        for h in &self.metrics.histograms {
            let name = sanitize(&h.name.name);
            type_header(&mut out, &name, "histogram");
            let mut cumulative = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = match h.bounds.get(i) {
                    Some(b) => render_f64(*b),
                    None => "+Inf".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    name,
                    render_labels(&h.name, &[("le", &le)]),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                name,
                render_labels(&h.name, &[]),
                render_f64(h.sum)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                name,
                render_labels(&h.name, &[]),
                h.count
            );
        }

        if !self.stages.is_empty() {
            let name = "fg_stage_latency_seconds";
            let _ = writeln!(out, "# TYPE {name} summary");
            for s in &self.stages {
                for (q, v_us) in [("0.5", s.p50_us), ("0.95", s.p95_us), ("0.99", s.p99_us)] {
                    let _ = writeln!(
                        out,
                        "{name}{{stage=\"{}\",quantile=\"{q}\"}} {}",
                        escape_label(&s.stage),
                        render_f64(v_us * 1e-6)
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_sum{{stage=\"{}\"}} {}",
                    escape_label(&s.stage),
                    render_f64(s.total_ms * 1e-3)
                );
                let _ = writeln!(
                    out,
                    "{name}_count{{stage=\"{}\"}} {}",
                    escape_label(&s.stage),
                    s.count
                );
            }
        }

        out
    }
}

/// Restricts a metric name to Prometheus' `[a-zA-Z0-9_:]` alphabet.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` combining a metric's own labels with extras
/// (used for histogram `le`). Empty when there are no labels at all.
fn render_labels(name: &MetricName, extra: &[(&str, &str)]) -> String {
    if name.labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts = Vec::with_capacity(name.labels.len() + extra.len());
    for (k, v) in &name.labels {
        parts.push(format!("{}=\"{}\"", sanitize(k), escape_label(v)));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Prometheus-friendly float rendering: integral values keep a trailing
/// `.0`-free form only where unambiguous; non-finite values are spelled out.
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditTrail;
    use crate::metrics::MetricsRegistry;
    use crate::profile::StageProfiler;
    use std::time::Duration;

    fn sample_snapshot() -> TelemetrySnapshot {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("fg_sms_sent_total", &[("country", "UZ")])
            .add(12);
        registry.gauge("fg_ticket_revenue_units").set(1234.5);
        let h = registry.histogram("fg_detection_score", &[0.25, 0.5, 0.75, 1.0]);
        h.record(0.1);
        h.record(0.6);
        h.record(0.97);
        let mut profiler = StageProfiler::new();
        profiler.record_named("policy.decide", Duration::from_micros(20));
        TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: profiler.snapshot(),
            audit: AuditTrail::new(4).snapshot(),
        }
    }

    #[test]
    fn prometheus_renders_counters_gauges_histograms() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE fg_sms_sent_total counter"), "{text}");
        assert!(
            text.contains("fg_sms_sent_total{country=\"UZ\"} 12"),
            "{text}"
        );
        assert!(text.contains("fg_ticket_revenue_units 1234.5"), "{text}");
        assert!(
            text.contains("# TYPE fg_detection_score histogram"),
            "{text}"
        );
        // Buckets are cumulative and end at +Inf.
        assert!(
            text.contains("fg_detection_score_bucket{le=\"0.25\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fg_detection_score_bucket{le=\"0.75\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fg_detection_score_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("fg_detection_score_count 3"), "{text}");
        // Stage latencies render as a summary in seconds.
        assert!(
            text.contains("fg_stage_latency_seconds{stage=\"policy.decide\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("fg_stage_latency_seconds_count{stage=\"policy.decide\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn names_are_sanitized_and_labels_escaped() {
        assert_eq!(sanitize("detect.ip-velocity"), "detect_ip_velocity");
        assert_eq!(escape_label("say \"hi\"\n"), "say \\\"hi\\\"\\n");
    }
}
