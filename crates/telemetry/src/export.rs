//! Exporters: a JSON artifact (via `serde_json`) and Prometheus text
//! exposition format. The ASCII table renderer lives in
//! `fg_scenario::report`, which already owns table layout for the rest of
//! the reports.

use crate::audit::AuditSnapshot;
use crate::metrics::{MetricName, MetricsSnapshot};
use crate::profile::StageSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A complete point-in-time export of a [`crate::Telemetry`] instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counters, gauges, histograms.
    pub metrics: MetricsSnapshot,
    /// Per-stage latency statistics.
    pub stages: Vec<StageSnapshot>,
    /// The decision audit trail.
    pub audit: AuditSnapshot,
}

impl TelemetrySnapshot {
    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry snapshots serialize cleanly")
    }

    /// Folds `other` into `self`, combining per-replicate snapshots from a
    /// multi-seed experiment run into one fleet-wide view.
    ///
    /// Semantics per section:
    ///
    /// - **Counters and gauges** sum by metric identity (name + labels).
    ///   Summing gauges is the useful reading for the gauges this codebase
    ///   exports (tracked-key map sizes): the merged value is the total
    ///   defence state held across all replicates.
    /// - **Histograms** with identical bounds sum bucket-wise (plus `count`
    ///   and `sum`); a histogram whose bounds differ from an already-merged
    ///   namesake is kept as a separate entry rather than silently mangled.
    /// - **Latency histograms** (log-linear) sum bucket-wise; exemplars
    ///   union and re-sort by latency.
    /// - **Stages** combine by name by merging their log-linear histograms
    ///   bucket-wise — *exact*: the merged percentiles are the percentiles
    ///   of the union of the samples (within the layout's
    ///   [`crate::hist::RELATIVE_ERROR`] bucket error), not a count-weighted
    ///   average of per-shard percentiles, which skews badly when shards
    ///   have different tail shapes.
    /// - **Audit** totals (`recorded`, `evicted`, per-decision counts) add;
    ///   retained records concatenate and re-sort by simulation time so the
    ///   merged trail reads chronologically.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        merge_samples(
            &mut self.metrics.counters,
            &other.metrics.counters,
            |c| c.name.clone(),
            |into, from| into.value += from.value,
        );
        merge_samples(
            &mut self.metrics.gauges,
            &other.metrics.gauges,
            |g| g.name.clone(),
            |into, from| into.value += from.value,
        );
        for h in &other.metrics.histograms {
            match self
                .metrics
                .histograms
                .iter_mut()
                .find(|mine| mine.name == h.name && mine.bounds == h.bounds)
            {
                Some(mine) => {
                    for (b, add) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b += add;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                None => self.metrics.histograms.push(h.clone()),
            }
        }
        self.metrics.histograms.sort_by(|a, b| a.name.cmp(&b.name));

        for l in &other.metrics.latencies {
            match self
                .metrics
                .latencies
                .iter_mut()
                .find(|mine| mine.name == l.name)
            {
                Some(mine) => {
                    mine.hist.merge(&l.hist);
                    mine.exemplars.extend(l.exemplars.iter().copied());
                    mine.exemplars.sort_by_key(|e| e.nanos);
                }
                None => self.metrics.latencies.push(l.clone()),
            }
        }
        self.metrics.latencies.sort_by(|a, b| a.name.cmp(&b.name));

        for (name, help) in &other.metrics.help {
            if !self.metrics.help.iter().any(|(n, _)| n == name) {
                self.metrics.help.push((name.clone(), help.clone()));
            }
        }
        self.metrics.help.sort();

        for s in &other.stages {
            match self.stages.iter_mut().find(|mine| mine.stage == s.stage) {
                Some(mine) => {
                    mine.hist.merge(&s.hist);
                    mine.refresh_derived();
                }
                None => self.stages.push(s.clone()),
            }
        }
        self.stages.sort_by(|a, b| a.stage.cmp(&b.stage));

        self.audit.recorded += other.audit.recorded;
        self.audit.evicted += other.audit.evicted;
        for (decision, n) in &other.audit.decision_totals {
            match self
                .audit
                .decision_totals
                .iter_mut()
                .find(|(d, _)| d == decision)
            {
                Some((_, mine)) => *mine += n,
                None => self.audit.decision_totals.push((decision.clone(), *n)),
            }
        }
        self.audit.decision_totals.sort();
        self.audit
            .records
            .extend(other.audit.records.iter().cloned());
        self.audit.records.sort_by_key(|r| r.at);
    }

    /// Merges every snapshot in `snaps` into one (see
    /// [`TelemetrySnapshot::merge`]); `None` when the iterator is empty.
    pub fn merged<I>(snaps: I) -> Option<TelemetrySnapshot>
    where
        I: IntoIterator<Item = TelemetrySnapshot>,
    {
        let mut iter = snaps.into_iter();
        let mut first = iter.next()?;
        for snap in iter {
            first.merge(&snap);
        }
        Some(first)
    }

    /// Renders metrics and stage latencies in Prometheus text exposition
    /// format. Stage latencies appear as `summary` metrics in seconds under
    /// `fg_stage_latency_seconds`; the audit trail is JSON-only.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();

        let mut last_type_header = String::new();
        let mut type_header = |out: &mut String, name: &str, kind: &str| {
            if last_type_header != name {
                if let Some(help) = self.metrics.help_for(name) {
                    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
                }
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type_header = name.to_owned();
            }
        };

        for c in &self.metrics.counters {
            let name = sanitize(&c.name.name);
            type_header(&mut out, &name, "counter");
            let _ = writeln!(out, "{}{} {}", name, render_labels(&c.name, &[]), c.value);
        }
        for g in &self.metrics.gauges {
            let name = sanitize(&g.name.name);
            type_header(&mut out, &name, "gauge");
            let _ = writeln!(
                out,
                "{}{} {}",
                name,
                render_labels(&g.name, &[]),
                render_f64(g.value)
            );
        }
        for h in &self.metrics.histograms {
            let name = sanitize(&h.name.name);
            type_header(&mut out, &name, "histogram");
            let mut cumulative = 0u64;
            for (i, bucket) in h.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = match h.bounds.get(i) {
                    Some(b) => render_f64(*b),
                    None => "+Inf".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    name,
                    render_labels(&h.name, &[("le", &le)]),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                name,
                render_labels(&h.name, &[]),
                render_f64(h.sum)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                name,
                render_labels(&h.name, &[]),
                h.count
            );
        }

        for l in &self.metrics.latencies {
            let name = sanitize(&l.name.name);
            type_header(&mut out, &name, "histogram");
            // Exemplars keyed by the rendered bucket they fall in; when two
            // land in one bucket the slower wins (they arrive sorted).
            let mut exemplar_at: Vec<(usize, crate::hist::Exemplar)> = Vec::new();
            for e in &l.exemplars {
                let idx = crate::hist::bucket_index(e.nanos);
                match exemplar_at.iter_mut().find(|(i, _)| *i == idx) {
                    Some(slot) => slot.1 = *e,
                    None => exemplar_at.push((idx, *e)),
                }
            }
            let mut cumulative = 0u64;
            for &(idx, bucket_count) in &l.hist.buckets {
                cumulative += bucket_count;
                let le = render_f64(crate::hist::bucket_high(idx as usize) as f64 * 1e-9);
                let _ = write!(
                    out,
                    "{}_bucket{} {}",
                    name,
                    render_labels(&l.name, &[("le", &le)]),
                    cumulative
                );
                if let Some((_, e)) = exemplar_at.iter().find(|(i, _)| *i == idx as usize) {
                    // OpenMetrics exemplar: `# {trace_id="…"} value`.
                    let _ = write!(
                        out,
                        " # {{trace_id=\"{:016x}\"}} {}",
                        e.trace_id,
                        render_f64(e.nanos as f64 * 1e-9)
                    );
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                name,
                render_labels(&l.name, &[("le", "+Inf")]),
                l.hist.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                name,
                render_labels(&l.name, &[]),
                render_f64(l.hist.sum as f64 * 1e-9)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                name,
                render_labels(&l.name, &[]),
                l.hist.count
            );
        }

        if !self.stages.is_empty() {
            let name = "fg_stage_latency_seconds";
            if let Some(help) = self.metrics.help_for(name) {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            }
            let _ = writeln!(out, "# TYPE {name} summary");
            for s in &self.stages {
                for (q, v_us) in [("0.5", s.p50_us), ("0.95", s.p95_us), ("0.99", s.p99_us)] {
                    let _ = writeln!(
                        out,
                        "{name}{{stage=\"{}\",quantile=\"{q}\"}} {}",
                        escape_label(&s.stage),
                        render_f64(v_us * 1e-6)
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_sum{{stage=\"{}\"}} {}",
                    escape_label(&s.stage),
                    render_f64(s.total_ms * 1e-3)
                );
                let _ = writeln!(
                    out,
                    "{name}_count{{stage=\"{}\"}} {}",
                    escape_label(&s.stage),
                    s.count
                );
            }
        }

        out
    }
}

/// Folds `from` into `into` by metric identity: matching entries combine via
/// `combine`, novel ones append; the result is re-sorted by identity so
/// merge order never shows in the output.
fn merge_samples<T: Clone>(
    into: &mut Vec<T>,
    from: &[T],
    key: impl Fn(&T) -> MetricName,
    combine: impl Fn(&mut T, &T),
) {
    for sample in from {
        match into.iter_mut().find(|mine| key(mine) == key(sample)) {
            Some(mine) => combine(mine, sample),
            None => into.push(sample.clone()),
        }
    }
    into.sort_by_key(&key);
}

/// Restricts a metric name to Prometheus' `[a-zA-Z0-9_:]` alphabet.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes `# HELP` text per the exposition format (backslash and newline
/// only; quotes are legal in help text).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` combining a metric's own labels with extras
/// (used for histogram `le`). Empty when there are no labels at all.
fn render_labels(name: &MetricName, extra: &[(&str, &str)]) -> String {
    if name.labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts = Vec::with_capacity(name.labels.len() + extra.len());
    for (k, v) in &name.labels {
        parts.push(format!("{}=\"{}\"", sanitize(k), escape_label(v)));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Prometheus-friendly float rendering: integral values keep a trailing
/// `.0`-free form only where unambiguous; non-finite values are spelled out.
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditTrail;
    use crate::metrics::MetricsRegistry;
    use crate::profile::StageProfiler;
    use std::time::Duration;

    fn sample_snapshot() -> TelemetrySnapshot {
        let registry = MetricsRegistry::new();
        registry.set_help("fg_sms_sent_total", "Delivered SMS by country");
        registry
            .counter_with("fg_sms_sent_total", &[("country", "UZ")])
            .add(12);
        registry.gauge("fg_ticket_revenue_units").set(1234.5);
        let h = registry.histogram("fg_detection_score", &[0.25, 0.5, 0.75, 1.0]);
        h.record(0.1);
        h.record(0.6);
        h.record(0.97);
        let mut profiler = StageProfiler::new();
        profiler.record_named("policy.decide", Duration::from_micros(20));
        TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: profiler.snapshot(),
            audit: AuditTrail::new(4).snapshot(),
        }
    }

    #[test]
    fn prometheus_renders_counters_gauges_histograms() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE fg_sms_sent_total counter"), "{text}");
        assert!(
            text.contains("fg_sms_sent_total{country=\"UZ\"} 12"),
            "{text}"
        );
        assert!(text.contains("fg_ticket_revenue_units 1234.5"), "{text}");
        assert!(
            text.contains("# TYPE fg_detection_score histogram"),
            "{text}"
        );
        // Buckets are cumulative and end at +Inf.
        assert!(
            text.contains("fg_detection_score_bucket{le=\"0.25\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fg_detection_score_bucket{le=\"0.75\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fg_detection_score_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("fg_detection_score_count 3"), "{text}");
        // Stage latencies render as a summary in seconds.
        assert!(
            text.contains("fg_stage_latency_seconds{stage=\"policy.decide\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("fg_stage_latency_seconds_count{stage=\"policy.decide\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_emits_help_before_type() {
        let text = sample_snapshot().to_prometheus();
        let help_at = text
            .find("# HELP fg_sms_sent_total Delivered SMS by country")
            .expect("HELP line present");
        let type_at = text
            .find("# TYPE fg_sms_sent_total counter")
            .expect("TYPE line present");
        assert!(help_at < type_at, "HELP precedes TYPE:\n{text}");
        // Metrics without registered help simply have no HELP line.
        assert!(!text.contains("# HELP fg_ticket_revenue_units"), "{text}");
    }

    #[test]
    fn help_text_is_escaped() {
        let registry = MetricsRegistry::new();
        registry.set_help("fg_x_total", "line one\nback\\slash");
        registry.counter("fg_x_total").inc();
        let snap = TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: Vec::new(),
            audit: AuditTrail::new(4).snapshot(),
        };
        assert!(snap
            .to_prometheus()
            .contains("# HELP fg_x_total line one\\nback\\\\slash"));
    }

    #[test]
    fn merge_unions_help_first_wins() {
        let registry = MetricsRegistry::new();
        registry.set_help("fg_a_total", "mine");
        let mut a = TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: Vec::new(),
            audit: AuditTrail::new(4).snapshot(),
        };
        let registry = MetricsRegistry::new();
        registry.set_help("fg_a_total", "theirs");
        registry.set_help("fg_b_total", "only theirs");
        let b = TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: Vec::new(),
            audit: AuditTrail::new(4).snapshot(),
        };
        a.merge(&b);
        assert_eq!(a.metrics.help_for("fg_a_total"), Some("mine"));
        assert_eq!(a.metrics.help_for("fg_b_total"), Some("only theirs"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_metrics_and_combines_stages() {
        let mut a = sample_snapshot();
        let b = sample_snapshot();
        a.merge(&b);
        assert_eq!(
            a.metrics
                .counter_value("fg_sms_sent_total", &[("country", "UZ")]),
            Some(24)
        );
        assert_eq!(
            a.metrics.gauge_value("fg_ticket_revenue_units", &[]),
            Some(2469.0)
        );
        let h = &a.metrics.histograms[0];
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets.iter().sum::<u64>(), 6);
        assert!((h.sum - 2.0 * (0.1 + 0.6 + 0.97)).abs() < 1e-9);
        let s = &a.stages[0];
        assert_eq!(s.stage, "policy.decide");
        assert_eq!(s.count, 2);
        assert!((s.mean_us - 20.0).abs() < 1e-9);
        assert!((s.max_us - 20.0).abs() < 1e-9);
    }

    #[test]
    fn merge_keeps_disjoint_entries_and_sorts() {
        let registry = MetricsRegistry::new();
        registry.counter("zz_total").add(1);
        let mut a = TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: Vec::new(),
            audit: AuditTrail::new(4).snapshot(),
        };
        let registry = MetricsRegistry::new();
        registry.counter("aa_total").add(2);
        let b = TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: Vec::new(),
            audit: AuditTrail::new(4).snapshot(),
        };
        a.merge(&b);
        let names: Vec<&str> = a
            .metrics
            .counters
            .iter()
            .map(|c| c.name.name.as_str())
            .collect();
        assert_eq!(names, ["aa_total", "zz_total"], "re-sorted by identity");
    }

    /// The regression the merge rewrite exists for: two shards with very
    /// different tail shapes. Count-weighted averaging of per-shard p99s
    /// reported ~½ the true fleet p99; bucket-wise histogram merge reports
    /// the p99 of the union.
    #[test]
    fn two_skewed_shards_merge_to_the_true_p99() {
        // Shard A: 99 fast samples (1 µs). Shard B: 99 slow ones (10 ms).
        let mut fast = StageProfiler::new();
        let mut slow = StageProfiler::new();
        for _ in 0..99 {
            fast.record_named("policy.decide", Duration::from_micros(1));
            slow.record_named("policy.decide", Duration::from_millis(10));
        }
        let empty = || TelemetrySnapshot {
            metrics: MetricsRegistry::new().snapshot(),
            stages: Vec::new(),
            audit: AuditTrail::new(4).snapshot(),
        };
        let mut a = empty();
        a.stages = fast.snapshot();
        let mut b = empty();
        b.stages = slow.snapshot();

        // The old count-weighted average would have said:
        let averaged = (a.stages[0].p99_us * 99.0 + b.stages[0].p99_us * 99.0) / 198.0;

        a.merge(&b);
        let merged_p99 = a.stages[0].p99_us;
        // True union: 198 samples, rank ceil(0.99·198)=197 → a 10 ms sample.
        let exact_us = 10_000.0;
        assert!(
            (merged_p99 - exact_us).abs() <= exact_us * crate::hist::RELATIVE_ERROR,
            "merged p99 {merged_p99} µs should be ~{exact_us} µs"
        );
        assert!(
            averaged < exact_us * 0.6,
            "the old averaging really was wrong ({averaged} µs)"
        );
        assert_eq!(a.stages[0].count, 198);
    }

    #[test]
    fn latency_histograms_render_natively_with_exemplars() {
        let registry = MetricsRegistry::new();
        registry.set_help("fg_http_request_duration_seconds", "Request latency");
        let l = registry.latency_with(
            "fg_http_request_duration_seconds",
            &[("endpoint", "/v1/decide")],
        );
        l.record(Duration::from_micros(80));
        l.record_with_exemplar(Duration::from_millis(25), 0xDEAD_BEEF);
        let snap = TelemetrySnapshot {
            metrics: registry.snapshot(),
            stages: Vec::new(),
            audit: AuditTrail::new(4).snapshot(),
        };
        let text = snap.to_prometheus();
        assert!(
            text.contains("# TYPE fg_http_request_duration_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains(
                "fg_http_request_duration_seconds_bucket{endpoint=\"/v1/decide\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("# {trace_id=\"00000000deadbeef\"}"),
            "exemplar rendered: {text}"
        );
        assert!(
            text.contains("fg_http_request_duration_seconds_count{endpoint=\"/v1/decide\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn latency_series_merge_bucket_wise_with_exemplar_union() {
        let mk = |nanos: u64, id: u64| {
            let registry = MetricsRegistry::new();
            let l = registry.latency("fg_http_request_duration_seconds");
            l.record_with_exemplar(Duration::from_nanos(nanos), id);
            TelemetrySnapshot {
                metrics: registry.snapshot(),
                stages: Vec::new(),
                audit: AuditTrail::new(4).snapshot(),
            }
        };
        let mut a = mk(50_000, 0xA);
        let b = mk(40_000_000, 0xB);
        a.merge(&b);
        let merged = &a.metrics.latencies[0];
        assert_eq!(merged.hist.count, 2);
        assert_eq!(merged.exemplars.len(), 2);
        assert_eq!(merged.exemplars[0].trace_id, 0xA);
        assert_eq!(merged.exemplars[1].trace_id, 0xB);
    }

    #[test]
    fn merged_folds_an_iterator_of_snapshots() {
        assert_eq!(TelemetrySnapshot::merged(std::iter::empty()), None);
        let out =
            TelemetrySnapshot::merged([sample_snapshot(), sample_snapshot(), sample_snapshot()])
                .unwrap();
        assert_eq!(
            out.metrics
                .counter_value("fg_sms_sent_total", &[("country", "UZ")]),
            Some(36)
        );
    }

    #[test]
    fn names_are_sanitized_and_labels_escaped() {
        assert_eq!(sanitize("detect.ip-velocity"), "detect_ip_velocity");
        assert_eq!(escape_label("say \"hi\"\n"), "say \\\"hi\\\"\\n");
    }
}
