//! The decision audit trail: a bounded ring buffer answering, after a run,
//! *why* any given request was allowed, challenged, rate-limited, diverted,
//! or blocked.
//!
//! Each [`AuditRecord`] captures the request's identifiers, every detection
//! signal that fired (with its weight), and the policy engine's
//! machine-readable reason chain. The ring keeps the most recent
//! `capacity` records; per-decision totals survive eviction so aggregate
//! queries stay exact even when individual records have rotated out.

use fg_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// One detection signal's contribution to a request's verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SignalScore {
    /// Signal label, e.g. `trap-hit` or `ip-velocity(132)`.
    pub signal: String,
    /// The signal's weight toward the combined score.
    pub weight: f64,
}

/// One request's pass through the defended application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Simulation time of the request.
    pub at: SimTime,
    /// Endpoint path, e.g. `/booking/hold`.
    pub endpoint: String,
    /// Client identifier.
    pub client: u64,
    /// Fingerprint identity hash.
    pub fingerprint: u64,
    /// Source IP in dotted form.
    pub ip: String,
    /// Combined detection score.
    pub score: f64,
    /// Every signal that fired, with its weight.
    pub signals: Vec<SignalScore>,
    /// Final decision label, e.g. `allow`, `challenge`, `honeypot`, `block`.
    pub decision: String,
    /// Machine-readable reason chain: each policy stage consulted, in
    /// order, ending with the stage that fired (if any).
    pub reasons: Vec<String>,
    /// The request's span-trace id (`fg_core::hash::trace_id` of the
    /// session and request sequence); `0` when no trace was assigned.
    /// Stamped even when tracing is off, so audit records correlate with
    /// traces from any run that enabled them.
    pub trace_id: u64,
}

impl AuditRecord {
    /// The heaviest signal — "which signal triggered it" for a non-Allow
    /// decision. `None` when the request fired no signals.
    pub fn triggering_signal(&self) -> Option<&SignalScore> {
        self.signals
            .iter()
            .max_by(|a, b| a.weight.total_cmp(&b.weight))
    }
}

/// Bounded ring buffer of [`AuditRecord`]s plus eviction-proof totals.
#[derive(Clone, Debug)]
pub struct AuditTrail {
    capacity: usize,
    ring: VecDeque<AuditRecord>,
    recorded: u64,
    evicted: u64,
    decision_totals: BTreeMap<String, u64>,
}

impl AuditTrail {
    /// Creates a trail retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "audit trail capacity must be positive");
        AuditTrail {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(1024)),
            recorded: 0,
            evicted: 0,
            decision_totals: BTreeMap::new(),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: AuditRecord) {
        *self
            .decision_totals
            .entry(record.decision.clone())
            .or_insert(0) += 1;
        self.recorded += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(record);
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever pushed (evicted ones included).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records dropped to honour the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &AuditRecord> {
        self.ring.iter()
    }

    /// Retained records with the given decision label, oldest first — e.g.
    /// `with_decision("honeypot")` lists every honeypot routing still in
    /// the ring.
    pub fn with_decision<'a>(
        &'a self,
        decision: &'a str,
    ) -> impl Iterator<Item = &'a AuditRecord> + 'a {
        self.ring.iter().filter(move |r| r.decision == decision)
    }

    /// Retained records whose decision was anything but `allow`.
    pub fn non_allow(&self) -> impl Iterator<Item = &AuditRecord> {
        self.ring.iter().filter(|r| r.decision != "allow")
    }

    /// Eviction-proof total for one decision label.
    pub fn decision_total(&self, decision: &str) -> u64 {
        self.decision_totals.get(decision).copied().unwrap_or(0)
    }

    /// Eviction-proof totals for every decision label seen.
    pub fn decision_totals(&self) -> &BTreeMap<String, u64> {
        &self.decision_totals
    }

    /// Captures the trail for export.
    pub fn snapshot(&self) -> AuditSnapshot {
        AuditSnapshot {
            recorded: self.recorded,
            evicted: self.evicted,
            decision_totals: self
                .decision_totals
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            records: self.ring.iter().cloned().collect(),
        }
    }
}

/// A point-in-time export of the audit trail.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditSnapshot {
    /// Total records ever pushed.
    pub recorded: u64,
    /// Records evicted by the capacity bound.
    pub evicted: u64,
    /// Per-decision totals (eviction-proof), sorted by label.
    pub decision_totals: Vec<(String, u64)>,
    /// Retained records, oldest first.
    pub records: Vec<AuditRecord>,
}

impl AuditSnapshot {
    /// Eviction-proof total for one decision label.
    pub fn decision_total(&self, decision: &str) -> u64 {
        self.decision_totals
            .iter()
            .find(|(k, _)| k == decision)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at_ms: u64, decision: &str) -> AuditRecord {
        AuditRecord {
            at: SimTime::from_millis(at_ms),
            endpoint: "/booking/hold".to_owned(),
            client: 1,
            fingerprint: 42,
            ip: "10.0.0.1".to_owned(),
            score: 0.9,
            signals: vec![
                SignalScore {
                    signal: "ip-reputation".to_owned(),
                    weight: 0.8,
                },
                SignalScore {
                    signal: "trap-hit".to_owned(),
                    weight: 0.9,
                },
            ],
            decision: decision.to_owned(),
            reasons: vec!["score-block:triggered".to_owned()],
            trace_id: fg_core::hash::trace_id(1, at_ms),
        }
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut trail = AuditTrail::new(3);
        for t in 0..5 {
            trail.push(record(t, "block"));
        }
        assert_eq!(trail.len(), 3);
        assert_eq!(trail.evicted(), 2);
        assert_eq!(trail.recorded(), 5);
        let times: Vec<u64> = trail.records().map(|r| r.at.as_millis()).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest evicted, order preserved");
    }

    #[test]
    fn totals_survive_eviction() {
        let mut trail = AuditTrail::new(2);
        trail.push(record(0, "block"));
        trail.push(record(1, "allow"));
        trail.push(record(2, "block"));
        trail.push(record(3, "block"));
        assert_eq!(trail.decision_total("block"), 3);
        assert_eq!(trail.decision_total("allow"), 1);
        assert_eq!(trail.decision_total("challenge"), 0);
        // The ring itself only retains the last two.
        assert_eq!(trail.with_decision("block").count(), 2);
    }

    #[test]
    fn triggering_signal_is_the_heaviest() {
        let r = record(0, "honeypot");
        assert_eq!(r.triggering_signal().unwrap().signal, "trap-hit");
    }

    #[test]
    fn non_allow_filters_allows_out() {
        let mut trail = AuditTrail::new(8);
        trail.push(record(0, "allow"));
        trail.push(record(1, "honeypot"));
        trail.push(record(2, "allow"));
        let non_allow: Vec<&str> = trail.non_allow().map(|r| r.decision.as_str()).collect();
        assert_eq!(non_allow, vec!["honeypot"]);
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = record(7, "challenge");
        let json = serde_json::to_string(&r).unwrap();
        let back: AuditRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn snapshot_reports_totals_and_records() {
        let mut trail = AuditTrail::new(2);
        trail.push(record(0, "block"));
        trail.push(record(1, "block"));
        trail.push(record(2, "allow"));
        let snap = trail.snapshot();
        assert_eq!(snap.recorded, 3);
        assert_eq!(snap.evicted, 1);
        assert_eq!(snap.decision_total("block"), 2);
        assert_eq!(snap.records.len(), 2);
    }
}
