//! Bounded-memory, mergeable log-linear latency histograms.
//!
//! The workspace's one latency type. HDR-style layout: every power-of-two
//! range ("octave") of nanoseconds is split into [`SUB_BUCKETS`] equal-width
//! linear sub-buckets, so bucket width never exceeds `value / SUB_BUCKETS`
//! and a quantile reported at the bucket midpoint is within
//! [`RELATIVE_ERROR`] (= 1/64 ≈ 1.6%) of the exact nearest-rank sample.
//! Memory is a fixed [`BUCKET_COUNT`]-slot table (~15 KiB of `u64`s) no
//! matter how many samples are recorded — unlike the retained-sample
//! `Summary` the stage profiler used before, which grew without bound in a
//! long-running server.
//!
//! Three faces of the same layout:
//!
//! - [`Hist`] — plain dense counts, for single-writer contexts (the stage
//!   profiler behind its mutex). `Clone`, cheap to merge.
//! - [`AtomicHist`] — lock-free recording for the serve hot path: one
//!   relaxed fetch-add per sample, plus bounded per-octave *exemplar* slots
//!   pairing a bucket with the trace id of a request that landed in it.
//! - [`HistSnapshot`] — the compact serde form (sparse `(index, count)`
//!   pairs); merging is exact bucket-wise addition, so a merged snapshot is
//!   indistinguishable from one that recorded the union of the samples.
//!
//! Nothing here reads a clock: callers supply durations, so the type is
//! safe to embed in deterministic simulation crates.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// log2 of the number of linear sub-buckets per power-of-two octave.
pub const SUB_BUCKET_BITS: u32 = 5;
/// Linear sub-buckets per octave (32).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Total bucket table size covering the full `u64` nanosecond range.
pub const BUCKET_COUNT: usize = SUB_BUCKETS * (64 - SUB_BUCKET_BITS as usize + 1);
/// Guaranteed bound on `|reported − exact| / exact` for quantile queries:
/// bucket width is at most `value / 32` and values are reported at the
/// bucket midpoint, so the error is at most half a width — 1/64.
pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

/// Maps a nanosecond value to its bucket index.
///
/// Values below [`SUB_BUCKETS`] get width-1 buckets (exact); above that,
/// octave `e` (top bit position) is split into 32 sub-buckets of width
/// `2^(e-5)`.
#[inline]
pub fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros();
    let shift = exp - SUB_BUCKET_BITS;
    // (nanos >> shift) is in [32, 64); group g = exp - SUB_BUCKET_BITS
    // starts at index 32 * g.
    ((shift as usize) << SUB_BUCKET_BITS) + (nanos >> shift) as usize
}

/// Inclusive lower edge of bucket `index`.
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    let group = index >> SUB_BUCKET_BITS;
    if group == 0 {
        return index as u64;
    }
    let sub = (index & (SUB_BUCKETS - 1)) as u64;
    (SUB_BUCKETS as u64 + sub) << (group - 1)
}

/// Exclusive upper edge of bucket `index` (saturating at `u64::MAX`).
#[inline]
pub fn bucket_high(index: usize) -> u64 {
    let group = index >> SUB_BUCKET_BITS;
    let width = if group == 0 { 1 } else { 1u64 << (group - 1) };
    bucket_low(index).saturating_add(width)
}

/// Midpoint representative of bucket `index` — what quantile queries report.
#[inline]
pub fn bucket_mid(index: usize) -> u64 {
    let group = index >> SUB_BUCKET_BITS;
    let half = if group == 0 {
        0
    } else {
        1u64 << (group - 1) >> 1
    };
    bucket_low(index) + half
}

/// A plain (non-atomic) log-linear histogram for single-writer contexts.
#[derive(Clone)]
pub struct Hist {
    counts: Box<[u64; BUCKET_COUNT]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish()
    }
}

impl Hist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Hist {
            counts: Box::new([0; BUCKET_COUNT]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one nanosecond sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.max = self.max.max(nanos);
    }

    /// Records one duration sample (saturating at `u64::MAX` nanoseconds).
    pub fn record_duration(&mut self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total of all recorded nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, exact (not bucketed).
    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// Nearest-rank quantile in nanoseconds, reported at the bucket
    /// midpoint — within [`RELATIVE_ERROR`] of the exact sample. `q` is in
    /// `[0, 1]`; returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_dense(&*self.counts, self.count, self.max, q)
    }

    /// Folds `other` in bucket-wise; exact (the result is as if `self` had
    /// recorded every sample of both).
    pub fn merge(&mut self, other: &Hist) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The compact, mergeable serde form.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            sub_bucket_bits: SUB_BUCKET_BITS,
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }
}

/// Nearest-rank walk over a dense bucket table.
fn quantile_dense(counts: &[u64], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = nearest_rank(count, q);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // The top bucket's midpoint can overshoot the true maximum;
            // clamp so quantiles never exceed the (exact) max.
            return bucket_mid(i).min(max);
        }
    }
    max
}

/// 1-based nearest rank for quantile `q` of `count` samples.
fn nearest_rank(count: u64, q: f64) -> u64 {
    let q = q.clamp(0.0, 1.0);
    ((q * count as f64).ceil() as u64).clamp(1, count)
}

/// Compact serde form of a histogram: sparse `(bucket index, count)` pairs.
///
/// Merging two snapshots is exact bucket-wise addition — the merged
/// snapshot equals one built by recording the union of the samples, so
/// fleet-wide p99 from per-shard snapshots carries no averaging error
/// (only the layout's own ≤ [`RELATIVE_ERROR`] bucket error).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Layout version: log2 sub-buckets per octave ([`SUB_BUCKET_BITS`]).
    pub sub_bucket_bits: u32,
    /// Sparse non-zero buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Samples recorded.
    pub count: u64,
    /// Total nanoseconds recorded.
    pub sum: u64,
    /// Largest recorded sample, exact.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// An empty snapshot in the current layout.
    pub fn empty() -> Self {
        HistSnapshot {
            sub_bucket_bits: SUB_BUCKET_BITS,
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank quantile in nanoseconds (bucket midpoint, clamped to
    /// the exact max); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = nearest_rank(self.count, q);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_mid(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Quantile in microseconds, the stage-snapshot unit.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile(q) as f64 * 1e-3
    }

    /// Quantile in seconds, the exposition unit.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile(q) as f64 * 1e-9
    }

    /// Exact bucket-wise merge. Snapshots from a different layout version
    /// (`sub_bucket_bits` mismatch) cannot be combined bucket-wise and are
    /// folded into count/sum/max only — counts stay truthful, quantiles
    /// reflect `self`'s buckets.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.sub_bucket_bits == other.sub_bucket_bits {
            let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
            let (mut a, mut b) = (
                self.buckets.iter().peekable(),
                other.buckets.iter().peekable(),
            );
            loop {
                match (a.peek(), b.peek()) {
                    (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                        if ia == ib {
                            merged.push((ia, ca + cb));
                            a.next();
                            b.next();
                        } else if ia < ib {
                            merged.push((ia, ca));
                            a.next();
                        } else {
                            merged.push((ib, cb));
                            b.next();
                        }
                    }
                    (Some(&&e), None) => {
                        merged.push(e);
                        a.next();
                    }
                    (None, Some(&&e)) => {
                        merged.push(e);
                        b.next();
                    }
                    (None, None) => break,
                }
            }
            self.buckets = merged;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Number of exemplar slots on an [`AtomicHist`] — one per latency decade
/// band, coarse on purpose: exemplars are navigation aids, not samples.
const EXEMPLAR_SLOTS: usize = 8;

/// One exemplar: a trace id pinned to the latency bucket its request
/// landed in, linking a histogram bucket on `/metrics` to a retrievable
/// trace in `/debug/traces`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// The observed latency, nanoseconds.
    pub nanos: u64,
    /// The decision trace id (`fg_core::hash::trace_id` domain, never 0).
    pub trace_id: u64,
}

/// Lock-free log-linear histogram for concurrent writers (the serve worker
/// loop): recording is one relaxed `fetch_add` per sample plus three for
/// the aggregates. Exemplars take a short mutex, but only interesting
/// requests (slow / non-allow / 5xx) offer one.
pub struct AtomicHist {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    exemplars: Mutex<[Option<Exemplar>; EXEMPLAR_SLOTS]>,
}

impl Default for AtomicHist {
    fn default() -> Self {
        AtomicHist::new()
    }
}

impl std::fmt::Debug for AtomicHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHist")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl AtomicHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        AtomicHist {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplars: Mutex::new([None; EXEMPLAR_SLOTS]),
        }
    }

    /// Records one nanosecond sample. Lock-free.
    pub fn record(&self, nanos: u64) {
        self.counts[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records one duration sample.
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a sample *and* offers its trace id as an exemplar for the
    /// latency band it fell in. Each of the eight octave bands keeps the
    /// latest exemplar, so `/metrics` always links somewhere recent.
    pub fn record_with_exemplar(&self, nanos: u64, trace_id: u64) {
        self.record(nanos);
        if trace_id == 0 {
            return;
        }
        let slot = exemplar_slot(nanos);
        if let Ok(mut slots) = self.exemplars.lock() {
            slots[slot] = Some(Exemplar { nanos, trace_id });
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time compact form plus the current exemplar set (ascending
    /// by latency).
    pub fn snapshot(&self) -> (HistSnapshot, Vec<Exemplar>) {
        let snap = HistSnapshot {
            sub_bucket_bits: SUB_BUCKET_BITS,
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((i as u32, c))
                })
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        };
        let mut exemplars: Vec<Exemplar> = self
            .exemplars
            .lock()
            .map(|slots| slots.iter().flatten().copied().collect())
            .unwrap_or_default();
        exemplars.sort_by_key(|e| e.nanos);
        (snap, exemplars)
    }
}

/// Coarse exemplar banding: one slot per ~decade above 100 µs, so slow
/// requests never evict each other's exemplars with fast ones.
fn exemplar_slot(nanos: u64) -> usize {
    // Bands: <100µs, <1ms, <10ms, <100ms, <1s, <10s, <100s, rest.
    let mut bound = 100_000u64;
    for slot in 0..EXEMPLAR_SLOTS - 1 {
        if nanos < bound {
            return slot;
        }
        bound = bound.saturating_mul(10);
    }
    EXEMPLAR_SLOTS - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact nearest-rank quantile over raw samples, the oracle the
    /// histogram is measured against.
    fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
        assert!(!sorted.is_empty());
        let rank = nearest_rank(sorted.len() as u64, q) as usize;
        sorted[rank - 1]
    }

    #[test]
    fn bucket_index_edges_are_consistent() {
        for i in 0..BUCKET_COUNT {
            let lo = bucket_low(i);
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            let hi = bucket_high(i);
            if hi > lo && hi < u64::MAX {
                assert_eq!(bucket_index(hi - 1), i, "last value of bucket {i}");
                assert_eq!(bucket_index(hi), i + 1, "first value past bucket {i}");
            }
            let mid = bucket_mid(i);
            assert!(
                lo <= mid && mid < hi.max(lo + 1),
                "midpoint inside bucket {i}"
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_nanos(), 37);
    }

    #[test]
    fn quantiles_clamp_to_exact_max() {
        let mut h = Hist::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.5), 1_000_003);
        assert_eq!(h.quantile(1.0), 1_000_003);
    }

    #[test]
    fn snapshot_round_trips_and_merges_like_dense() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut union = Hist::new();
        for v in [3u64, 99, 1_000, 123_456, 88] {
            a.record(v);
            union.record(v);
        }
        for v in [7u64, 99, 5_000_000, 2] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
        let json = serde_json::to_string(&merged).unwrap();
        let back: HistSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn atomic_hist_matches_plain_hist() {
        let atomic = AtomicHist::new();
        let mut plain = Hist::new();
        for v in [0u64, 17, 300, 40_000, 7_777_777] {
            atomic.record(v);
            plain.record(v);
        }
        let (snap, exemplars) = atomic.snapshot();
        assert_eq!(snap, plain.snapshot());
        assert!(exemplars.is_empty(), "no exemplars were offered");
    }

    #[test]
    fn exemplars_band_by_latency_and_keep_latest() {
        let h = AtomicHist::new();
        h.record_with_exemplar(50_000, 0xA); // <100µs band
        h.record_with_exemplar(60_000, 0xB); // same band: evicts 0xA
        h.record_with_exemplar(20_000_000, 0xC); // 10–100ms band
        h.record_with_exemplar(3_000, 0); // id 0 = no trace: ignored
        let (snap, exemplars) = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(
            exemplars,
            vec![
                Exemplar {
                    nanos: 60_000,
                    trace_id: 0xB
                },
                Exemplar {
                    nanos: 20_000_000,
                    trace_id: 0xC
                },
            ]
        );
    }

    proptest! {
        /// Every reported quantile is within the documented relative error
        /// of the exact nearest-rank sample.
        #[test]
        fn quantiles_stay_within_documented_relative_error(
            samples in proptest::collection::vec(0u64..10_000_000_000, 1..400),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            let mut h = Hist::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in qs {
                let exact = exact_nearest_rank(&sorted, q);
                let reported = h.quantile(q);
                let bound = (exact as f64 * RELATIVE_ERROR).max(0.5);
                let err = (reported as f64 - exact as f64).abs();
                prop_assert!(
                    err <= bound,
                    "q={q}: reported {reported} vs exact {exact} (err {err} > bound {bound})"
                );
            }
        }

        /// merge(a, b) is indistinguishable from recording the union.
        #[test]
        fn merge_equals_recording_the_union(
            xs in proptest::collection::vec(0u64..10_000_000_000, 0..200),
            ys in proptest::collection::vec(0u64..10_000_000_000, 0..200),
        ) {
            let mut a = Hist::new();
            let mut b = Hist::new();
            let mut union = Hist::new();
            for &x in &xs {
                a.record(x);
                union.record(x);
            }
            for &y in &ys {
                b.record(y);
                union.record(y);
            }
            a.merge(&b);
            prop_assert_eq!(a.snapshot(), union.snapshot());
            let mut sa = Hist::new();
            for &x in &xs { sa.record(x); }
            let mut snap = sa.snapshot();
            snap.merge(&b.snapshot());
            prop_assert_eq!(snap, union.snapshot());
        }
    }
}
