//! **fg-telemetry** — metrics, decision audit trail, and pipeline profiling
//! for the defence stack.
//!
//! The paper's case studies (§IV) repeatedly hinge on *post-hoc
//! explainability*: the airline's security team reasons about which signal
//! caught which identity, and the defender's economics depend on knowing
//! where requests were stopped. This crate gives the simulated defence the
//! same observability a production stack would have, in three layers:
//!
//! 1. **Metrics** ([`metrics`]) — pre-registered counters, gauges and
//!    fixed-bucket histograms whose hot-path cost is a single relaxed
//!    atomic write.
//! 2. **Audit trail** ([`audit`]) — a bounded ring buffer recording, for
//!    every request through the defended app, the detection signals that
//!    fired and the policy engine's machine-readable reason chain, so a
//!    run can be queried after the fact ("show me every honeypot routing
//!    and which signal triggered it").
//! 3. **Profiling** ([`profile`]) — wall-clock timers around each
//!    detection signal and mitigation stage, aggregated into exact
//!    p50/p95/p99 via `fg_core::stats::Summary`.
//! 4. **Tracing** ([`trace`]) — deterministic, sim-time causal spans over
//!    the decision path (fg-trace), with head+tail sampling and Chrome
//!    trace-event / JSONL exporters. Off by default; when off, the only
//!    hot-path cost is one relaxed atomic load.
//!
//! [`export::TelemetrySnapshot`] serialises all three as a JSON artifact or
//! Prometheus text exposition; `fg_scenario::report` renders the ASCII
//! tables.
//!
//! # Example
//!
//! ```
//! use fg_telemetry::Telemetry;
//! use std::time::Duration;
//!
//! let telemetry = Telemetry::shared();
//! let requests = telemetry.metrics().counter("fg_requests_total");
//! requests.inc(); // hot path: one atomic add
//! telemetry.record_stage("policy.decide", Duration::from_micros(12));
//!
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.metrics.counter_value("fg_requests_total", &[]), Some(1));
//! assert!(snapshot.to_prometheus().contains("fg_requests_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use audit::{AuditRecord, AuditSnapshot, AuditTrail, SignalScore};
pub use export::TelemetrySnapshot;
pub use hist::{AtomicHist, Exemplar, Hist, HistSnapshot};
pub use metrics::{Counter, Gauge, Histogram, MetricName, MetricsRegistry, MetricsSnapshot};
pub use profile::{StageProfiler, StageSnapshot};
pub use trace::{RequestTrace, SpanRecord, TraceConfig, TraceSnapshot, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default audit-trail capacity: generous enough that a two-week case-study
/// run keeps every decision, bounded so memory stays predictable.
pub const DEFAULT_AUDIT_CAPACITY: usize = 65_536;

/// The facade instrumented components share (typically as
/// `Arc<Telemetry>`): a metrics registry, the audit trail, and the stage
/// profiler.
#[derive(Debug)]
pub struct Telemetry {
    metrics: MetricsRegistry,
    audit: Mutex<AuditTrail>,
    profiler: Mutex<StageProfiler>,
    tracer: Mutex<Tracer>,
    /// Mirrors `tracer.is_enabled()` so the tracing-off hot path pays one
    /// relaxed load instead of a mutex acquisition.
    tracing: AtomicBool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::with_audit_capacity(DEFAULT_AUDIT_CAPACITY)
    }
}

impl Telemetry {
    /// Creates a telemetry hub with the default audit capacity.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Creates a telemetry hub retaining at most `capacity` audit records.
    pub fn with_audit_capacity(capacity: usize) -> Self {
        let metrics = MetricsRegistry::new();
        metrics.set_help(
            "fg_stage_latency_seconds",
            "Wall-clock latency of instrumented pipeline stages",
        );
        Telemetry {
            metrics,
            audit: Mutex::new(AuditTrail::new(capacity)),
            profiler: Mutex::new(StageProfiler::new()),
            tracer: Mutex::new(Tracer::new()),
            tracing: AtomicBool::new(false),
        }
    }

    /// Convenience constructor for the common `Arc`-shared form.
    pub fn shared() -> Arc<Telemetry> {
        Arc::new(Telemetry::new())
    }

    /// The metrics registry (register handles once, increment lock-free).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Locks and returns the audit trail for querying.
    pub fn audit(&self) -> MutexGuard<'_, AuditTrail> {
        self.audit.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one record to the audit trail.
    pub fn record_audit(&self, record: AuditRecord) {
        self.audit().push(record);
    }

    /// Locks and returns the stage profiler.
    pub fn profiler(&self) -> MutexGuard<'_, StageProfiler> {
        self.profiler.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one latency sample against a named stage.
    pub fn record_stage(&self, stage: &str, elapsed: Duration) {
        self.profiler().record_named(stage, elapsed);
    }

    /// Turns span tracing on with the given config. Until called, tracing
    /// is off and [`Telemetry::tracing_enabled`] is a single relaxed load.
    pub fn enable_tracing(&self, config: TraceConfig) {
        self.tracer().enable(config);
        self.tracing.store(true, Ordering::Relaxed);
    }

    /// Whether span tracing is on — the cheap hot-path check callers make
    /// before building a [`RequestTrace`].
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Locks and returns the span tracer.
    pub fn tracer(&self) -> MutexGuard<'_, Tracer> {
        self.tracer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submits a finished request trace to the tracer's sampler. A no-op
    /// when tracing is off.
    pub fn record_trace(&self, trace: RequestTrace) {
        if self.tracing_enabled() {
            self.tracer().submit(trace);
        }
    }

    /// Exports every retained span with the sampling accounting.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer().snapshot()
    }

    /// Starts a timer that records into `stage` when dropped.
    pub fn time(&self, stage: &'static str) -> StageTimer<'_> {
        StageTimer {
            telemetry: self,
            stage,
            start: Instant::now(),
        }
    }

    /// Captures metrics, stage latencies, and the audit trail at once.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: self.metrics.snapshot(),
            stages: self.profiler().snapshot(),
            audit: self.audit().snapshot(),
        }
    }
}

/// RAII stage timer returned by [`Telemetry::time`]; records the elapsed
/// wall-clock time into the profiler on drop.
#[derive(Debug)]
pub struct StageTimer<'a> {
    telemetry: &'a Telemetry,
    stage: &'static str,
    start: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.telemetry
            .record_stage(self.stage, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_wires_all_three_layers() {
        let t = Telemetry::with_audit_capacity(4);
        t.metrics().counter("fg_requests_total").inc();
        {
            let _timer = t.time("gate.total");
        }
        t.record_audit(AuditRecord {
            at: fg_core::time::SimTime::from_secs(1),
            endpoint: "/search".to_owned(),
            client: 9,
            fingerprint: 0xF00D,
            ip: "10.1.2.3".to_owned(),
            score: 0.0,
            signals: Vec::new(),
            decision: "allow".to_owned(),
            reasons: vec!["clean".to_owned()],
            trace_id: fg_core::hash::trace_id(9, 1),
        });

        let snap = t.snapshot();
        assert_eq!(
            snap.metrics.counter_value("fg_requests_total", &[]),
            Some(1)
        );
        assert_eq!(snap.stages.len(), 1);
        assert_eq!(snap.stages[0].stage, "gate.total");
        assert_eq!(snap.audit.recorded, 1);
        assert_eq!(snap.audit.decision_total("allow"), 1);
    }

    #[test]
    fn tracing_is_off_until_enabled() {
        let t = Telemetry::new();
        assert!(!t.tracing_enabled());
        let mut off = RequestTrace::new(
            fg_core::hash::trace_id(1, 1),
            1,
            "/search",
            fg_core::time::SimTime::from_secs(1),
        );
        off.finish("block");
        t.record_trace(off);
        assert_eq!(t.trace_snapshot().submitted, 0);

        t.enable_tracing(TraceConfig::default());
        assert!(t.tracing_enabled());
        let mut on = RequestTrace::new(
            fg_core::hash::trace_id(1, 2),
            1,
            "/search",
            fg_core::time::SimTime::from_secs(2),
        );
        on.finish("block");
        t.record_trace(on);
        let snap = t.trace_snapshot();
        assert_eq!(snap.submitted, 1);
        assert!(snap
            .request_trace_ids()
            .contains(&fg_core::hash::trace_id(1, 2)));
    }
}
