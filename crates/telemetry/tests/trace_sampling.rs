//! Property tests for the tracer's retention policy.
//!
//! The guarantee exemplar correlation depends on: whatever mix of sessions,
//! sequence numbers, and decisions a run produces, a trace that ended in a
//! non-`allow` decision is never sampled out — only `allow` traces pass
//! through the hash coin. Capacity eviction is exercised separately (unit
//! tests in `trace.rs`); here capacity is sized above the generated load so
//! the property isolates the sampling stage.

use fg_core::time::SimTime;
use fg_telemetry::{RequestTrace, TraceConfig, Tracer};
use proptest::prelude::*;

const DECISIONS: [&str; 4] = ["allow", "block", "challenge", "honeypot"];

fn build(session: u64, seq: u64, decision: &str) -> RequestTrace {
    let id = fg_core::hash::trace_id(session, seq);
    let mut t = RequestTrace::new(id, session, "/booking/hold", SimTime::from_millis(seq));
    let stage = t.stage("policy.decide");
    t.attr(stage, "decision", decision);
    t.finish(decision);
    t
}

proptest! {
    #[test]
    fn non_allow_traces_are_always_retained(
        requests in proptest::collection::vec((0u64..32, 0usize..4), 1..200),
        rate_millis in 0u32..1001,
    ) {
        let mut tracer = Tracer::new();
        tracer.enable(TraceConfig {
            allow_sample_rate: f64::from(rate_millis) / 1000.0,
            ..TraceConfig::default()
        });
        let mut expected = Vec::new();
        for (seq, &(session, decision_idx)) in requests.iter().enumerate() {
            let decision = DECISIONS[decision_idx];
            let trace = build(session, seq as u64, decision);
            if decision != "allow" {
                expected.push(trace.trace_id());
            }
            tracer.submit(trace);
        }
        let retained = tracer.retained_ids();
        for id in expected {
            prop_assert!(retained.contains(&id), "non-allow trace {id:#x} was dropped");
        }
    }

    #[test]
    fn allow_sampling_is_a_pure_function_of_the_trace_id(
        requests in proptest::collection::vec(0u64..64, 1..100),
    ) {
        // Two tracers fed the same traces in different orders retain exactly
        // the same allow subset: the coin depends on the id alone.
        let mut forward = Tracer::new();
        let mut backward = Tracer::new();
        forward.enable(TraceConfig::default());
        backward.enable(TraceConfig::default());
        for (seq, &session) in requests.iter().enumerate() {
            forward.submit(build(session, seq as u64, "allow"));
        }
        for (seq, &session) in requests.iter().enumerate().rev() {
            backward.submit(build(session, seq as u64, "allow"));
        }
        prop_assert_eq!(forward.retained_ids(), backward.retained_ids());
    }
}
