//! Serve-side live observability: W3C trace-context propagation, the
//! flight recorder, and the embedded SLO sentinel policy.
//!
//! Three pieces the debug endpoints are built from:
//!
//! * [`TraceParent`] — a dependency-free parser/formatter for the W3C
//!   `traceparent` header. The wire trace id is *correlated* with (never
//!   substituted for) the decision core's deterministic trace id: the
//!   decision id goes back as the echoed `parent-id`, and the wire id is
//!   recorded as a span attribute, so a caller's distributed trace and the
//!   server's causal trace join without perturbing decision parity.
//! * [`FlightRecorder`] — a bounded ring of the last N request summaries.
//!   When the circuit breaker trips or the accept queue starts shedding,
//!   the ring is *frozen*: the requests that led up to the event stay
//!   retrievable at `/debug/flightrecorder` no matter how much traffic
//!   follows.
//! * [`serve_slo_policy`] — the alert policy the embedded `fg-sentinel`
//!   evaluates against the live registry: 5xx error burn, served p99 over
//!   the SLO, 429 shed surge, and breaker trips.
//!
//! Everything here is reachable from the request path, so it upholds the
//! serve no-panic contract: no unwraps, no indexing, no unchecked
//! arithmetic.

use crate::config::ObserveConfig;
use fg_core::time::SimDuration;
use fg_sentinel::policy::AlertPolicy;
use fg_sentinel::rule::{AlertRule, MetricSelector};
use serde::Serialize;
use std::collections::VecDeque;

/// A parsed W3C `traceparent` header (version 00).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParent {
    /// The full 32-hex-digit trace id, exactly as received (the echo must
    /// preserve it byte-for-byte for the caller's collector to join spans).
    pub trace_id_hex: String,
    /// Low 64 bits of the trace id — the numeric form recorded as a span
    /// attribute.
    pub trace_id_low: u64,
    /// The caller's span id.
    pub parent_id: u64,
}

impl TraceParent {
    /// Parses `version-traceid-parentid-flags` per the W3C spec: lowercase
    /// hex, 2/32/16/2 digits, trace and parent ids non-zero. Returns `None`
    /// on anything malformed — an invalid header is ignored, never an
    /// error.
    pub fn parse(header: &str) -> Option<TraceParent> {
        let mut parts = header.trim().split('-');
        let version = parts.next()?;
        let trace_id = parts.next()?;
        let parent_id = parts.next()?;
        let flags = parts.next()?;
        // Future versions may append fields; version 00 must have exactly 4.
        if parts.next().is_some() && version == "00" {
            return None;
        }
        let lower_hex = |s: &str| {
            !s.is_empty()
                && s.bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        };
        if version.len() != 2 || !lower_hex(version) || version == "ff" {
            return None;
        }
        if trace_id.len() != 32 || !lower_hex(trace_id) {
            return None;
        }
        if parent_id.len() != 16 || !lower_hex(parent_id) {
            return None;
        }
        if flags.len() != 2 || !lower_hex(flags) {
            return None;
        }
        let high = u64::from_str_radix(trace_id.get(..16)?, 16).ok()?;
        let low = u64::from_str_radix(trace_id.get(16..)?, 16).ok()?;
        let parent = u64::from_str_radix(parent_id, 16).ok()?;
        if high == 0 && low == 0 {
            return None;
        }
        if parent == 0 {
            return None;
        }
        Some(TraceParent {
            trace_id_hex: trace_id.to_owned(),
            trace_id_low: low,
            parent_id: parent,
        })
    }

    /// The header value to echo back: same trace id, the server's decision
    /// trace id as the new parent, sampled flag set.
    pub fn echo(&self, span_id: u64) -> String {
        format!("00-{}-{:016x}-01", self.trace_id_hex, span_id.max(1))
    }
}

/// First value of `key` in the target's query string, e.g.
/// `query_param("/debug/traces?trace_id=ab12", "trace_id")`.
/// No percent-decoding — the debug API's parameters are plain hex.
pub fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    let (_, query) = target.split_once('?')?;
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// The target with any query string removed — what the router matches on.
pub fn path_of(target: &str) -> &str {
    target.split('?').next().unwrap_or(target)
}

/// One request as the flight recorder remembers it.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RequestSummary {
    /// Monotone per-boot request sequence number.
    pub seq: u64,
    /// Milliseconds since server boot when the response was written.
    pub boot_ms: u64,
    /// Endpoint class label (`decide`, `report`, `observe`, `other`).
    pub endpoint: String,
    /// Method and target, e.g. `POST /v1/decide`.
    pub request: String,
    /// Response status code.
    pub status: u16,
    /// Decision label for `/v1/decide` responses (`allow`, `block`, …).
    pub decision: Option<String>,
    /// Decision trace id as 16 hex digits, or `None` for untraced requests.
    pub trace_id: Option<String>,
    /// Wall-clock service latency, microseconds.
    pub latency_us: u64,
    /// Whether the request exceeded the configured slow threshold.
    pub slow: bool,
}

/// The frozen copy of the ring taken when a trip/shed event fired.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FrozenFlight {
    /// What froze the ring (`breaker-open`, `shed`).
    pub reason: String,
    /// Milliseconds since server boot at freeze time.
    pub boot_ms: u64,
    /// The ring contents at freeze time, oldest first.
    pub entries: Vec<RequestSummary>,
}

/// A bounded ring of recent request summaries with freeze-on-incident
/// semantics. The *live* ring keeps rolling after a freeze; the frozen copy
/// is immutable until explicitly cleared (first freeze wins, so the ring
/// that explains the original incident is never overwritten by aftershocks).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    recorded: u64,
    ring: VecDeque<RequestSummary>,
    frozen: Option<FrozenFlight>,
}

/// What `/debug/flightrecorder` serves.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FlightSnapshot {
    /// Ring capacity.
    pub capacity: usize,
    /// Requests ever recorded (≥ `live.len()`).
    pub recorded: u64,
    /// The rolling ring, oldest first.
    pub live: Vec<RequestSummary>,
    /// The frozen ring, when an incident fired.
    pub frozen: Option<FrozenFlight>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            recorded: 0,
            ring: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            frozen: None,
        }
    }

    /// Appends one request summary, evicting the oldest at capacity.
    pub fn record(&mut self, summary: RequestSummary) {
        self.recorded = self.recorded.saturating_add(1);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(summary);
    }

    /// Freezes a copy of the ring. Idempotent: only the first freeze since
    /// the last [`FlightRecorder::thaw`] is kept.
    pub fn freeze(&mut self, reason: &str, boot_ms: u64) {
        if self.frozen.is_none() {
            self.frozen = Some(FrozenFlight {
                reason: reason.to_owned(),
                boot_ms,
                entries: self.ring.iter().cloned().collect(),
            });
        }
    }

    /// Clears the frozen copy so the next incident can capture again.
    pub fn thaw(&mut self) {
        self.frozen = None;
    }

    /// Point-in-time view for `/debug/flightrecorder`.
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot {
            capacity: self.capacity,
            recorded: self.recorded,
            live: self.ring.iter().cloned().collect(),
            frozen: self.frozen.clone(),
        }
    }
}

/// The serve SLO policy the embedded sentinel evaluates (sim-time for the
/// sentinel is wall-clock milliseconds since boot):
///
/// * `serve-5xx-burn` — ≥ 5 server errors within 5 minutes.
/// * `serve-p99-slo` — the per-endpoint served p99 gauge at or above the
///   configured SLO, evaluated instantaneously ([`AlertRule::level`]).
/// * `serve-shed-surge` — 429 sheds at ≥ 4× their trailing half-hour rate.
/// * `serve-breaker-trips` — any breaker trip within 15 minutes.
pub fn serve_slo_policy(observe: &ObserveConfig) -> AlertPolicy {
    AlertPolicy::named("serve-slo")
        .rule(
            AlertRule::threshold(
                "serve-5xx-burn",
                MetricSelector::exact("fg_http_5xx_total", &[]),
                SimDuration::from_mins(5),
                5.0,
            )
            .with_cooldown(SimDuration::from_mins(10)),
        )
        .rule(
            AlertRule::level(
                "serve-p99-slo",
                MetricSelector::any("fg_http_request_p99_seconds"),
                observe.p99_slo_ms as f64 / 1e3,
            )
            .with_cooldown(SimDuration::from_mins(5)),
        )
        .rule(
            AlertRule::surge(
                "serve-shed-surge",
                MetricSelector::exact("fg_http_shed_total", &[]),
                SimDuration::from_mins(5),
                SimDuration::from_mins(30),
                4.0,
                20.0,
            )
            .with_cooldown(SimDuration::from_mins(10)),
        )
        .rule(
            AlertRule::threshold(
                "serve-breaker-trips",
                MetricSelector::exact("fg_serve_breaker_trips_total", &[]),
                SimDuration::from_mins(15),
                1.0,
            )
            .with_cooldown(SimDuration::from_mins(15)),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(seq: u64, status: u16) -> RequestSummary {
        RequestSummary {
            seq,
            boot_ms: seq * 10,
            endpoint: "decide".to_owned(),
            request: "POST /v1/decide".to_owned(),
            status,
            decision: Some("allow".to_owned()),
            trace_id: Some(format!("{:016x}", seq)),
            latency_us: 120,
            slow: false,
        }
    }

    #[test]
    fn traceparent_parses_the_w3c_happy_path() {
        let tp =
            TraceParent::parse("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01").unwrap();
        assert_eq!(tp.trace_id_hex, "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(tp.trace_id_low, 0xa3ce929d0e0e4736);
        assert_eq!(tp.parent_id, 0x00f067aa0ba902b7);
        let echo = tp.echo(0xDEAD_BEEF);
        assert_eq!(
            echo,
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00000000deadbeef-01"
        );
    }

    #[test]
    fn traceparent_rejects_malformed_headers() {
        for bad in [
            "",
            "garbage",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
            "00-short-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
        ] {
            assert!(TraceParent::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn query_params_split_without_decoding() {
        assert_eq!(
            query_param("/debug/traces?trace_id=ab12&limit=5", "trace_id"),
            Some("ab12")
        );
        assert_eq!(
            query_param("/debug/traces?trace_id=ab12&limit=5", "limit"),
            Some("5")
        );
        assert_eq!(query_param("/debug/traces", "trace_id"), None);
        assert_eq!(path_of("/debug/traces?trace_id=ab12"), "/debug/traces");
        assert_eq!(path_of("/metrics"), "/metrics");
    }

    #[test]
    fn flight_recorder_rolls_and_freezes_once() {
        let mut fr = FlightRecorder::new(3);
        for seq in 1..=5 {
            fr.record(summary(seq, 200));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.recorded, 5);
        let seqs: Vec<u64> = snap.live.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "ring keeps the last N");

        fr.freeze("breaker-open", 50);
        fr.record(summary(6, 503));
        fr.freeze("shed", 60); // second incident: first freeze wins
        let snap = fr.snapshot();
        let frozen = snap.frozen.unwrap();
        assert_eq!(frozen.reason, "breaker-open");
        assert_eq!(frozen.entries.len(), 3);
        assert_eq!(
            snap.live.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![4, 5, 6],
            "live ring kept rolling past the freeze"
        );

        fr.thaw();
        fr.freeze("shed", 70);
        assert_eq!(fr.snapshot().frozen.unwrap().reason, "shed");
    }

    #[test]
    fn slo_policy_covers_all_four_surfaces() {
        let policy = serve_slo_policy(&ObserveConfig::default());
        let ids: Vec<&str> = policy.rules.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "serve-5xx-burn",
                "serve-p99-slo",
                "serve-shed-surge",
                "serve-breaker-trips"
            ]
        );
    }
}
