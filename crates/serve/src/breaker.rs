//! A small three-state circuit breaker around the decision path.
//!
//! Closed → (N consecutive failures) → Open → (cool-down elapses) →
//! Half-open → one success closes it / one failure re-opens it. "Failure"
//! means the handler itself broke (panic, poisoned state, serialization
//! failure) — refusals like 429/4xx are healthy answers, not failures.
//!
//! Time is injected (`*_at` methods) so the unit tests need no sleeps; the
//! serving path passes `Instant::now()`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables, hot-reloadable with the rest of the serve config.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BreakerConfig {
    /// Consecutive handler failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing, milliseconds.
    pub open_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_ms: 1_000,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

struct Inner {
    config: BreakerConfig,
    state: State,
    trips: u64,
}

/// The breaker. Cheap to share behind an `Arc`; all transitions take one
/// short mutex.
pub struct CircuitBreaker {
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tunables.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            inner: Mutex::new(Inner {
                config,
                state: State::Closed {
                    consecutive_failures: 0,
                },
                trips: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Swaps tunables without touching the current state.
    pub fn reconfigure(&self, config: BreakerConfig) {
        self.lock().config = config;
    }

    /// Whether a request may proceed at `now`. An open breaker whose
    /// cool-down has elapsed transitions to half-open and admits the probe.
    pub fn try_acquire_at(&self, now: Instant) -> bool {
        let mut inner = self.lock();
        match inner.state {
            State::Closed { .. } => true,
            State::HalfOpen => false, // one probe at a time
            State::Open { until } => {
                if now >= until {
                    inner.state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// [`CircuitBreaker::try_acquire_at`] at the current instant.
    pub fn try_acquire(&self) -> bool {
        self.try_acquire_at(Instant::now())
    }

    /// Records the outcome of an admitted request at `now`.
    pub fn record_at(&self, ok: bool, now: Instant) {
        let mut inner = self.lock();
        let open_for = Duration::from_millis(inner.config.open_ms);
        match (&mut inner.state, ok) {
            (
                State::Closed {
                    consecutive_failures,
                },
                true,
            ) => *consecutive_failures = 0,
            (
                State::Closed {
                    consecutive_failures,
                },
                false,
            ) => {
                *consecutive_failures += 1;
                if *consecutive_failures >= inner.config.failure_threshold {
                    inner.state = State::Open {
                        until: now + open_for,
                    };
                    inner.trips += 1;
                }
            }
            (State::HalfOpen, true) => {
                inner.state = State::Closed {
                    consecutive_failures: 0,
                }
            }
            (State::HalfOpen, false) => {
                inner.state = State::Open {
                    until: now + open_for,
                };
                inner.trips += 1;
            }
            // A late result while already open: ignore.
            (State::Open { .. }, _) => {}
        }
    }

    /// [`CircuitBreaker::record_at`] at the current instant.
    pub fn record(&self, ok: bool) {
        self.record_at(ok, Instant::now());
    }

    /// `"closed"`, `"open"`, or `"half-open"` — for `/readyz`.
    pub fn state_name(&self) -> &'static str {
        match self.lock().state {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }

    /// Times the breaker has tripped open since boot.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_ms,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_and_recovers_via_probe() {
        let b = breaker(3, 100);
        let t0 = Instant::now();
        for _ in 0..2 {
            assert!(b.try_acquire_at(t0));
            b.record_at(false, t0);
        }
        assert_eq!(b.state_name(), "closed");
        b.record_at(false, t0);
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 1);
        // Still cooling down: refused.
        assert!(!b.try_acquire_at(t0 + Duration::from_millis(50)));
        // Cool-down over: exactly one probe admitted.
        let t1 = t0 + Duration::from_millis(150);
        assert!(b.try_acquire_at(t1));
        assert_eq!(b.state_name(), "half-open");
        assert!(!b.try_acquire_at(t1), "second probe must wait");
        b.record_at(true, t1);
        assert_eq!(b.state_name(), "closed");
        assert!(b.try_acquire_at(t1));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = breaker(1, 100);
        let t0 = Instant::now();
        b.record_at(false, t0);
        assert_eq!(b.state_name(), "open");
        let t1 = t0 + Duration::from_millis(101);
        assert!(b.try_acquire_at(t1));
        b.record_at(false, t1);
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.trips(), 2);
        assert!(!b.try_acquire_at(t1 + Duration::from_millis(50)));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = breaker(3, 100);
        let t = Instant::now();
        b.record_at(false, t);
        b.record_at(false, t);
        b.record_at(true, t);
        b.record_at(false, t);
        b.record_at(false, t);
        assert_eq!(b.state_name(), "closed", "streak was reset by the success");
    }
}
