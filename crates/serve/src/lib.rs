//! # fg-serve
//!
//! The serving layer: FeatureGuard's defence pipeline as a long-running
//! decision API, plus the load generator that measures it.
//!
//! * [`http`] — hand-rolled HTTP/1.1 parsing and response writing over
//!   `std` I/O (no async runtime; all deps vendored).
//! * [`server`] — accept loop, fixed worker pool with a bounded hand-off
//!   queue (full ⇒ shed with 429), per-endpoint concurrency gates, config
//!   watcher, graceful drain.
//! * [`service`] — the decision core: one [`fg_scenario::DefendedApp`]
//!   behind a mutex, serving `POST /v1/decide` from the *same* code path
//!   the simulator runs, so wire and sim decisions agree byte-for-byte.
//! * [`config`] — boot-only vs hot-reloadable config split; hot swaps are
//!   gated by `fg_analyze::validate_serve_policy` (reject-and-keep-old).
//! * [`breaker`] — a three-state circuit breaker around the decision path.
//! * [`observe`] — live observability plumbing: W3C `traceparent` parsing
//!   and echo, the flight-recorder ring (frozen on breaker trips and
//!   sheds), per-request summaries, and the serve SLO alert policy the
//!   embedded sentinel evaluates.
//! * [`loadgen`] — deterministic wire replay of fg-behavior workloads,
//!   reporting p50/p90/p99/p999 latency and sustained decisions/sec as
//!   schema-versioned `BENCH_serve.json`.
//! * [`exit`] — the unified 0/2/3/4 exit-code contract shared with the
//!   `experiments` binary.
//!
//! ## Where determinism stops
//!
//! Everything below the socket — detection, policy, audit — is a pure
//! function of (request stream, config, seed, shards): requests carry
//! their own session clock (`now_ms`), so *what* is decided never depends
//! on the wall. The serving shell around it is deliberately wall-clock:
//! read timeouts, breaker cool-downs, drain deadlines, and measured
//! latency are properties of *this run on this machine*. That boundary is
//! why `serve` sits on fg-analyze's exempt list while every crate beneath
//! it stays determinism-critical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod config;
pub mod exit;
pub mod http;
pub mod loadgen;
pub mod observe;
pub mod server;
pub mod service;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use config::{EndpointLimits, ServeConfig, SERVE_CONFIG_SCHEMA};
pub use exit::Exit;
pub use loadgen::{LoadReport, LoadgenConfig, SlowRequest, SERVE_BENCH_SCHEMA};
pub use observe::{FlightRecorder, RequestSummary, TraceParent};
pub use server::{DrainReport, ServeState, Server};
pub use service::{DecisionService, OutcomeReport, ReportAck};
