//! The decision service: the deterministic core behind the HTTP endpoints.
//!
//! Wraps a [`DefendedApp`] behind one mutex. Decisions come out of exactly
//! the code path the simulator exercises ([`DefendedApp::decide_request`]),
//! so wire replies and simulator artifacts agree byte-for-byte under the
//! same request stream, policy, seed, and shard count. Determinism stops at
//! the transport: *when* a request arrives is wall-clock, *what* it decides
//! is a pure function of its content (each request carries its own session
//! clock, `now_ms`).

use fg_core::time::SimTime;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::ip::IpAddress;
use fg_scenario::app::{AppConfig, DefendedApp, GateDecision};
use fg_scenario::workload::WireRequest;
use fg_telemetry::{RequestTrace, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::config::ServeConfig;

/// Housekeeping cadence in session-clock milliseconds: when observed
/// `now_ms` advances past this since the last tick, expiry/compaction runs
/// before the next decision (same bounded-state contract as the simulator).
const TICK_EVERY_MS: u64 = 5 * 60 * 1_000;

/// Outcome feedback posted to `/v1/report`: a confirmed-abuse (or
/// explicitly cleared) verdict for a source IP, folded into the reputation
/// ledger that the detection engine consults on later requests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutcomeReport {
    /// The source IP the outcome is about.
    pub ip: IpAddress,
    /// Abuse score in `[0, 1]` (1 = confirmed abuse).
    pub score: f64,
    /// Session clock of the feedback, milliseconds.
    pub now_ms: u64,
}

/// `/v1/report`'s acknowledgement body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReportAck {
    /// Always `true` on 200.
    pub ok: bool,
    /// Total outcome reports folded in since boot.
    pub reports: u64,
}

/// The shared decision core.
pub struct DecisionService {
    app: Mutex<DefendedApp>,
    telemetry: Arc<Telemetry>,
    last_tick_ms: AtomicU64,
    reports: AtomicU64,
    decisions: AtomicU64,
}

impl DecisionService {
    /// Builds the defended app from the serve config, wired to `telemetry`.
    pub fn new(config: &ServeConfig, telemetry: Arc<Telemetry>) -> Self {
        let concurrency = if config.shards <= 1 {
            fg_core::shard::ConcurrencyMode::Deterministic
        } else {
            fg_core::shard::ConcurrencyMode::Sharded {
                shards: config.shards,
            }
        };
        let app = DefendedApp::with_telemetry(
            AppConfig::airline(config.policy.clone()).with_concurrency(concurrency),
            config.seed,
            telemetry.clone(),
        );
        DecisionService {
            app: Mutex::new(app),
            telemetry,
            last_tick_ms: AtomicU64::new(0),
            reports: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
        }
    }

    /// Locks the app, recovering from a poisoned mutex (a panicking handler
    /// must not brick the service; the breaker absorbs repeated failures).
    fn app(&self) -> MutexGuard<'_, DefendedApp> {
        self.app.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The telemetry hub the decision core records into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Decides one wire request, running due housekeeping first.
    pub fn decide(&self, req: &WireRequest) -> GateDecision {
        let (decision, trace) = self.decide_traced(req);
        if let Some(tr) = trace {
            self.telemetry().record_trace(tr);
        }
        decision
    }

    /// Like [`DecisionService::decide`], but returns the finished (not yet
    /// submitted) request trace so the HTTP layer can append transport
    /// spans — response status, measured latency, wire trace correlation —
    /// and pin slow requests before submitting. The decision is identical
    /// to [`DecisionService::decide`] byte-for-byte.
    pub fn decide_traced(&self, req: &WireRequest) -> (GateDecision, Option<RequestTrace>) {
        let mut app = self.app();
        let last = self.last_tick_ms.load(Ordering::Relaxed);
        if req.now_ms >= last + TICK_EVERY_MS {
            app.tick(SimTime::from_millis(req.now_ms));
            self.last_tick_ms.store(req.now_ms, Ordering::Relaxed);
        }
        self.decisions.fetch_add(1, Ordering::Relaxed);
        app.decide_request_traced(&req.client_request(), req.endpoint, req.booking, req.now())
    }

    /// Folds one outcome report into the reputation ledger.
    pub fn report(&self, outcome: &OutcomeReport) -> Result<ReportAck, String> {
        if !(0.0..=1.0).contains(&outcome.score) {
            return Err(format!("score {} outside [0, 1]", outcome.score));
        }
        let mut app = self.app();
        app.detection_mut().reputation_mut().report(
            outcome.ip,
            outcome.score,
            SimTime::from_millis(outcome.now_ms),
        );
        let reports = self.reports.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(ReportAck { ok: true, reports })
    }

    /// Hot-swaps the policy (validated upstream by the watcher), keeping
    /// decision-counter continuity.
    pub fn replace_policy(&self, policy: PolicyConfig) {
        self.app().replace_policy(policy);
    }

    /// Decisions served since boot.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_scenario::workload::{generate, WorkloadConfig};

    fn service() -> DecisionService {
        DecisionService::new(&ServeConfig::recommended(), Telemetry::shared())
    }

    #[test]
    fn decide_matches_the_in_process_replay() {
        let cfg = WorkloadConfig {
            seed: 11,
            horizon_hours: 1,
            arrivals_per_day: 100.0,
            seat_spinner: true,
            sms_pumper: false,
        };
        let workload = generate(&cfg);
        let svc = ServeConfig {
            seed: 99, // decision path takes no randomness; seed must not matter
            ..ServeConfig::recommended()
        };
        let a = DecisionService::new(&svc, Telemetry::shared());
        let b = DecisionService::new(&svc, Telemetry::shared());
        for req in &workload.requests {
            assert_eq!(a.decide(req), b.decide(req));
        }
        assert_eq!(a.decisions(), workload.requests.len() as u64);
    }

    #[test]
    fn report_validates_score_and_counts() {
        let svc = service();
        let ip = IpAddress::from_octets(10, 0, 0, 9);
        assert!(svc
            .report(&OutcomeReport {
                ip,
                score: 2.0,
                now_ms: 0
            })
            .is_err());
        let ack = svc
            .report(&OutcomeReport {
                ip,
                score: 1.0,
                now_ms: 1_000,
            })
            .unwrap();
        assert!(ack.ok);
        assert_eq!(ack.reports, 1);
    }

    #[test]
    fn reported_abuse_shifts_later_decisions() {
        // Feed max-score reports for one IP, then compare a decide() from
        // that IP against a fresh service: reputation must have raised the
        // assessed risk (the /v1/report → /v1/decide feedback loop works).
        let cfg = WorkloadConfig {
            seed: 13,
            horizon_hours: 1,
            arrivals_per_day: 60.0,
            seat_spinner: false,
            sms_pumper: false,
        };
        let workload = generate(&cfg);
        let req = workload.requests.first().expect("non-empty workload");
        let tainted = service();
        let fresh = service();
        for k in 0..50 {
            tainted
                .report(&OutcomeReport {
                    ip: req.ip,
                    score: 1.0,
                    now_ms: k * 1_000,
                })
                .unwrap();
        }
        let d_tainted = tainted.decide(req);
        let d_fresh = fresh.decide(req);
        assert!(
            d_tainted.score >= d_fresh.score,
            "reported abuse must not lower the assessed score \
             (tainted {} < fresh {})",
            d_tainted.score,
            d_fresh.score
        );
    }
}
