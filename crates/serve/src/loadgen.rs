//! The wire-replay load generator behind `fg-loadgen`.
//!
//! Generates a deterministic fg-behavior workload from a seed (see
//! [`fg_scenario::workload::generate`]), then replays it over HTTP/1.1
//! keep-alive connections against a running `fg-serve` — configurable
//! connection count, target rate, and duration — and reports sustained
//! decisions/sec with p50/p90/p99/p999 latency as a schema-versioned
//! `BENCH_serve.json`.
//!
//! Request *content* is deterministic per seed; measured latency is
//! wall-clock by nature. The report separates the two: `seed` pins what was
//! sent, the latency block describes this run of this machine.

use fg_scenario::workload::{generate, Workload, WorkloadConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamp on `BENCH_serve.json`.
///
/// * v1 — counts, decisions/sec, latency percentiles.
/// * v2 — adds `statuses` (every status code seen, including 200) and
///   `slowest` (the k slowest exchanges with their decision trace ids, for
///   cross-referencing against the server's `/debug/traces`).
pub const SERVE_BENCH_SCHEMA: u32 = 2;

/// How many slowest exchanges the report retains.
pub const SLOW_SAMPLES: usize = 10;

/// Loadgen parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target `host:port`.
    pub addr: String,
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Aggregate target request rate (requests/sec); `0` = as fast as
    /// possible.
    pub rate: f64,
    /// How long to drive load.
    pub duration: Duration,
    /// Workload seed (what gets sent is a pure function of this).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8080".to_owned(),
            connections: 4,
            rate: 0.0,
            duration: Duration::from_secs(10),
            seed: 42,
        }
    }
}

/// The measured outcome, serialized as `BENCH_serve.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Format version ([`SERVE_BENCH_SCHEMA`]).
    pub schema: u32,
    /// Workload seed driven.
    pub seed: u64,
    /// Connections driven.
    pub connections: usize,
    /// Wall-clock duration actually driven, seconds.
    pub duration_secs: f64,
    /// Requests put on the wire.
    pub sent: u64,
    /// `200` decisions received.
    pub ok: u64,
    /// Non-200 responses by status code.
    pub errors: BTreeMap<u16, u64>,
    /// Transport failures (connect resets, short reads).
    pub transport_errors: u64,
    /// Sustained successful decisions per second.
    pub decisions_per_sec: f64,
    /// Response latency percentiles, milliseconds.
    pub latency_ms: LatencySummary,
    /// Decision kinds observed (allow/challenge/…) with counts.
    pub decisions: BTreeMap<String, u64>,
    /// Every status code seen with counts, including 200 (schema ≥ 2).
    pub statuses: BTreeMap<u16, u64>,
    /// The [`SLOW_SAMPLES`] slowest exchanges, worst first (schema ≥ 2).
    pub slowest: Vec<SlowRequest>,
}

/// One of the slowest exchanges of the run: how slow, what came back, and
/// the decision trace id to look up in the server's `/debug/traces`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlowRequest {
    /// Round-trip latency, milliseconds.
    pub latency_ms: f64,
    /// HTTP status of the response.
    pub status: u16,
    /// The decision's trace id (16 lowercase hex), when the response was a
    /// 200 decision; `None` for errors and sheds.
    pub trace_id: Option<String>,
}

/// Latency percentiles in milliseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Worst observed.
    pub max: f64,
}

impl LoadReport {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("load report serializes")
    }

    /// Parses a report, rejecting unknown schema versions. Schema-1
    /// reports (no `statuses`/`slowest`) are migrated forward: statuses
    /// are reconstructed from `ok` + `errors`, the slowest list is empty.
    pub fn from_json(s: &str) -> Result<LoadReport, String> {
        let mut value: serde_json::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        let schema = value.get("schema").and_then(|v| v.as_u64());
        match schema {
            Some(1) => {
                if let serde_json::Value::Object(fields) = &mut value {
                    fields.push(("statuses".to_owned(), serde_json::Value::Object(Vec::new())));
                    fields.push(("slowest".to_owned(), serde_json::Value::Array(Vec::new())));
                    for (k, v) in fields.iter_mut() {
                        if k == "schema" {
                            *v = serde_json::Value::UInt(u64::from(SERVE_BENCH_SCHEMA));
                        }
                    }
                }
            }
            Some(v) if v == u64::from(SERVE_BENCH_SCHEMA) => {}
            other => {
                return Err(format!(
                    "unsupported serve bench schema {other:?} (expected {SERVE_BENCH_SCHEMA})"
                ));
            }
        }
        let mut r: LoadReport = serde_json::from_value(value).map_err(|e| e.to_string())?;
        if schema == Some(1) && r.statuses.is_empty() {
            if r.ok > 0 {
                r.statuses.insert(200, r.ok);
            }
            for (&status, &n) in &r.errors {
                r.statuses.insert(status, n);
            }
        }
        Ok(r)
    }
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1_000_000.0
}

/// SplitMix64 mixing step — the deterministic trace-id derivation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The W3C `traceparent` injected with the `n`-th request of `seed`'s
/// workload. A pure function of `(seed, n)`, so two replays of the same
/// seed put identical trace ids on the wire and server-side traces can be
/// correlated run-to-run.
pub fn traceparent_for(seed: u64, n: u64) -> String {
    let hi = splitmix64(seed ^ splitmix64(n));
    let lo = splitmix64(hi.wrapping_add(n)).max(1); // all-zero trace id is invalid
    let parent = splitmix64(lo).max(1);
    format!("00-{hi:016x}{lo:016x}-{parent:016x}-01")
}

struct WorkerOutcome {
    sent: u64,
    ok: u64,
    errors: BTreeMap<u16, u64>,
    transport_errors: u64,
    latencies_ns: Vec<u64>,
    decisions: BTreeMap<String, u64>,
    statuses: BTreeMap<u16, u64>,
    slowest: Vec<SlowRequest>,
}

/// Keeps `slowest` bounded: compact to the worst [`SLOW_SAMPLES`] once the
/// buffer grows past a small multiple of the target.
fn compact_slowest(slowest: &mut Vec<SlowRequest>) {
    if slowest.len() >= SLOW_SAMPLES * 8 {
        slowest.sort_by(|a, b| b.latency_ms.total_cmp(&a.latency_ms));
        slowest.truncate(SLOW_SAMPLES);
    }
}

/// Drives the configured load and measures. Fails fast (`Err`) only when
/// the target is unreachable at start; per-request transport errors during
/// the run are counted, not fatal.
pub fn run(config: &LoadgenConfig) -> Result<LoadReport, String> {
    // Probe first so "nothing is listening" is a crisp failure.
    TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;

    let workload = generate(&WorkloadConfig {
        seed: config.seed,
        ..WorkloadConfig::default()
    });
    if workload.requests.is_empty() {
        return Err("generated workload is empty".to_owned());
    }
    let workload = Arc::new(workload);
    let connections = config.connections.max(1);
    let next_index = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = start + config.duration;
    let per_conn_interval = if config.rate > 0.0 {
        Some(Duration::from_secs_f64(connections as f64 / config.rate))
    } else {
        None
    };

    let mut handles = Vec::with_capacity(connections);
    for _ in 0..connections {
        let addr = config.addr.clone();
        let workload = workload.clone();
        let next_index = next_index.clone();
        let seed = config.seed;
        handles.push(std::thread::spawn(move || {
            drive_connection(
                &addr,
                &workload,
                &next_index,
                seed,
                deadline,
                per_conn_interval,
            )
        }));
    }

    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut errors: BTreeMap<u16, u64> = BTreeMap::new();
    let mut transport_errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut decisions: BTreeMap<String, u64> = BTreeMap::new();
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut slowest: Vec<SlowRequest> = Vec::new();
    for h in handles {
        let outcome = h.join().map_err(|_| "load worker panicked".to_owned())?;
        sent += outcome.sent;
        ok += outcome.ok;
        transport_errors += outcome.transport_errors;
        for (k, v) in outcome.errors {
            *errors.entry(k).or_default() += v;
        }
        for (k, v) in outcome.decisions {
            *decisions.entry(k).or_default() += v;
        }
        for (k, v) in outcome.statuses {
            *statuses.entry(k).or_default() += v;
        }
        latencies.extend(outcome.latencies_ns);
        slowest.extend(outcome.slowest);
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    slowest.sort_by(|a, b| b.latency_ms.total_cmp(&a.latency_ms));
    slowest.truncate(SLOW_SAMPLES);
    Ok(LoadReport {
        schema: SERVE_BENCH_SCHEMA,
        seed: config.seed,
        connections,
        duration_secs: elapsed,
        sent,
        ok,
        errors,
        transport_errors,
        decisions_per_sec: ok as f64 / elapsed,
        latency_ms: LatencySummary {
            p50: percentile(&latencies, 0.50),
            p90: percentile(&latencies, 0.90),
            p99: percentile(&latencies, 0.99),
            p999: percentile(&latencies, 0.999),
            max: latencies.last().map_or(0.0, |&n| n as f64 / 1_000_000.0),
        },
        decisions,
        statuses,
        slowest,
    })
}

fn drive_connection(
    addr: &str,
    workload: &Workload,
    next_index: &AtomicU64,
    seed: u64,
    deadline: Instant,
    interval: Option<Duration>,
) -> WorkerOutcome {
    let mut outcome = WorkerOutcome {
        sent: 0,
        ok: 0,
        errors: BTreeMap::new(),
        transport_errors: 0,
        latencies_ns: Vec::new(),
        decisions: BTreeMap::new(),
        statuses: BTreeMap::new(),
        slowest: Vec::new(),
    };
    let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
    let mut next_send = Instant::now();
    while Instant::now() < deadline {
        if let Some(iv) = interval {
            let now = Instant::now();
            if now < next_send {
                std::thread::sleep(next_send - now);
            }
            next_send += iv;
        }
        if conn.is_none() {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                    let read_half = match s.try_clone() {
                        Ok(r) => r,
                        Err(_) => {
                            outcome.transport_errors += 1;
                            continue;
                        }
                    };
                    conn = Some((BufReader::new(read_half), s));
                }
                Err(_) => {
                    outcome.transport_errors += 1;
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            }
        }
        let n = next_index.fetch_add(1, Ordering::Relaxed);
        let idx = n as usize % workload.requests.len();
        let body = serde_json::to_string(&workload.requests[idx])
            .expect("request serializes")
            .into_bytes();
        let traceparent = traceparent_for(seed, n);
        let (reader, writer) = conn.as_mut().expect("connection just ensured");
        let t0 = Instant::now();
        match exchange(reader, writer, &body, &traceparent) {
            Ok((status, resp_body)) => {
                let elapsed_ns = t0.elapsed().as_nanos() as u64;
                outcome.sent += 1;
                outcome.latencies_ns.push(elapsed_ns);
                *outcome.statuses.entry(status).or_default() += 1;
                let mut trace_id = None;
                if status == 200 {
                    outcome.ok += 1;
                    let parsed = std::str::from_utf8(&resp_body)
                        .ok()
                        .and_then(|t| serde_json::from_str::<serde_json::Value>(t).ok());
                    if let Some(d) = parsed
                        .as_ref()
                        .and_then(|v| v.get("decision"))
                        .and_then(|d| d.as_str())
                    {
                        *outcome.decisions.entry(d.to_owned()).or_default() += 1;
                    }
                    trace_id = parsed
                        .as_ref()
                        .and_then(|v| v.get("trace_id"))
                        .and_then(|t| t.as_u64())
                        .map(|id| format!("{id:016x}"));
                } else {
                    *outcome.errors.entry(status).or_default() += 1;
                    if status == 429 || status == 503 {
                        // Shed or breaker-open: back off a beat.
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                outcome.slowest.push(SlowRequest {
                    latency_ms: elapsed_ns as f64 / 1_000_000.0,
                    status,
                    trace_id,
                });
                compact_slowest(&mut outcome.slowest);
            }
            Err(_) => {
                outcome.transport_errors += 1;
                conn = None; // reconnect next iteration
            }
        }
    }
    outcome
}

/// One POST /v1/decide round trip over an established connection, carrying
/// a deterministic `traceparent` so server-side spans correlate to the
/// replay position.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    body: &[u8],
    traceparent: &str,
) -> std::io::Result<(u16, Vec<u8>)> {
    write!(
        writer,
        "POST /v1/decide HTTP/1.1\r\nHost: fg-serve\r\nContent-Type: application/json\r\nTraceparent: {traceparent}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()?;
    read_response(reader)
}

/// Minimal HTTP/1.1 response reader: status line, headers (Content-Length
/// framing only — matching what fg-serve emits), body.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<(u16, Vec<u8>)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed in headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_distribution() {
        let ns: Vec<u64> = (1..=1000).map(|i| i * 1_000_000).collect(); // 1..=1000 ms
        assert!((percentile(&ns, 0.50) - 500.0).abs() <= 1.0);
        assert!((percentile(&ns, 0.99) - 990.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    fn sample_report() -> LoadReport {
        LoadReport {
            schema: SERVE_BENCH_SCHEMA,
            seed: 42,
            connections: 2,
            duration_secs: 1.0,
            sent: 10,
            ok: 9,
            errors: BTreeMap::from([(429, 1)]),
            transport_errors: 0,
            decisions_per_sec: 9.0,
            latency_ms: LatencySummary {
                p50: 1.0,
                p90: 2.0,
                p99: 3.0,
                p999: 4.0,
                max: 5.0,
            },
            decisions: BTreeMap::from([("allow".to_owned(), 9)]),
            statuses: BTreeMap::from([(200, 9), (429, 1)]),
            slowest: vec![SlowRequest {
                latency_ms: 5.0,
                status: 200,
                trace_id: Some("00000000000000aa".to_owned()),
            }],
        }
    }

    #[test]
    fn report_json_round_trips_and_gates_schema() {
        let report = sample_report();
        let parsed = LoadReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        let mut wrong = report;
        wrong.schema = 9;
        assert!(LoadReport::from_json(&wrong.to_json()).is_err());
    }

    #[test]
    fn schema_one_reports_migrate_forward() {
        // A v1 report has neither `statuses` nor `slowest`; strip them and
        // stamp schema 1 to reproduce what an old fg-loadgen wrote.
        let mut v: serde_json::Value = serde_json::from_str(&sample_report().to_json()).unwrap();
        if let serde_json::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "statuses" && k != "slowest");
            for (k, val) in fields.iter_mut() {
                if k == "schema" {
                    *val = serde_json::Value::UInt(1);
                }
            }
        }
        let old = serde_json::to_string(&v).unwrap();
        let parsed = LoadReport::from_json(&old).unwrap();
        assert_eq!(parsed.schema, SERVE_BENCH_SCHEMA);
        // Statuses are reconstructed from ok + errors; the slowest list
        // cannot be recovered and stays empty.
        assert_eq!(parsed.statuses, BTreeMap::from([(200, 9), (429, 1)]));
        assert!(parsed.slowest.is_empty());
    }

    #[test]
    fn traceparent_is_deterministic_and_well_formed() {
        let a = traceparent_for(42, 7);
        assert_eq!(a, traceparent_for(42, 7));
        assert_ne!(a, traceparent_for(42, 8));
        assert_ne!(a, traceparent_for(43, 7));
        let parts: Vec<&str> = a.split('-').collect();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], "00");
        assert_eq!(parts[1].len(), 32);
        assert_eq!(parts[2].len(), 16);
        assert_eq!(parts[3], "01");
        assert!(parts[1].bytes().all(|b| b.is_ascii_hexdigit()));
        assert!(crate::observe::TraceParent::parse(&a).is_some());
    }

    #[test]
    fn response_reader_handles_a_canned_exchange() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let (status, body) = read_response(&mut &raw[..]).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{}");
    }
}
