//! Unified process exit codes for the serving binaries.
//!
//! Matches the convention the `experiments` binary established (0/2/3/4),
//! so CI can assert outcomes by code instead of scraping output:
//!
//! | code | `fg-serve`                      | `fg-loadgen`                      |
//! |-----:|---------------------------------|-----------------------------------|
//! | 0    | clean start and graceful drain  | run completed, SLO asserts passed |
//! | 2    | usage error (flags, arguments)  | usage error                       |
//! | 3    | bind / IO failure at startup    | target unreachable                |
//! | 4    | initial config rejected         | SLO assertion failed / no decisions |

use std::process::ExitCode;

/// Exit disposition for `fg-serve` and `fg-loadgen`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exit {
    /// Clean completion.
    Success = 0,
    /// Bad command line.
    Usage = 2,
    /// The environment failed us: bind error, connect failure.
    Unavailable = 3,
    /// The run completed but its contract failed: rejected config,
    /// violated SLO assertion, zero successful decisions.
    ContractFailed = 4,
}

impl From<Exit> for ExitCode {
    fn from(e: Exit) -> ExitCode {
        ExitCode::from(e as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Exit::Success as u8, 0);
        assert_eq!(Exit::Usage as u8, 2);
        assert_eq!(Exit::Unavailable as u8, 3);
        assert_eq!(Exit::ContractFailed as u8, 4);
    }
}
