//! Serve configuration: a JSON file split into boot-only topology and
//! hot-reloadable posture.
//!
//! Boot-only fields (`listen`, `workers`, `queue_depth`, `shards`, `seed`)
//! shape threads and store partitioning; changing them requires a restart
//! and a hot-reload that touches them is rejected. Hot fields (`policy`,
//! `limits`, `breaker`) swap atomically after validation: the policy must
//! pass `fg_analyze::validate_serve_policy` (structural validity plus the
//! semantic config lints at warn+), or the running service keeps its
//! previous config — reject-and-keep-old, never reject-and-die.

use crate::breaker::BreakerConfig;
use fg_mitigation::policy::PolicyConfig;
use serde::{Deserialize, Serialize};

/// Version stamp on the serialized config format.
pub const SERVE_CONFIG_SCHEMA: u32 = 1;

/// Per-endpoint concurrency ceilings. A request arriving while its
/// endpoint is at its ceiling is shed with `429` rather than queued — under
/// overload the service degrades by refusing crisply, not by stalling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointLimits {
    /// Concurrent `POST /v1/decide` handlers.
    pub decide: usize,
    /// Concurrent `POST /v1/report` handlers.
    pub report: usize,
    /// Concurrent observability reads (`/metrics`, health probes).
    pub observe: usize,
}

impl Default for EndpointLimits {
    fn default() -> Self {
        EndpointLimits {
            decide: 64,
            report: 32,
            observe: 8,
        }
    }
}

/// Live-observability tunables (boot-only: the tracer ring, flight
/// recorder, and sentinel thread are shaped at start).
///
/// A config file without an `observe` block parses with these defaults, so
/// pre-observability config files keep working unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserveConfig {
    /// Requests at or above this wall-clock latency are pinned into the
    /// trace ring and flagged `slow` in the flight recorder.
    pub slow_request_ms: u64,
    /// Flight-recorder ring size (last N request summaries).
    pub flight_recorder_entries: usize,
    /// Request-trace retention budget for the live tracer ring.
    pub trace_capacity: usize,
    /// How often the embedded sentinel evaluates the SLO policy and the
    /// p99 gauges refresh, milliseconds.
    pub sentinel_poll_ms: u64,
    /// The served-p99 SLO the `serve-p99-slo` alert enforces, milliseconds.
    pub p99_slo_ms: u64,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            slow_request_ms: 250,
            flight_recorder_entries: 256,
            trace_capacity: 4096,
            sentinel_poll_ms: 500,
            p99_slo_ms: 250,
        }
    }
}

/// The full service configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Format version ([`SERVE_CONFIG_SCHEMA`]).
    pub schema: u32,
    /// Bind address, e.g. `"127.0.0.1:8080"` (boot-only).
    pub listen: String,
    /// Worker threads handling connections (boot-only).
    pub workers: usize,
    /// Bounded accept-queue depth; a full queue sheds with 429 (boot-only).
    pub queue_depth: usize,
    /// Defence-store shard count, as in the simulator's `ConcurrencyMode`
    /// (boot-only — decisions are identical at any count).
    pub shards: usize,
    /// Master seed for the decision core (boot-only).
    pub seed: u64,
    /// The defensive posture (hot-reloadable, fg-analyze-gated).
    pub policy: PolicyConfig,
    /// Per-endpoint concurrency ceilings (hot-reloadable).
    pub limits: EndpointLimits,
    /// Circuit-breaker tunables (hot-reloadable).
    pub breaker: BreakerConfig,
    /// Live-observability tunables (boot-only).
    pub observe: ObserveConfig,
}

impl ServeConfig {
    /// The recommended posture on loopback with a small worker pool.
    pub fn recommended() -> Self {
        ServeConfig {
            schema: SERVE_CONFIG_SCHEMA,
            listen: "127.0.0.1:8080".to_owned(),
            workers: 4,
            queue_depth: 128,
            shards: 1,
            seed: 42,
            policy: PolicyConfig::recommended(),
            limits: EndpointLimits::default(),
            breaker: BreakerConfig::default(),
            observe: ObserveConfig::default(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serve config serializes")
    }

    /// Parses JSON without validating; callers follow with
    /// [`ServeConfig::validate`]. A missing `observe` block is filled with
    /// defaults so configs written before the observability layer existed
    /// keep parsing.
    pub fn from_json(s: &str) -> Result<ServeConfig, String> {
        let mut value: serde_json::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if let serde_json::Value::Object(fields) = &mut value {
            if !fields.iter().any(|(k, _)| k == "observe") {
                let defaults =
                    serde_json::to_value(&ObserveConfig::default()).map_err(|e| e.to_string())?;
                fields.push(("observe".to_owned(), defaults));
            }
        }
        serde_json::from_value(value).map_err(|e| e.to_string())
    }

    /// Full validation: schema and topology sanity, then the fg-analyze
    /// policy gate. Returns every problem, not just the first.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        if self.schema != SERVE_CONFIG_SCHEMA {
            errors.push(format!(
                "unsupported config schema {} (expected {SERVE_CONFIG_SCHEMA})",
                self.schema
            ));
        }
        if self.workers == 0 {
            errors.push("workers must be >= 1".to_owned());
        }
        if self.queue_depth == 0 {
            errors.push("queue_depth must be >= 1".to_owned());
        }
        if self.shards == 0 {
            errors.push("shards must be >= 1".to_owned());
        }
        if self.limits.decide == 0 || self.limits.report == 0 || self.limits.observe == 0 {
            errors.push("endpoint limits must be >= 1".to_owned());
        }
        if self.breaker.failure_threshold == 0 {
            errors.push("breaker.failure_threshold must be >= 1".to_owned());
        }
        if self.observe.flight_recorder_entries == 0 || self.observe.trace_capacity == 0 {
            errors.push("observe ring sizes must be >= 1".to_owned());
        }
        if self.observe.sentinel_poll_ms < 50 {
            errors.push("observe.sentinel_poll_ms must be >= 50".to_owned());
        }
        if self.observe.slow_request_ms == 0 || self.observe.p99_slo_ms == 0 {
            errors.push("observe latency thresholds must be >= 1 ms".to_owned());
        }
        if let Err(diags) = fg_analyze::validate_serve_policy(&self.policy) {
            errors.extend(
                diags
                    .into_iter()
                    .map(|d| format!("policy {}: {} ({})", d.lint, d.message, d.source)),
            );
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Whether `next` may be hot-applied over `self` (boot-only fields
    /// unchanged).
    pub fn hot_compatible(&self, next: &ServeConfig) -> Result<(), String> {
        let mut frozen = Vec::new();
        if self.listen != next.listen {
            frozen.push("listen");
        }
        if self.workers != next.workers {
            frozen.push("workers");
        }
        if self.queue_depth != next.queue_depth {
            frozen.push("queue_depth");
        }
        if self.shards != next.shards {
            frozen.push("shards");
        }
        if self.seed != next.seed {
            frozen.push("seed");
        }
        if self.observe != next.observe {
            frozen.push("observe");
        }
        if frozen.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "boot-only fields changed (restart required): {}",
                frozen.join(", ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_round_trips_and_validates() {
        let c = ServeConfig::recommended();
        assert!(c.validate().is_ok());
        let parsed = ServeConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn analyze_gate_rejects_a_semantically_broken_policy() {
        let mut c = ServeConfig::recommended();
        // Challenge at the block threshold: structurally valid, but the
        // config pass flags challenges as unreachable — the exact shape the
        // CI hot-reload rejection step feeds the watcher.
        c.policy.challenge_threshold = c.policy.block_threshold;
        let errors = c.validate().unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("unreachable-challenge")),
            "{errors:?}"
        );
    }

    #[test]
    fn topology_zeroes_are_rejected() {
        let mut c = ServeConfig::recommended();
        c.workers = 0;
        c.queue_depth = 0;
        let errors = c.validate().unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
    }

    #[test]
    fn pre_observability_configs_parse_with_defaults() {
        let c = ServeConfig::recommended();
        // Strip the observe block to simulate a config written before the
        // observability layer existed.
        let json = c.to_json();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        if let serde_json::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "observe");
        }
        let old = serde_json::to_string(&v).unwrap();
        let parsed = ServeConfig::from_json(&old).unwrap();
        assert_eq!(parsed.observe, ObserveConfig::default());
        assert_eq!(parsed, c);
    }

    #[test]
    fn observe_bounds_are_validated() {
        let mut c = ServeConfig::recommended();
        c.observe.trace_capacity = 0;
        c.observe.sentinel_poll_ms = 0;
        let errors = c.validate().unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
    }

    #[test]
    fn hot_compat_freezes_observe() {
        let boot = ServeConfig::recommended();
        let mut next = boot.clone();
        next.observe.slow_request_ms = 10;
        let err = boot.hot_compatible(&next).unwrap_err();
        assert!(err.contains("observe"), "{err}");
    }

    #[test]
    fn hot_compat_freezes_topology_fields() {
        let boot = ServeConfig::recommended();
        let mut next = boot.clone();
        next.limits.decide = 16;
        assert!(boot.hot_compatible(&next).is_ok());
        next.workers = 8;
        let err = boot.hot_compatible(&next).unwrap_err();
        assert!(err.contains("workers"), "{err}");
    }
}
