//! The HTTP server: accept loop, fixed worker pool, bounded hand-off
//! queue, per-endpoint load shedding, config watcher, and graceful drain.
//!
//! Threading model: one accept thread pushes connections into a bounded
//! `sync_channel`; `workers` threads pull and drive keep-alive sessions.
//! A full queue sheds the connection with `429` instead of letting it
//! queue invisibly. Workers poll the drain flag between requests (reads
//! time out every 250 ms), so a `SIGTERM` finishes in-flight exchanges,
//! answers nothing new, and exits once the pool is idle.

use crate::breaker::CircuitBreaker;
use crate::config::{EndpointLimits, ServeConfig};
use crate::http::{self, Limits, ParseError, Request, Response};
use crate::service::{DecisionService, OutcomeReport};
use fg_scenario::workload::WireRequest;
use fg_telemetry::metrics::Counter;
use fg_telemetry::Telemetry;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake to poll the drain flag.
const READ_POLL: Duration = Duration::from_millis(250);
/// Idle keep-alive connections are closed after this long without a byte.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(10);
/// Config watcher poll cadence.
const WATCH_POLL: Duration = Duration::from_millis(300);

/// Endpoint classes for metrics and concurrency accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Decide,
    Report,
    Observe,
    Other,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Decide => "decide",
            Class::Report => "report",
            Class::Observe => "observe",
            Class::Other => "other",
        }
    }
}

/// Pre-registered per-endpoint/status counters plus the shed/reload
/// tallies — the serving layer's additions to the Prometheus export.
struct HttpMetrics {
    /// `fg_http_requests_total{endpoint, status}`; see `counter()` for the
    /// registered status buckets.
    requests: Vec<((&'static str, u16), Counter)>,
    shed: Counter,
    connections: Counter,
    reload_applied: Counter,
    reload_rejected: Counter,
}

const STATUS_BUCKETS: &[u16] = &[200, 400, 404, 405, 408, 413, 429, 431, 500, 503];

impl HttpMetrics {
    fn register(telemetry: &Telemetry) -> Self {
        let registry = telemetry.metrics();
        registry.set_help(
            "fg_http_requests_total",
            "HTTP responses sent, by endpoint class and status",
        );
        registry.set_help(
            "fg_http_shed_total",
            "Connections shed on a full accept queue",
        );
        registry.set_help("fg_http_connections_total", "Connections accepted");
        registry.set_help(
            "fg_config_reload_total",
            "Config hot-reload attempts, by outcome",
        );
        let mut requests = Vec::new();
        for class in [Class::Decide, Class::Report, Class::Observe, Class::Other] {
            for &status in STATUS_BUCKETS {
                let status_str = status.to_string();
                requests.push((
                    (class.label(), status),
                    registry.counter_with(
                        "fg_http_requests_total",
                        &[("endpoint", class.label()), ("status", status_str.as_str())],
                    ),
                ));
            }
        }
        HttpMetrics {
            requests,
            shed: registry.counter("fg_http_shed_total"),
            connections: registry.counter("fg_http_connections_total"),
            reload_applied: registry
                .counter_with("fg_config_reload_total", &[("outcome", "applied")]),
            reload_rejected: registry
                .counter_with("fg_config_reload_total", &[("outcome", "rejected")]),
        }
    }

    fn on_response(&self, class: Class, status: u16) {
        // Unlisted codes fold into the nearest registered bucket's class
        // row via exact match only — every code the server emits is listed.
        if let Some((_, c)) = self
            .requests
            .iter()
            .find(|((l, s), _)| *l == class.label() && *s == status)
        {
            c.inc();
        }
    }
}

/// One endpoint's concurrency gate: an atomic in-flight count against a
/// hot-reloadable ceiling.
struct Gate {
    in_flight: AtomicUsize,
    limit: AtomicUsize,
}

impl Gate {
    fn new(limit: usize) -> Self {
        Gate {
            in_flight: AtomicUsize::new(0),
            limit: AtomicUsize::new(limit),
        }
    }

    /// Acquires a slot or reports saturation. Release by decrementing.
    fn try_acquire(&self) -> bool {
        let limit = self.limit.load(Ordering::Relaxed);
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Gates {
    decide: Gate,
    report: Gate,
    observe: Gate,
}

impl Gates {
    fn new(limits: EndpointLimits) -> Self {
        Gates {
            decide: Gate::new(limits.decide),
            report: Gate::new(limits.report),
            observe: Gate::new(limits.observe),
        }
    }

    fn set(&self, limits: EndpointLimits) {
        self.decide.limit.store(limits.decide, Ordering::Relaxed);
        self.report.limit.store(limits.report, Ordering::Relaxed);
        self.observe.limit.store(limits.observe, Ordering::Relaxed);
    }

    fn for_class(&self, class: Class) -> Option<&Gate> {
        match class {
            Class::Decide => Some(&self.decide),
            Class::Report => Some(&self.report),
            Class::Observe => Some(&self.observe),
            Class::Other => None,
        }
    }
}

/// Everything the workers and watcher share.
pub struct ServeState {
    service: DecisionService,
    telemetry: Arc<Telemetry>,
    metrics: HttpMetrics,
    breaker: CircuitBreaker,
    gates: Gates,
    limits: Limits,
    draining: AtomicBool,
    /// Monotone config generation; bumped on every applied hot-reload.
    generation: AtomicU64,
    /// Human-readable outcome of the last reload attempt.
    last_reload: Mutex<String>,
    /// The currently effective config (hot fields updated on apply).
    active: Mutex<ServeConfig>,
}

impl ServeState {
    fn new(config: ServeConfig, telemetry: Arc<Telemetry>) -> Self {
        ServeState {
            service: DecisionService::new(&config, telemetry.clone()),
            metrics: HttpMetrics::register(&telemetry),
            telemetry,
            breaker: CircuitBreaker::new(config.breaker),
            gates: Gates::new(config.limits),
            limits: Limits::default(),
            draining: AtomicBool::new(false),
            generation: AtomicU64::new(1),
            last_reload: Mutex::new("boot".to_owned()),
            active: Mutex::new(config),
        }
    }

    /// The decision core (for in-process tests and benches).
    pub fn service(&self) -> &DecisionService {
        &self.service
    }

    /// Applied-config generation (1 at boot).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Outcome of the last hot-reload attempt.
    pub fn last_reload(&self) -> String {
        self.last_reload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Attempts to hot-apply `candidate`; returns the outcome string that
    /// `/readyz` surfaces. Validation failures leave everything untouched.
    pub fn try_reload(&self, raw: &str) -> Result<u64, String> {
        let outcome = self.reload_inner(raw);
        let mut last = self.last_reload.lock().unwrap_or_else(|e| e.into_inner());
        match &outcome {
            Ok(generation) => {
                self.metrics.reload_applied.inc();
                *last = format!("applied (generation {generation})");
            }
            Err(why) => {
                self.metrics.reload_rejected.inc();
                *last = format!("rejected: {why}");
            }
        }
        outcome
    }

    fn reload_inner(&self, raw: &str) -> Result<u64, String> {
        let candidate = ServeConfig::from_json(raw).map_err(|e| format!("parse: {e}"))?;
        candidate
            .validate()
            .map_err(|errors| format!("validation: {}", errors.join("; ")))?;
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        active.hot_compatible(&candidate)?;
        // Point of no return: apply hot fields atomically under the lock.
        self.service.replace_policy(candidate.policy.clone());
        self.gates.set(candidate.limits);
        self.breaker.reconfigure(candidate.breaker);
        active.policy = candidate.policy;
        active.limits = candidate.limits;
        active.breaker = candidate.breaker;
        Ok(self.generation.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn route(&self, req: &Request) -> Response {
        let (class, response) = self.route_inner(req);
        self.metrics.on_response(class, response.status);
        response
    }

    fn route_inner(&self, req: &Request) -> (Class, Response) {
        let class = match req.target.as_str() {
            "/v1/decide" => Class::Decide,
            "/v1/report" => Class::Report,
            "/metrics" | "/healthz" | "/readyz" => Class::Observe,
            _ => Class::Other,
        };
        if let Some(gate) = self.gates.for_class(class) {
            if !gate.try_acquire() {
                return (class, Response::error(429, "endpoint concurrency limit"));
            }
        }
        let response = self.dispatch(class, req);
        if let Some(gate) = self.gates.for_class(class) {
            gate.release();
        }
        (class, response)
    }

    fn dispatch(&self, class: Class, req: &Request) -> Response {
        match (req.method.as_str(), req.target.as_str()) {
            ("GET", "/healthz") => Response::json(200, &b"{\"ok\":true}"[..]),
            ("GET", "/readyz") => self.readyz(),
            ("GET", "/metrics") => Response::text(200, self.telemetry.snapshot().to_prometheus()),
            ("POST", "/v1/decide") => self.decide(req),
            ("POST", "/v1/report") => self.report(req),
            (_, "/healthz" | "/readyz" | "/metrics" | "/v1/decide" | "/v1/report") => {
                Response::error(405, "method not allowed")
            }
            _ => {
                let _ = class;
                Response::error(404, "no such endpoint")
            }
        }
    }

    fn readyz(&self) -> Response {
        use serde_json::Value;
        let draining = self.draining();
        let body = Value::Object(vec![
            ("ready".to_owned(), Value::Bool(!draining)),
            ("draining".to_owned(), Value::Bool(draining)),
            (
                "config_generation".to_owned(),
                Value::UInt(self.generation()),
            ),
            ("last_reload".to_owned(), Value::String(self.last_reload())),
            (
                "breaker".to_owned(),
                Value::String(self.breaker.state_name().to_owned()),
            ),
            (
                "decisions".to_owned(),
                Value::UInt(self.service.decisions()),
            ),
        ]);
        let status = if draining { 503 } else { 200 };
        Response::json(
            status,
            serde_json::to_string(&body)
                .unwrap_or_default()
                .into_bytes(),
        )
    }

    fn decide(&self, req: &Request) -> Response {
        if !self.breaker.try_acquire() {
            return Response::error(503, "decision path circuit open");
        }
        let wire: WireRequest = match std::str::from_utf8(&req.body)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
        {
            Ok(w) => {
                self.breaker.record(true);
                w
            }
            Err(e) => {
                // A bad request body is the client's failure, not the
                // decision path's: record success so 400s never trip the
                // breaker.
                self.breaker.record(true);
                return Response::error(400, &format!("bad decide body: {e}"));
            }
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.service.decide(&wire)))
        {
            Ok(decision) => match serde_json::to_string(&decision) {
                Ok(body) => {
                    self.breaker.record(true);
                    Response::json(200, body.into_bytes())
                }
                Err(e) => {
                    self.breaker.record(false);
                    Response::error(500, &format!("serialize: {e}"))
                }
            },
            Err(_) => {
                self.breaker.record(false);
                Response::error(500, "decision handler panicked")
            }
        }
    }

    fn report(&self, req: &Request) -> Response {
        let outcome: OutcomeReport = match std::str::from_utf8(&req.body)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
        {
            Ok(o) => o,
            Err(e) => return Response::error(400, &format!("bad report body: {e}")),
        };
        match self.service.report(&outcome) {
            Ok(ack) => Response::json(
                200,
                serde_json::to_string(&ack).unwrap_or_default().into_bytes(),
            ),
            Err(why) => Response::error(400, &why),
        }
    }
}

/// A drain summary, for the shutdown log line and exit-code decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// All workers exited before the deadline.
    pub clean: bool,
    /// Workers still busy at the deadline (0 when `clean`).
    pub stragglers: usize,
}

/// A running server: accept thread + worker pool (+ optional watcher).
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    finished_workers: Arc<AtomicUsize>,
}

impl Server {
    /// Binds `config.listen` and starts the pool. When `watch` names a
    /// file, it is polled for hot-reloads (the file's current content is
    /// the baseline — only *changes* trigger a reload attempt).
    pub fn start(
        config: ServeConfig,
        telemetry: Arc<Telemetry>,
        watch: Option<PathBuf>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers_n = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let state = Arc::new(ServeState::new(config, telemetry));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let finished_workers = Arc::new(AtomicUsize::new(0));

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let rx = rx.clone();
            let state = state.clone();
            let finished = finished_workers.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fg-serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &state);
                        finished.fetch_add(1, Ordering::Release);
                    })
                    // fg-analyze: allow(panic-path): boot-only — worker threads spawn once in start(), before any request is accepted
                    .expect("spawn worker"),
            );
        }

        let accept = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("fg-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &tx, &state))
                // fg-analyze: allow(panic-path): boot-only — the accept loop spawns once in start()
                .expect("spawn accept loop")
        };

        let watcher = watch.map(|path| {
            let state = state.clone();
            // Read the baseline *before* returning from start(): anything
            // written to the file after boot is then reliably a change,
            // even if the watcher thread is scheduled late.
            let baseline = std::fs::read_to_string(&path).ok();
            std::thread::Builder::new()
                .name("fg-serve-watch".to_owned())
                .spawn(move || watch_loop(&path, baseline, &state))
                // fg-analyze: allow(panic-path): boot-only — the config watcher spawns once in start()
                .expect("spawn config watcher")
        });

        Ok(Server {
            state,
            addr,
            accept: Some(accept),
            workers,
            watcher,
            finished_workers,
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process tests.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Flags the drain: accepting stops, keep-alive connections close
    /// after their in-flight exchange. Idempotent.
    pub fn begin_shutdown(&self) {
        self.state.draining.store(true, Ordering::Relaxed);
    }

    /// Waits up to `deadline` for the pool to finish, then reports. Call
    /// after [`Server::begin_shutdown`]; also safe on a failed boot.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        self.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join(); // exits within one accept poll
        }
        // Accept thread gone → its queue sender is dropped → workers see
        // the channel close once drained. Poll their exit count.
        let start = Instant::now();
        let total = self.workers.len();
        while self.finished_workers.load(Ordering::Acquire) < total && start.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let finished = self.finished_workers.load(Ordering::Acquire);
        for w in self.workers.drain(..) {
            if self.finished_workers.load(Ordering::Acquire) >= total {
                let _ = w.join();
            } else {
                // Straggler past deadline: abandon the join; the process
                // is exiting anyway and the report says so.
                drop(w);
            }
        }
        if let Some(watch) = self.watcher.take() {
            let _ = watch.join(); // watcher polls the drain flag too
        }
        DrainReport {
            clean: finished >= total,
            stragglers: total - finished.min(total),
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, state: &Arc<ServeState>) {
    loop {
        if state.draining() {
            return; // drops tx → workers drain the queue and exit
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections.inc();
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => shed(stream, state),
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Queue full: answer 429 from the accept thread and close. Short write
/// timeout so a slow-reading client cannot stall accepting.
fn shed(stream: TcpStream, state: &Arc<ServeState>) {
    state.metrics.shed.inc();
    state.metrics.on_response(Class::Other, 429);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut stream = stream;
    let _ = Response::error(429, "server saturated, retry later")
        .closing()
        .write_to(&mut stream);
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<ServeState>) {
    loop {
        // Hold the lock only for the dequeue itself. A blocking recv would
        // pin the mutex while idle, so poll with a timeout: other workers
        // get their turn and everyone notices channel close / drain.
        let conn = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(Duration::from_millis(100))
        };
        match conn {
            Ok(stream) => handle_connection(stream, state),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if state.draining() {
                    // Queue may still hold work; only exit once empty.
                    let empty = {
                        let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                        match rx.try_recv() {
                            Ok(stream) => {
                                drop(rx);
                                handle_connection(stream, state);
                                false
                            }
                            Err(_) => true,
                        }
                    };
                    if empty {
                        return;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServeState>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut idle_since = Instant::now();
    loop {
        match http::read_request(&mut reader, &state.limits) {
            Ok(request) => {
                idle_since = Instant::now();
                let mut response = state.route(&request);
                let draining = state.draining();
                if !request.wants_keep_alive() || draining {
                    response.close = true;
                }
                if response.write_to(&mut writer).is_err() {
                    return;
                }
                if response.close {
                    return;
                }
            }
            Err(ParseError::IdleTimeout) => {
                if state.draining() || idle_since.elapsed() >= KEEP_ALIVE_IDLE {
                    return;
                }
            }
            Err(ParseError::IdleEof) => return,
            Err(err) => {
                if let Some((status, why)) = err.status() {
                    state.metrics.on_response(Class::Other, status);
                    let _ = Response::error(status, why).closing().write_to(&mut writer);
                }
                return;
            }
        }
    }
}

fn watch_loop(path: &std::path::Path, baseline: Option<String>, state: &Arc<ServeState>) {
    let mut last_seen = baseline;
    while !state.draining() {
        std::thread::sleep(WATCH_POLL);
        let Ok(current) = std::fs::read_to_string(path) else {
            continue; // transient: editor mid-swap, file momentarily gone
        };
        if last_seen.as_deref() == Some(current.as_str()) {
            continue;
        }
        last_seen = Some(current.clone());
        let _ = state.try_reload(&current);
    }
}
