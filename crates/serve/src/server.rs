//! The HTTP server: accept loop, fixed worker pool, bounded hand-off
//! queue, per-endpoint load shedding, config watcher, and graceful drain.
//!
//! Threading model: one accept thread pushes connections into a bounded
//! `sync_channel`; `workers` threads pull and drive keep-alive sessions.
//! A full queue sheds the connection with `429` instead of letting it
//! queue invisibly. Workers poll the drain flag between requests (reads
//! time out every 250 ms), so a `SIGTERM` finishes in-flight exchanges,
//! answers nothing new, and exits once the pool is idle.

use crate::breaker::CircuitBreaker;
use crate::config::{EndpointLimits, ObserveConfig, ServeConfig};
use crate::http::{self, Limits, ParseError, Request, Response};
use crate::observe::{
    path_of, query_param, serve_slo_policy, FlightRecorder, RequestSummary, TraceParent,
};
use crate::service::{DecisionService, OutcomeReport};
use fg_core::time::SimTime;
use fg_scenario::workload::WireRequest;
use fg_sentinel::Sentinel;
use fg_telemetry::metrics::{Counter, Gauge, Latency};
use fg_telemetry::trace::TraceConfig;
use fg_telemetry::{HistSnapshot, RequestTrace, Telemetry};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake to poll the drain flag.
const READ_POLL: Duration = Duration::from_millis(250);
/// Idle keep-alive connections are closed after this long without a byte.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(10);
/// Config watcher poll cadence.
const WATCH_POLL: Duration = Duration::from_millis(300);

/// Endpoint classes for metrics and concurrency accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Decide,
    Report,
    Observe,
    Other,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Decide => "decide",
            Class::Report => "report",
            Class::Observe => "observe",
            Class::Other => "other",
        }
    }
}

/// Pre-registered per-endpoint/status counters plus the shed/reload
/// tallies — the serving layer's additions to the Prometheus export.
struct HttpMetrics {
    /// `fg_http_requests_total{endpoint, status}`; see `counter()` for the
    /// registered status buckets.
    requests: Vec<((&'static str, u16), Counter)>,
    /// `fg_http_request_duration_seconds{endpoint, status}` — log-linear
    /// latency histograms, same (class, status) grid as the counters.
    latency: Vec<((&'static str, u16), Latency)>,
    /// `fg_http_request_p99_seconds{endpoint}` — refreshed by the sentinel
    /// tick from the merged per-endpoint histograms.
    p99: Vec<(&'static str, Gauge)>,
    /// Aggregate 5xx counter the `serve-5xx-burn` alert watches.
    errors_5xx: Counter,
    /// Breaker trips mirrored as a counter for the sentinel (the breaker
    /// itself only exposes a load-time value).
    breaker_trips: Counter,
    /// Alerts currently firing in the embedded sentinel.
    active_alerts: Gauge,
    shed: Counter,
    connections: Counter,
    reload_applied: Counter,
    reload_rejected: Counter,
}

const STATUS_BUCKETS: &[u16] = &[200, 400, 404, 405, 408, 413, 429, 431, 500, 503];

impl HttpMetrics {
    fn register(telemetry: &Telemetry) -> Self {
        let registry = telemetry.metrics();
        registry.set_help(
            "fg_http_requests_total",
            "HTTP responses sent, by endpoint class and status",
        );
        registry.set_help(
            "fg_http_shed_total",
            "Connections shed on a full accept queue",
        );
        registry.set_help("fg_http_connections_total", "Connections accepted");
        registry.set_help(
            "fg_config_reload_total",
            "Config hot-reload attempts, by outcome",
        );
        registry.set_help(
            "fg_http_request_duration_seconds",
            "Request service latency by endpoint class and status (log-linear histogram)",
        );
        registry.set_help(
            "fg_http_request_p99_seconds",
            "Served p99 latency per endpoint class over the process lifetime",
        );
        registry.set_help("fg_http_5xx_total", "Server-error (5xx) responses sent");
        registry.set_help(
            "fg_serve_breaker_trips_total",
            "Circuit-breaker open transitions since boot",
        );
        registry.set_help(
            "fg_serve_active_alerts",
            "Serve-SLO alerts currently firing in the embedded sentinel",
        );
        let mut requests = Vec::new();
        let mut latency = Vec::new();
        let mut p99 = Vec::new();
        for class in [Class::Decide, Class::Report, Class::Observe, Class::Other] {
            for &status in STATUS_BUCKETS {
                let status_str = status.to_string();
                requests.push((
                    (class.label(), status),
                    registry.counter_with(
                        "fg_http_requests_total",
                        &[("endpoint", class.label()), ("status", status_str.as_str())],
                    ),
                ));
                latency.push((
                    (class.label(), status),
                    registry.latency_with(
                        "fg_http_request_duration_seconds",
                        &[("endpoint", class.label()), ("status", status_str.as_str())],
                    ),
                ));
            }
            p99.push((
                class.label(),
                registry.gauge_with(
                    "fg_http_request_p99_seconds",
                    &[("endpoint", class.label())],
                ),
            ));
        }
        HttpMetrics {
            requests,
            latency,
            p99,
            errors_5xx: registry.counter("fg_http_5xx_total"),
            breaker_trips: registry.counter("fg_serve_breaker_trips_total"),
            active_alerts: registry.gauge("fg_serve_active_alerts"),
            shed: registry.counter("fg_http_shed_total"),
            connections: registry.counter("fg_http_connections_total"),
            reload_applied: registry
                .counter_with("fg_config_reload_total", &[("outcome", "applied")]),
            reload_rejected: registry
                .counter_with("fg_config_reload_total", &[("outcome", "rejected")]),
        }
    }

    fn on_response(&self, class: Class, status: u16) {
        // Unlisted codes fold into the nearest registered bucket's class
        // row via exact match only — every code the server emits is listed.
        if let Some((_, c)) = self
            .requests
            .iter()
            .find(|((l, s), _)| *l == class.label() && *s == status)
        {
            c.inc();
        }
        if status >= 500 {
            self.errors_5xx.inc();
        }
    }

    /// The latency histogram for this (class, status) cell, when registered.
    fn latency_for(&self, class: Class, status: u16) -> Option<&Latency> {
        self.latency
            .iter()
            .find(|((l, s), _)| *l == class.label() && *s == status)
            .map(|(_, h)| h)
    }
}

/// One endpoint's concurrency gate: an atomic in-flight count against a
/// hot-reloadable ceiling.
struct Gate {
    in_flight: AtomicUsize,
    limit: AtomicUsize,
}

impl Gate {
    fn new(limit: usize) -> Self {
        Gate {
            in_flight: AtomicUsize::new(0),
            limit: AtomicUsize::new(limit),
        }
    }

    /// Acquires a slot or reports saturation. Release by decrementing.
    fn try_acquire(&self) -> bool {
        let limit = self.limit.load(Ordering::Relaxed);
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Gates {
    decide: Gate,
    report: Gate,
    observe: Gate,
}

impl Gates {
    fn new(limits: EndpointLimits) -> Self {
        Gates {
            decide: Gate::new(limits.decide),
            report: Gate::new(limits.report),
            observe: Gate::new(limits.observe),
        }
    }

    fn set(&self, limits: EndpointLimits) {
        self.decide.limit.store(limits.decide, Ordering::Relaxed);
        self.report.limit.store(limits.report, Ordering::Relaxed);
        self.observe.limit.store(limits.observe, Ordering::Relaxed);
    }

    fn for_class(&self, class: Class) -> Option<&Gate> {
        match class {
            Class::Decide => Some(&self.decide),
            Class::Report => Some(&self.report),
            Class::Observe => Some(&self.observe),
            Class::Other => None,
        }
    }
}

/// Everything the workers and watcher share.
pub struct ServeState {
    service: DecisionService,
    telemetry: Arc<Telemetry>,
    metrics: HttpMetrics,
    breaker: CircuitBreaker,
    gates: Gates,
    limits: Limits,
    observe: ObserveConfig,
    /// Wall-clock origin every `boot_ms` timestamp is relative to.
    boot: Instant,
    /// Monotone per-boot request sequence (flight-recorder ordering).
    request_seq: AtomicU64,
    /// Breaker trip count at the last request, for freeze-on-trip edges.
    seen_trips: AtomicU64,
    flight: Mutex<FlightRecorder>,
    sentinel: Mutex<Sentinel>,
    draining: AtomicBool,
    /// Monotone config generation; bumped on every applied hot-reload.
    generation: AtomicU64,
    /// Human-readable outcome of the last reload attempt.
    last_reload: Mutex<String>,
    /// The currently effective config (hot fields updated on apply).
    active: Mutex<ServeConfig>,
}

/// What `decide()` hands to the response observer: the decision identity
/// plus the still-open request trace to append transport spans to.
struct DecideMeta {
    trace_id: u64,
    decision: String,
    trace: Option<RequestTrace>,
}

impl ServeState {
    fn new(config: ServeConfig, telemetry: Arc<Telemetry>) -> Self {
        // The live tracer ring: bounded, always on for the serving layer so
        // `/debug/traces` and the `/metrics` exemplars resolve from boot.
        telemetry.enable_tracing(TraceConfig {
            capacity: config.observe.trace_capacity,
            ..TraceConfig::default()
        });
        let sentinel = Sentinel::new(serve_slo_policy(&config.observe), telemetry.metrics());
        ServeState {
            service: DecisionService::new(&config, telemetry.clone()),
            metrics: HttpMetrics::register(&telemetry),
            sentinel: Mutex::new(sentinel),
            telemetry,
            breaker: CircuitBreaker::new(config.breaker),
            gates: Gates::new(config.limits),
            limits: Limits::default(),
            observe: config.observe,
            boot: Instant::now(),
            request_seq: AtomicU64::new(0),
            seen_trips: AtomicU64::new(0),
            flight: Mutex::new(FlightRecorder::new(config.observe.flight_recorder_entries)),
            draining: AtomicBool::new(false),
            generation: AtomicU64::new(1),
            last_reload: Mutex::new("boot".to_owned()),
            active: Mutex::new(config),
        }
    }

    /// Milliseconds since boot — the serve sentinel's sim-time axis and
    /// every flight-recorder timestamp.
    fn boot_ms(&self) -> u64 {
        self.boot.elapsed().as_millis() as u64
    }

    /// The decision core (for in-process tests and benches).
    pub fn service(&self) -> &DecisionService {
        &self.service
    }

    /// Applied-config generation (1 at boot).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Outcome of the last hot-reload attempt.
    pub fn last_reload(&self) -> String {
        self.last_reload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Attempts to hot-apply `candidate`; returns the outcome string that
    /// `/readyz` surfaces. Validation failures leave everything untouched.
    pub fn try_reload(&self, raw: &str) -> Result<u64, String> {
        let outcome = self.reload_inner(raw);
        let mut last = self.last_reload.lock().unwrap_or_else(|e| e.into_inner());
        match &outcome {
            Ok(generation) => {
                self.metrics.reload_applied.inc();
                *last = format!("applied (generation {generation})");
            }
            Err(why) => {
                self.metrics.reload_rejected.inc();
                *last = format!("rejected: {why}");
            }
        }
        outcome
    }

    fn reload_inner(&self, raw: &str) -> Result<u64, String> {
        let candidate = ServeConfig::from_json(raw).map_err(|e| format!("parse: {e}"))?;
        candidate
            .validate()
            .map_err(|errors| format!("validation: {}", errors.join("; ")))?;
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        active.hot_compatible(&candidate)?;
        // Point of no return: apply hot fields atomically under the lock.
        self.service.replace_policy(candidate.policy.clone());
        self.gates.set(candidate.limits);
        self.breaker.reconfigure(candidate.breaker);
        active.policy = candidate.policy;
        active.limits = candidate.limits;
        active.breaker = candidate.breaker;
        Ok(self.generation.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn route(&self, req: &Request) -> Response {
        let started = Instant::now();
        let (class, response, meta) = self.route_inner(req);
        self.metrics.on_response(class, response.status);
        self.observe_response(class, req, response, started.elapsed(), meta)
    }

    fn route_inner(&self, req: &Request) -> (Class, Response, Option<DecideMeta>) {
        let class = match path_of(&req.target) {
            "/v1/decide" => Class::Decide,
            "/v1/report" => Class::Report,
            "/metrics"
            | "/healthz"
            | "/readyz"
            | "/debug/traces"
            | "/debug/flightrecorder"
            | "/debug/alerts" => Class::Observe,
            _ => Class::Other,
        };
        if let Some(gate) = self.gates.for_class(class) {
            if !gate.try_acquire() {
                return (
                    class,
                    Response::error(429, "endpoint concurrency limit"),
                    None,
                );
            }
        }
        let (response, meta) = self.dispatch(class, req);
        if let Some(gate) = self.gates.for_class(class) {
            gate.release();
        }
        (class, response, meta)
    }

    fn dispatch(&self, class: Class, req: &Request) -> (Response, Option<DecideMeta>) {
        let response = match (req.method.as_str(), path_of(&req.target)) {
            ("GET", "/healthz") => Response::json(200, &b"{\"ok\":true}"[..]),
            ("GET", "/readyz") => self.readyz(),
            ("GET", "/metrics") => Response::text(200, self.telemetry.snapshot().to_prometheus()),
            ("GET", "/debug/traces") => self.debug_traces(req),
            ("GET", "/debug/flightrecorder") => self.debug_flightrecorder(),
            ("GET", "/debug/alerts") => self.debug_alerts(),
            ("POST", "/v1/decide") => return self.decide(req),
            ("POST", "/v1/report") => self.report(req),
            (
                _,
                "/healthz"
                | "/readyz"
                | "/metrics"
                | "/v1/decide"
                | "/v1/report"
                | "/debug/traces"
                | "/debug/flightrecorder"
                | "/debug/alerts",
            ) => Response::error(405, "method not allowed"),
            _ => {
                let _ = class;
                Response::error(404, "no such endpoint")
            }
        };
        (response, None)
    }

    /// Everything observability learns from one finished exchange: the
    /// latency histogram cell (with an exemplar when the request is worth
    /// retrieving), the flight-recorder ring, breaker-trip freezes, the
    /// trace submission with its transport span, and the `traceparent`
    /// echo.
    fn observe_response(
        &self,
        class: Class,
        req: &Request,
        mut response: Response,
        elapsed: Duration,
        meta: Option<DecideMeta>,
    ) -> Response {
        let status = response.status;
        let slow = elapsed >= Duration::from_millis(self.observe.slow_request_ms);
        let decision_label = meta.as_ref().map(|m| m.decision.clone());
        let important =
            slow || status >= 500 || decision_label.as_deref().is_some_and(|d| d != "allow");
        let trace_id = meta.as_ref().map_or(0, |m| m.trace_id);

        if let Some(hist) = self.metrics.latency_for(class, status) {
            if important {
                // trace_id 0 (untraced request) is ignored by the recorder.
                hist.record_with_exemplar(elapsed, trace_id);
            } else {
                hist.record(elapsed);
            }
        }

        // Wire trace correlation: parse the caller's traceparent, echo the
        // same trace id back with our decision trace id as the parent span,
        // and stamp the wire ids onto the submitted trace. The decision
        // core's own trace id is never derived from the wire — decisions
        // stay byte-identical with and without the header.
        let wire = req.header("traceparent").and_then(TraceParent::parse);
        if let Some(w) = &wire {
            let seq_hint = self.request_seq.load(Ordering::Relaxed);
            let span = if trace_id != 0 { trace_id } else { seq_hint };
            response = response.with_header("traceparent", w.echo(span));
        }

        if let Some(mut tr) = meta.and_then(|m| m.trace) {
            let span = tr.stage("serve.http");
            tr.attr(span, "status", status);
            tr.attr(span, "latency_us", elapsed.as_micros());
            tr.attr(span, "endpoint", class.label());
            if let Some(w) = &wire {
                tr.attr(span, "wire.trace_id", &w.trace_id_hex);
                tr.attr(span, "wire.parent_id", format_args!("{:016x}", w.parent_id));
            }
            if slow || status >= 500 {
                tr.pin();
            }
            self.telemetry.record_trace(tr);
        }

        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let summary = RequestSummary {
            seq,
            boot_ms: self.boot_ms(),
            endpoint: class.label().to_owned(),
            request: format!("{} {}", req.method, path_of(&req.target)),
            status,
            decision: decision_label,
            trace_id: (trace_id != 0).then(|| format!("{trace_id:016x}")),
            latency_us: elapsed.as_micros() as u64,
            slow,
        };
        {
            let mut flight = self.flight.lock().unwrap_or_else(|e| e.into_inner());
            flight.record(summary);
            // Freeze on the breaker-open edge, so the requests that tripped
            // it stay retrievable.
            let trips = self.breaker.trips();
            let seen = self.seen_trips.swap(trips, Ordering::Relaxed);
            if trips > seen {
                flight.freeze("breaker-open", self.boot_ms());
            }
        }
        response
    }

    /// `GET /debug/traces[?trace_id=<16 hex>]`: the live tracer ring —
    /// sampling accounting, retained trace ids, and the spans themselves
    /// (optionally restricted to one trace).
    fn debug_traces(&self, req: &Request) -> Response {
        use serde_json::Value;
        let snapshot = self.telemetry.trace_snapshot();
        let filter = query_param(&req.target, "trace_id")
            .map(|raw| u64::from_str_radix(raw, 16).map_err(|_| raw));
        let wanted = match filter {
            None => None,
            Some(Ok(id)) => Some(id),
            Some(Err(raw)) => {
                return Response::error(400, &format!("trace_id must be hex, got {raw:?}"))
            }
        };
        let retained: Vec<Value> = snapshot
            .request_trace_ids()
            .iter()
            .map(|id| Value::String(format!("{id:016x}")))
            .collect();
        let spans: Vec<&fg_telemetry::SpanRecord> = snapshot
            .spans
            .iter()
            .filter(|s| wanted.is_none_or(|id| s.trace_id == id))
            .collect();
        let body = Value::Object(vec![
            ("submitted".to_owned(), Value::UInt(snapshot.submitted)),
            ("kept".to_owned(), Value::UInt(snapshot.kept)),
            ("sampled_out".to_owned(), Value::UInt(snapshot.sampled_out)),
            ("evicted".to_owned(), Value::UInt(snapshot.evicted)),
            ("retained".to_owned(), Value::Array(retained)),
            (
                "spans".to_owned(),
                serde_json::to_value(&spans).unwrap_or(Value::Null),
            ),
        ]);
        match serde_json::to_string(&body) {
            Ok(json) => Response::json(200, json.into_bytes()),
            Err(e) => Response::error(500, &format!("serialize: {e}")),
        }
    }

    /// `GET /debug/flightrecorder`: the rolling last-N request ring plus
    /// the frozen copy captured at the first breaker-trip/shed incident.
    fn debug_flightrecorder(&self) -> Response {
        let snapshot = {
            let flight = self.flight.lock().unwrap_or_else(|e| e.into_inner());
            flight.snapshot()
        };
        match serde_json::to_string(&snapshot) {
            Ok(json) => Response::json(200, json.into_bytes()),
            Err(e) => Response::error(500, &format!("serialize: {e}")),
        }
    }

    /// `GET /debug/alerts`: the embedded sentinel's policy, currently
    /// firing count, and full lifecycle event history.
    fn debug_alerts(&self) -> Response {
        use serde_json::Value;
        let (policy, active, events) = {
            let sentinel = self.sentinel.lock().unwrap_or_else(|e| e.into_inner());
            (
                serde_json::to_value(sentinel.policy()).unwrap_or(Value::Null),
                sentinel.active_alerts(),
                serde_json::to_value(&sentinel.events().to_vec()).unwrap_or(Value::Null),
            )
        };
        let body = Value::Object(vec![
            ("active".to_owned(), Value::UInt(active)),
            ("events".to_owned(), events),
            ("policy".to_owned(), policy),
        ]);
        match serde_json::to_string(&body) {
            Ok(json) => Response::json(200, json.into_bytes()),
            Err(e) => Response::error(500, &format!("serialize: {e}")),
        }
    }

    fn readyz(&self) -> Response {
        use serde_json::Value;
        let draining = self.draining();
        let body = Value::Object(vec![
            ("ready".to_owned(), Value::Bool(!draining)),
            ("draining".to_owned(), Value::Bool(draining)),
            (
                "config_generation".to_owned(),
                Value::UInt(self.generation()),
            ),
            ("last_reload".to_owned(), Value::String(self.last_reload())),
            (
                "breaker".to_owned(),
                Value::String(self.breaker.state_name().to_owned()),
            ),
            (
                "decisions".to_owned(),
                Value::UInt(self.service.decisions()),
            ),
        ]);
        let status = if draining { 503 } else { 200 };
        Response::json(
            status,
            serde_json::to_string(&body)
                .unwrap_or_default()
                .into_bytes(),
        )
    }

    fn decide(&self, req: &Request) -> (Response, Option<DecideMeta>) {
        if !self.breaker.try_acquire() {
            return (Response::error(503, "decision path circuit open"), None);
        }
        let wire: WireRequest = match std::str::from_utf8(&req.body)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
        {
            Ok(w) => {
                self.breaker.record(true);
                w
            }
            Err(e) => {
                // A bad request body is the client's failure, not the
                // decision path's: record success so 400s never trip the
                // breaker.
                self.breaker.record(true);
                return (Response::error(400, &format!("bad decide body: {e}")), None);
            }
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.service.decide_traced(&wire)
        })) {
            Ok((decision, trace)) => match serde_json::to_string(&decision) {
                Ok(body) => {
                    self.breaker.record(true);
                    let meta = DecideMeta {
                        trace_id: decision.trace_id,
                        decision: decision.decision.to_string(),
                        trace,
                    };
                    (Response::json(200, body.into_bytes()), Some(meta))
                }
                Err(e) => {
                    self.breaker.record(false);
                    (Response::error(500, &format!("serialize: {e}")), None)
                }
            },
            Err(_) => {
                self.breaker.record(false);
                (Response::error(500, "decision handler panicked"), None)
            }
        }
    }

    fn report(&self, req: &Request) -> Response {
        let outcome: OutcomeReport = match std::str::from_utf8(&req.body)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
        {
            Ok(o) => o,
            Err(e) => return Response::error(400, &format!("bad report body: {e}")),
        };
        match self.service.report(&outcome) {
            Ok(ack) => Response::json(
                200,
                serde_json::to_string(&ack).unwrap_or_default().into_bytes(),
            ),
            Err(why) => Response::error(400, &why),
        }
    }
}

/// A drain summary, for the shutdown log line and exit-code decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// All workers exited before the deadline.
    pub clean: bool,
    /// Workers still busy at the deadline (0 when `clean`).
    pub stragglers: usize,
}

/// A running server: accept thread + worker pool (+ optional watcher).
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    sentinel: Option<JoinHandle<()>>,
    finished_workers: Arc<AtomicUsize>,
}

impl Server {
    /// Binds `config.listen` and starts the pool. When `watch` names a
    /// file, it is polled for hot-reloads (the file's current content is
    /// the baseline — only *changes* trigger a reload attempt).
    pub fn start(
        config: ServeConfig,
        telemetry: Arc<Telemetry>,
        watch: Option<PathBuf>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers_n = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let state = Arc::new(ServeState::new(config, telemetry));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let finished_workers = Arc::new(AtomicUsize::new(0));

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let rx = rx.clone();
            let state = state.clone();
            let finished = finished_workers.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fg-serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &state);
                        finished.fetch_add(1, Ordering::Release);
                    })
                    // fg-analyze: allow(panic-path): boot-only — worker threads spawn once in start(), before any request is accepted
                    .expect("spawn worker"),
            );
        }

        let accept = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("fg-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &tx, &state))
                // fg-analyze: allow(panic-path): boot-only — the accept loop spawns once in start()
                .expect("spawn accept loop")
        };

        let sentinel = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("fg-serve-sentinel".to_owned())
                .spawn(move || sentinel_loop(&state))
                // fg-analyze: allow(panic-path): boot-only — the SLO sentinel spawns once in start()
                .expect("spawn sentinel")
        };

        let watcher = watch.map(|path| {
            let state = state.clone();
            // Read the baseline *before* returning from start(): anything
            // written to the file after boot is then reliably a change,
            // even if the watcher thread is scheduled late.
            let baseline = std::fs::read_to_string(&path).ok();
            std::thread::Builder::new()
                .name("fg-serve-watch".to_owned())
                .spawn(move || watch_loop(&path, baseline, &state))
                // fg-analyze: allow(panic-path): boot-only — the config watcher spawns once in start()
                .expect("spawn config watcher")
        });

        Ok(Server {
            state,
            addr,
            accept: Some(accept),
            workers,
            watcher,
            sentinel: Some(sentinel),
            finished_workers,
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process tests.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Flags the drain: accepting stops, keep-alive connections close
    /// after their in-flight exchange. Idempotent.
    pub fn begin_shutdown(&self) {
        self.state.draining.store(true, Ordering::Relaxed);
    }

    /// Waits up to `deadline` for the pool to finish, then reports. Call
    /// after [`Server::begin_shutdown`]; also safe on a failed boot.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        self.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join(); // exits within one accept poll
        }
        // Accept thread gone → its queue sender is dropped → workers see
        // the channel close once drained. Poll their exit count.
        let start = Instant::now();
        let total = self.workers.len();
        while self.finished_workers.load(Ordering::Acquire) < total && start.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let finished = self.finished_workers.load(Ordering::Acquire);
        for w in self.workers.drain(..) {
            if self.finished_workers.load(Ordering::Acquire) >= total {
                let _ = w.join();
            } else {
                // Straggler past deadline: abandon the join; the process
                // is exiting anyway and the report says so.
                drop(w);
            }
        }
        if let Some(watch) = self.watcher.take() {
            let _ = watch.join(); // watcher polls the drain flag too
        }
        if let Some(sentinel) = self.sentinel.take() {
            let _ = sentinel.join(); // sentinel polls the drain flag too
        }
        DrainReport {
            clean: finished >= total,
            stragglers: total - finished.min(total),
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, state: &Arc<ServeState>) {
    loop {
        if state.draining() {
            return; // drops tx → workers drain the queue and exit
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections.inc();
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => shed(stream, state),
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Queue full: answer 429 from the accept thread and close. Short write
/// timeout so a slow-reading client cannot stall accepting. The shed is an
/// incident: it lands in the flight recorder and freezes the ring, so the
/// traffic that saturated the queue stays retrievable afterwards.
fn shed(stream: TcpStream, state: &Arc<ServeState>) {
    state.metrics.shed.inc();
    state.metrics.on_response(Class::Other, 429);
    let seq = state.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let summary = RequestSummary {
        seq,
        boot_ms: state.boot_ms(),
        endpoint: Class::Other.label().to_owned(),
        request: "(shed before parse)".to_owned(),
        status: 429,
        decision: None,
        trace_id: None,
        latency_us: 0,
        slow: false,
    };
    {
        let mut flight = state.flight.lock().unwrap_or_else(|e| e.into_inner());
        flight.record(summary);
        flight.freeze("shed", state.boot_ms());
    }
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut stream = stream;
    let _ = Response::error(429, "server saturated, retry later")
        .closing()
        .write_to(&mut stream);
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<ServeState>) {
    loop {
        // Hold the lock only for the dequeue itself. A blocking recv would
        // pin the mutex while idle, so poll with a timeout: other workers
        // get their turn and everyone notices channel close / drain.
        let conn = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(Duration::from_millis(100))
        };
        match conn {
            Ok(stream) => handle_connection(stream, state),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if state.draining() {
                    // Queue may still hold work; only exit once empty.
                    let empty = {
                        let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                        match rx.try_recv() {
                            Ok(stream) => {
                                drop(rx);
                                handle_connection(stream, state);
                                false
                            }
                            Err(_) => true,
                        }
                    };
                    if empty {
                        return;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServeState>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut idle_since = Instant::now();
    loop {
        match http::read_request(&mut reader, &state.limits) {
            Ok(request) => {
                idle_since = Instant::now();
                let mut response = state.route(&request);
                let draining = state.draining();
                if !request.wants_keep_alive() || draining {
                    response.close = true;
                }
                if response.write_to(&mut writer).is_err() {
                    return;
                }
                if response.close {
                    return;
                }
            }
            Err(ParseError::IdleTimeout) => {
                if state.draining() || idle_since.elapsed() >= KEEP_ALIVE_IDLE {
                    return;
                }
            }
            Err(ParseError::IdleEof) => return,
            Err(err) => {
                if let Some((status, why)) = err.status() {
                    state.metrics.on_response(Class::Other, status);
                    let _ = Response::error(status, why).closing().write_to(&mut writer);
                }
                return;
            }
        }
    }
}

/// The embedded SLO sentinel thread: naps in short slices so the drain
/// flag is noticed promptly, then runs one evaluation pass per poll.
fn sentinel_loop(state: &Arc<ServeState>) {
    const NAP: Duration = Duration::from_millis(25);
    while !state.draining() {
        let mut slept = 0u64;
        while slept < state.observe.sentinel_poll_ms && !state.draining() {
            std::thread::sleep(NAP);
            slept += NAP.as_millis() as u64;
        }
        if state.draining() {
            return;
        }
        sentinel_tick(state);
    }
}

/// One sentinel evaluation pass, split out so tests can drive it without
/// waiting on the poll cadence:
///
/// 1. mirror the breaker's trip count into `fg_serve_breaker_trips_total`
///    (the counter the `serve-breaker-trips` rule differentiates),
/// 2. refresh `fg_http_request_p99_seconds{endpoint}` by exactly merging
///    each endpoint's per-status histogram cells and reading q0.99,
/// 3. evaluate the SLO policy on sim-time = milliseconds since boot, and
/// 4. publish the firing count as `fg_serve_active_alerts`.
fn sentinel_tick(state: &Arc<ServeState>) {
    let trips = state.breaker.trips();
    let mirrored = state.metrics.breaker_trips.get();
    if trips > mirrored {
        state.metrics.breaker_trips.add(trips - mirrored);
    }

    let snap = state.telemetry.metrics().snapshot();
    for (endpoint, gauge) in &state.metrics.p99 {
        let mut merged: Option<HistSnapshot> = None;
        for sample in &snap.latencies {
            if sample.name.name != "fg_http_request_duration_seconds" {
                continue;
            }
            if !sample
                .name
                .labels
                .iter()
                .any(|(k, v)| k == "endpoint" && v == endpoint)
            {
                continue;
            }
            match &mut merged {
                Some(m) => m.merge(&sample.hist),
                None => merged = Some(sample.hist.clone()),
            }
        }
        gauge.set(merged.map_or(0.0, |m| m.quantile_seconds(0.99)));
    }

    // Re-snapshot so the evaluation sees the gauges just refreshed.
    let snap = state.telemetry.metrics().snapshot();
    let now = SimTime::from_millis(state.boot_ms());
    let active = {
        let mut sentinel = state.sentinel.lock().unwrap_or_else(|e| e.into_inner());
        sentinel.observe(now, &snap);
        sentinel.active_alerts()
    };
    state.metrics.active_alerts.set(active as f64);
}

fn watch_loop(path: &std::path::Path, baseline: Option<String>, state: &Arc<ServeState>) {
    let mut last_seen = baseline;
    while !state.draining() {
        std::thread::sleep(WATCH_POLL);
        let Ok(current) = std::fs::read_to_string(path) else {
            continue; // transient: editor mid-swap, file momentarily gone
        };
        if last_seen.as_deref() == Some(current.as_str()) {
            continue;
        }
        last_seen = Some(current.clone());
        let _ = state.try_reload(&current);
    }
}
