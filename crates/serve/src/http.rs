//! A minimal, allocation-conscious HTTP/1.1 request parser and response
//! writer over any `BufRead`/`Write` — no async runtime, no external
//! dependencies.
//!
//! Scope is deliberately narrow: the decision API speaks small JSON bodies
//! with `Content-Length` framing over keep-alive connections.
//! `Transfer-Encoding` is rejected, uploads are capped, and every malformed
//! input maps to a typed [`ParseError`] that the server turns into a 4xx —
//! the parser itself never panics on any byte stream (property-tested in
//! `http_proptest`).

use std::io::{self, BufRead, Write};

/// Hard caps the parser enforces before buffering anything oversized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Total header bytes accepted per request.
    pub max_header_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_bytes: 16 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …) as sent.
    pub method: String,
    /// The request target, e.g. `/v1/decide`.
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header fields in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Clean EOF before any byte of a new request: the peer closed an idle
    /// keep-alive connection. Not an error; no response is owed.
    IdleEof,
    /// Read timeout before any byte of a new request: the connection is
    /// idle. The server uses this to poll its drain flag between requests.
    IdleTimeout,
    /// EOF or timeout after a request had started: the peer stalled or
    /// vanished mid-request → `408 Request Timeout`.
    Truncated,
    /// Request line exceeded [`Limits::max_request_line`] → `431`.
    RequestLineTooLong,
    /// Header block exceeded size or count limits → `431`.
    HeadersTooLarge,
    /// `Content-Length` exceeded [`Limits::max_body`] → `413`.
    BodyTooLarge,
    /// Anything structurally wrong with the request → `400`.
    Malformed(&'static str),
    /// A transport error other than timeout/EOF; connection is unusable.
    Io(io::Error),
}

impl ParseError {
    /// The status line to answer with, when a response is owed at all
    /// (`IdleEof`/`IdleTimeout`/`Io` close silently).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ParseError::IdleEof | ParseError::IdleTimeout | ParseError::Io(_) => None,
            ParseError::Truncated => Some((408, "request timeout")),
            ParseError::RequestLineTooLong | ParseError::HeadersTooLarge => {
                Some((431, "request header fields too large"))
            }
            ParseError::BodyTooLarge => Some((413, "content too large")),
            ParseError::Malformed(why) => Some((400, why)),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one `\n`-terminated line of at most `cap` bytes (CR stripped).
/// `started` reports whether any byte of the current request had already
/// been consumed, which decides Idle vs Truncated on EOF/timeout.
fn read_line<R: BufRead>(
    r: &mut R,
    cap: usize,
    started: &mut bool,
    too_long: ParseError,
) -> Result<String, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if is_timeout(&e) => {
                return Err(if *started {
                    ParseError::Truncated
                } else {
                    ParseError::IdleTimeout
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        };
        if buf.is_empty() {
            return Err(if *started {
                ParseError::Truncated
            } else {
                ParseError::IdleEof
            });
        }
        *started = true;
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map_or(buf.len(), |i| i + 1);
        if line.len() + take > cap + 2 {
            // +2 tolerates the CRLF itself on an exactly-cap-sized line.
            return Err(too_long);
        }
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        if nl.is_some() {
            break;
        }
    }
    if line.last() == Some(&b'\n') {
        line.pop();
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ParseError::Malformed("non-UTF-8 in request head"))
}

/// Parses one request from `r`, enforcing `limits`. Total failure isolation:
/// any byte stream yields `Ok` or a typed error, never a panic.
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Request, ParseError> {
    let mut started = false;

    // Request line — tolerate one leading blank line (robust against
    // clients sending an extra CRLF after a pipelined body).
    let mut request_line = read_line(
        r,
        limits.max_request_line,
        &mut started,
        ParseError::RequestLineTooLong,
    )?;
    if request_line.is_empty() {
        request_line = read_line(
            r,
            limits.max_request_line,
            &mut started,
            ParseError::RequestLineTooLong,
        )?;
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("bad method token"));
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(ParseError::Malformed("target must be origin-form"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Malformed("unsupported HTTP version")),
    };

    // Headers.
    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line(
            r,
            limits.max_header_bytes,
            &mut started,
            ParseError::HeadersTooLarge,
        )?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > limits.max_header_bytes || headers.len() >= limits.max_headers {
            return Err(ParseError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    // Body framing: Content-Length only.
    let mut request = Request {
        method: method.to_owned(),
        target: target.to_owned(),
        http11,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::Malformed("transfer-encoding not supported"));
    }
    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed("bad content-length"))?,
    };
    if content_length > limits.max_body {
        return Err(ParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(ParseError::Truncated),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => return Err(ParseError::Truncated),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    request.body = body;
    Ok(request)
}

/// One response to put on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The payload.
    pub body: Vec<u8>,
    /// When `true`, advertise and perform `Connection: close`.
    pub close: bool,
    /// Additional response headers (name, value), written after
    /// `Content-Length` — the `traceparent` echo rides here.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            close: false,
            headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            close: false,
            headers: Vec::new(),
        }
    }

    /// Appends one extra response header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// A JSON error envelope: `{"error":"<why>"}`.
    pub fn error(status: u16, why: &str) -> Self {
        let quoted = serde_json::to_string(&why).unwrap_or_else(|_| "\"internal\"".to_owned());
        Response::json(status, format!("{{\"error\":{quoted}}}").into_bytes())
    }

    /// Marks the response as connection-closing (builder style).
    #[must_use]
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serializes status line, headers, and body to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        if self.close {
            write!(w, "Connection: close\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/healthz");
        assert!(r.http11);
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let r = parse(b"POST /v1/decide HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut cur = Cursor::new(two.to_vec());
        let a = read_request(&mut cur, &Limits::default()).unwrap();
        let b = read_request(&mut cur, &Limits::default()).unwrap();
        assert_eq!((a.target.as_str(), b.target.as_str()), ("/a", "/b"));
        assert!(!b.wants_keep_alive());
        assert!(matches!(
            read_request(&mut cur, &Limits::default()),
            Err(ParseError::IdleEof)
        ));
    }

    #[test]
    fn malformed_inputs_map_to_400() {
        for bytes in [
            b"garbage\r\n\r\n".to_vec(),
            b"GET\r\n\r\n".to_vec(),
            b"get /x HTTP/1.1\r\n\r\n".to_vec(),
            b"GET x HTTP/1.1\r\n\r\n".to_vec(),
            b"GET /x HTTP/2.0\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nbad header\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        ] {
            let err = parse(&bytes).unwrap_err();
            assert_eq!(err.status().map(|(s, _)| s), Some(400), "{err:?}");
        }
    }

    #[test]
    fn oversize_and_truncation_map_to_their_statuses() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(
            parse(long_line.as_bytes()).unwrap_err().status(),
            Some((431, "request header fields too large"))
        );
        let big_body = b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(
            parse(big_body).unwrap_err(),
            ParseError::BodyTooLarge
        ));
        let truncated = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(
            parse(truncated).unwrap_err(),
            ParseError::Truncated
        ));
        let mid_head = b"GET /x HT";
        assert!(matches!(
            parse(mid_head).unwrap_err(),
            ParseError::Truncated
        ));
    }

    #[test]
    fn response_writes_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "hi")
            .closing()
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn extra_headers_land_in_the_head_not_the_body() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("traceparent", "00-abc-def-01".to_owned())
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        let (head, body) = s.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("traceparent: 00-abc-def-01"), "{head}");
        assert_eq!(body, "{}");
    }
}
