//! `fg-loadgen` — deterministic wire-replay load generator for `fg-serve`.
//!
//! ```text
//! fg-loadgen --addr HOST:PORT [--connections N] [--rate R]
//!            [--duration SECS[s]] [--seed N] [--out PATH]
//!            [--assert-min-rate X] [--assert-max-p99-ms Y]
//! ```
//!
//! Replays the fg-behavior workload derived from `--seed` over keep-alive
//! HTTP/1.1 connections and writes a schema-versioned report (default
//! `BENCH_serve.json`) with p50/p90/p99/p999 latency and sustained
//! decisions/sec. The `--assert-*` flags turn the run into a gate: a
//! violated bound (or zero successful decisions) exits with code 4. Exit
//! codes: see [`fg_serve::Exit`].

use fg_serve::loadgen::{run, LoadgenConfig};
use fg_serve::Exit;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    config: LoadgenConfig,
    out: PathBuf,
    assert_min_rate: Option<f64>,
    assert_max_p99_ms: Option<f64>,
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let trimmed = s.strip_suffix('s').unwrap_or(s);
    trimmed
        .parse::<f64>()
        .map_err(|e| format!("bad duration {s:?}: {e}"))
        .and_then(|secs| {
            if secs > 0.0 {
                Ok(Duration::from_secs_f64(secs))
            } else {
                Err(format!("duration must be positive, got {s:?}"))
            }
        })
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        config: LoadgenConfig::default(),
        out: PathBuf::from("BENCH_serve.json"),
        assert_min_rate: None,
        assert_max_p99_ms: None,
    };
    let mut saw_addr = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => {
                args.config.addr = value("--addr")?;
                saw_addr = true;
            }
            "--connections" => {
                args.config.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--rate" => {
                args.config.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--duration" => args.config.duration = parse_duration(&value("--duration")?)?,
            "--seed" => {
                args.config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--assert-min-rate" => {
                args.assert_min_rate = Some(
                    value("--assert-min-rate")?
                        .parse()
                        .map_err(|e| format!("--assert-min-rate: {e}"))?,
                );
            }
            "--assert-max-p99-ms" => {
                args.assert_max_p99_ms = Some(
                    value("--assert-max-p99-ms")?
                        .parse()
                        .map_err(|e| format!("--assert-max-p99-ms: {e}"))?,
                );
            }
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !saw_addr {
        return Err("--addr is required".to_owned());
    }
    if args.config.connections == 0 {
        return Err("--connections must be >= 1".to_owned());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: fg-loadgen --addr HOST:PORT [--connections N] [--rate R] \
         [--duration SECS[s]] [--seed N] [--out PATH] \
         [--assert-min-rate X] [--assert-max-p99-ms Y]"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(why) => {
            if why != "help" {
                eprintln!("fg-loadgen: {why}");
            }
            usage();
            return Exit::Usage.into();
        }
    };

    let report = match run(&args.config) {
        Ok(r) => r,
        Err(why) => {
            eprintln!("fg-loadgen: {why}");
            return Exit::Unavailable.into();
        }
    };

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("fg-loadgen: cannot write {}: {e}", args.out.display());
        return Exit::Unavailable.into();
    }
    println!(
        "fg-loadgen: {} sent, {} ok, {:.1} decisions/sec, \
         p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms -> {}",
        report.sent,
        report.ok,
        report.decisions_per_sec,
        report.latency_ms.p50,
        report.latency_ms.p99,
        report.latency_ms.p999,
        args.out.display()
    );

    let mut violations = Vec::new();
    if report.ok == 0 {
        violations.push("no successful decisions".to_owned());
    }
    if let Some(min_rate) = args.assert_min_rate {
        if report.decisions_per_sec < min_rate {
            violations.push(format!(
                "decisions/sec {:.1} below required {min_rate:.1}",
                report.decisions_per_sec
            ));
        }
    }
    if let Some(max_p99) = args.assert_max_p99_ms {
        if report.latency_ms.p99 > max_p99 {
            violations.push(format!(
                "p99 {:.2} ms above allowed {max_p99:.2} ms",
                report.latency_ms.p99
            ));
        }
    }
    if violations.is_empty() {
        Exit::Success.into()
    } else {
        for v in &violations {
            eprintln!("fg-loadgen: SLO violation: {v}");
        }
        Exit::ContractFailed.into()
    }
}
