//! `fg-serve` — the FeatureGuard decision service.
//!
//! ```text
//! fg-serve [--config PATH] [--addr HOST:PORT] [--check] [--print-config]
//!          [--drain-secs N] [--final-metrics PATH]
//! ```
//!
//! Without `--config`, boots the recommended posture. With `--config`, the
//! file is parsed and validated (fg-analyze gate included) before binding;
//! it is then watched for hot-reloads — edits that fail validation are
//! rejected and the running config survives.
//!
//! `--check` validates the config and exits without binding. On `SIGTERM`
//! or `SIGINT` the server stops accepting, finishes in-flight exchanges,
//! flushes a final metrics snapshot (when `--final-metrics` is given), and
//! exits. Exit codes: see [`fg_serve::Exit`].

use fg_serve::{Exit, ServeConfig, Server};
use fg_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    config: Option<PathBuf>,
    addr: Option<String>,
    check: bool,
    print_config: bool,
    drain_secs: u64,
    final_metrics: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        config: None,
        addr: None,
        check: false,
        print_config: false,
        drain_secs: 10,
        final_metrics: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--addr" => args.addr = Some(value("--addr")?),
            "--check" => args.check = true,
            "--print-config" => args.print_config = true,
            "--drain-secs" => {
                args.drain_secs = value("--drain-secs")?
                    .parse()
                    .map_err(|e| format!("--drain-secs: {e}"))?;
            }
            "--final-metrics" => {
                args.final_metrics = Some(PathBuf::from(value("--final-metrics")?));
            }
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: fg-serve [--config PATH] [--addr HOST:PORT] [--check] \
         [--print-config] [--drain-secs N] [--final-metrics PATH]"
    );
}

fn load_config(args: &Args) -> Result<ServeConfig, String> {
    let mut config = match &args.config {
        Some(path) => {
            let raw = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            ServeConfig::from_json(&raw).map_err(|e| format!("parse: {e}"))?
        }
        None => ServeConfig::recommended(),
    };
    if let Some(addr) = &args.addr {
        config.listen = addr.clone();
    }
    config
        .validate()
        .map_err(|errors| format!("config rejected:\n  {}", errors.join("\n  ")))?;
    Ok(config)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(why) => {
            if why != "help" {
                eprintln!("fg-serve: {why}");
            }
            usage();
            return Exit::Usage.into();
        }
    };

    let config = match load_config(&args) {
        Ok(c) => c,
        Err(why) => {
            eprintln!("fg-serve: {why}");
            return Exit::ContractFailed.into();
        }
    };
    if args.print_config {
        // Emits the effective (validated) config as a reload-ready file —
        // the canonical way to bootstrap a watched config for deployment.
        println!("{}", config.to_json());
        return Exit::Success.into();
    }
    if args.check {
        println!("config ok (listen {})", config.listen);
        return Exit::Success.into();
    }

    let shutdown = unix_signal::install();
    let telemetry = Telemetry::shared();
    let server = match Server::start(config, telemetry.clone(), args.config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fg-serve: bind failed: {e}");
            return Exit::Unavailable.into();
        }
    };
    println!("fg-serve listening on {}", server.addr());
    // Line-buffered stdout only flushes on newline when attached to a
    // terminal; CI pipes it, so flush explicitly for readiness polling.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !shutdown.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(100));
    }

    println!("fg-serve: shutdown signal received, draining");
    server.begin_shutdown();
    let report = server.drain(Duration::from_secs(args.drain_secs));

    if let Some(path) = &args.final_metrics {
        let snapshot = telemetry.snapshot().to_prometheus();
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("fg-serve: final metrics flush failed: {e}");
        }
    }

    if report.clean {
        println!("fg-serve: drained cleanly");
        Exit::Success.into()
    } else {
        eprintln!(
            "fg-serve: drain deadline passed with {} busy worker(s)",
            report.stragglers
        );
        Exit::Unavailable.into()
    }
}
