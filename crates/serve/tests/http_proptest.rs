//! Property tests for the hand-rolled HTTP parser: *no byte stream panics*.
//!
//! The server feeds `read_request` raw socket bytes, so the parser is the
//! first line of defence — every input must resolve to `Ok` or a typed
//! [`ParseError`], and every error that owes a response must map to a 4xx.
//! Covers arbitrary garbage, truncations of valid requests, oversized
//! components, and pipelined sequences.

use fg_serve::http::{read_request, Limits, ParseError, Request};
use proptest::prelude::*;
use std::io::Cursor;

fn parse(bytes: &[u8], limits: &Limits) -> Result<Request, ParseError> {
    read_request(&mut Cursor::new(bytes), limits)
}

/// A syntactically valid request with the given body, as wire bytes.
fn valid_request(target: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

fn assert_contract(result: &Result<Request, ParseError>) {
    if let Err(e) = result {
        match e.status() {
            Some((status, _)) => assert!(
                (400..500).contains(&status),
                "parse errors must map to 4xx, got {status} for {e:?}"
            ),
            None => assert!(
                matches!(
                    e,
                    ParseError::IdleEof | ParseError::IdleTimeout | ParseError::Io(_)
                ),
                "only idle/transport errors may omit a response, got {e:?}"
            ),
        }
    }
}

proptest! {
    /// Arbitrary garbage: never panics, and every owed response is a 4xx.
    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u16..256, 0..2048)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let result = parse(&bytes, &Limits::default());
        assert_contract(&result);
    }

    /// Garbage that at least starts like HTTP exercises the deeper states.
    #[test]
    fn http_shaped_garbage_never_panics(
        tail in proptest::collection::vec(0u16..256, 0..1024),
    ) {
        let mut bytes = b"POST /v1/decide HTTP/1.1\r\n".to_vec();
        bytes.extend(tail.into_iter().map(|b| b as u8));
        let result = parse(&bytes, &Limits::default());
        assert_contract(&result);
    }

    /// Truncating a valid request at any byte yields Ok (cut at/after the
    /// framed end), a 4xx, or a silent idle error — never a panic.
    #[test]
    fn truncations_never_panic(
        raw_body in proptest::collection::vec(0u16..256, 0..256),
        cut_permille in 0u32..1001,
    ) {
        let body: Vec<u8> = raw_body.into_iter().map(|b| b as u8).collect();
        let full = valid_request("/v1/decide", &body);
        let cut = (full.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let result = parse(&full[..cut], &Limits::default());
        match &result {
            Ok(parsed) => assert_eq!(parsed.body, body, "Ok implies the full body arrived"),
            Err(_) => assert_contract(&result),
        }
    }

    /// Pipelined requests on one stream all parse, in order, with their
    /// own bodies — the parser must consume exactly one framed request.
    #[test]
    fn pipelined_requests_parse_in_order(
        raw_bodies in proptest::collection::vec(
            proptest::collection::vec(0u16..256, 0..128),
            1..5,
        ),
    ) {
        let bodies: Vec<Vec<u8>> = raw_bodies
            .into_iter()
            .map(|b| b.into_iter().map(|x| x as u8).collect())
            .collect();
        let mut stream = Vec::new();
        for body in &bodies {
            stream.extend_from_slice(&valid_request("/v1/decide", body));
        }
        let mut cursor = Cursor::new(stream.as_slice());
        let limits = Limits::default();
        for (i, body) in bodies.iter().enumerate() {
            let parsed = read_request(&mut cursor, &limits)
                .unwrap_or_else(|e| panic!("pipelined request {i} failed: {e:?}"));
            assert_eq!(parsed.target, "/v1/decide");
            assert_eq!(&parsed.body, body);
        }
        assert!(matches!(
            read_request(&mut cursor, &limits),
            Err(ParseError::IdleEof)
        ));
    }

    /// Declared Content-Length beyond the cap is refused *before* the
    /// parser buffers anything, regardless of what follows.
    #[test]
    fn oversized_declared_body_is_413(extra in 1u64..1_000_000) {
        let limits = Limits::default();
        let declared = limits.max_body as u64 + extra;
        let head = format!(
            "POST /v1/decide HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n"
        );
        let result = parse(head.as_bytes(), &limits);
        assert!(
            matches!(result, Err(ParseError::BodyTooLarge)),
            "expected BodyTooLarge, got {result:?}"
        );
    }
}

#[test]
fn oversized_request_line_is_431() {
    let limits = Limits::default();
    let long_target = format!("/{}", "a".repeat(limits.max_request_line));
    let bytes = valid_request(&long_target, b"");
    match parse(&bytes, &limits) {
        Err(ParseError::RequestLineTooLong) => {}
        other => panic!("expected RequestLineTooLong, got {other:?}"),
    }
}

#[test]
fn too_many_headers_is_431() {
    let limits = Limits::default();
    let mut head = String::from("GET / HTTP/1.1\r\n");
    for i in 0..=limits.max_headers {
        head.push_str(&format!("x-h{i}: v\r\n"));
    }
    head.push_str("\r\n");
    match parse(head.as_bytes(), &limits) {
        Err(ParseError::HeadersTooLarge) => {}
        other => panic!("expected HeadersTooLarge, got {other:?}"),
    }
}

#[test]
fn transfer_encoding_is_rejected() {
    let bytes = b"POST /v1/decide HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    match parse(bytes, &Limits::default()) {
        Err(ParseError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
}
