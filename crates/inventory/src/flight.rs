//! Flights and seat availability.

use fg_core::ids::FlightId;
use fg_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A flight instance with finite seat capacity and a departure time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flight {
    id: FlightId,
    capacity: u32,
    departure: SimTime,
}

impl Flight {
    /// Creates a flight.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(id: FlightId, capacity: u32, departure: SimTime) -> Self {
        assert!(capacity > 0, "a flight needs at least one seat");
        Flight {
            id,
            capacity,
            departure,
        }
    }

    /// The flight identifier.
    pub fn id(&self) -> FlightId {
        self.id
    }

    /// Total seat capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Departure instant.
    pub fn departure(&self) -> SimTime {
        self.departure
    }

    /// `true` once `now` has reached departure.
    pub fn departed(&self, now: SimTime) -> bool {
        now >= self.departure
    }
}

impl fmt::Display for Flight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} seats, departs {})",
            self.id, self.capacity, self.departure
        )
    }
}

/// A snapshot of a flight's seat ledger.
///
/// The conservation invariant `available + held + sold == capacity` holds at
/// every instant and is property-tested in [`crate::system`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Availability {
    /// Seats free to hold right now.
    pub available: u32,
    /// Seats inside active (unexpired, unpaid) holds.
    pub held: u32,
    /// Seats sold (paid or ticketed).
    pub sold: u32,
}

impl Availability {
    /// Total seats accounted for.
    pub fn capacity(&self) -> u32 {
        self.available + self.held + self.sold
    }

    /// Load factor: the fraction of capacity sold.
    pub fn load_factor(&self) -> f64 {
        let cap = self.capacity();
        if cap == 0 {
            0.0
        } else {
            f64::from(self.sold) / f64::from(cap)
        }
    }

    /// The fraction of capacity currently *denied* to genuine buyers by
    /// holds — the direct harm metric of a Denial-of-Inventory attack.
    pub fn hold_ratio(&self) -> f64 {
        let cap = self.capacity();
        if cap == 0 {
            0.0
        } else {
            f64::from(self.held) / f64::from(cap)
        }
    }
}

impl fmt::Display for Availability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "available={} held={} sold={}",
            self.available, self.held, self.sold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_accessors() {
        let fl = Flight::new(FlightId(9), 180, SimTime::from_days(10));
        assert_eq!(fl.id(), FlightId(9));
        assert_eq!(fl.capacity(), 180);
        assert!(!fl.departed(SimTime::from_days(9)));
        assert!(fl.departed(SimTime::from_days(10)));
    }

    #[test]
    #[should_panic(expected = "at least one seat")]
    fn zero_capacity_rejected() {
        Flight::new(FlightId(1), 0, SimTime::ZERO);
    }

    #[test]
    fn availability_ratios() {
        let a = Availability {
            available: 50,
            held: 30,
            sold: 20,
        };
        assert_eq!(a.capacity(), 100);
        assert!((a.load_factor() - 0.2).abs() < 1e-12);
        assert!((a.hold_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_availability_is_safe() {
        let a = Availability::default();
        assert_eq!(a.capacity(), 0);
        assert_eq!(a.load_factor(), 0.0);
        assert_eq!(a.hold_ratio(), 0.0);
    }
}
