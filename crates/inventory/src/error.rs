//! Inventory error types.

use fg_core::ids::{BookingRef, FlightId};
use std::error::Error;
use std::fmt;

/// Errors returned by the reservation system and cart store.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum InventoryError {
    /// The flight does not exist.
    UnknownFlight(FlightId),
    /// Not enough unsold, unheld seats remain.
    InsufficientSeats {
        /// Flight concerned.
        flight: FlightId,
        /// Seats requested.
        requested: u32,
        /// Seats actually available.
        available: u32,
    },
    /// The party exceeds the configured maximum Number in Party.
    PartyTooLarge {
        /// Passengers requested.
        requested: u32,
        /// The configured cap.
        max: u32,
    },
    /// A booking reference was not found.
    UnknownBooking(BookingRef),
    /// The booking is not in the right state for the operation.
    WrongState {
        /// Booking concerned.
        booking: BookingRef,
        /// What the operation required.
        expected: &'static str,
        /// What the booking actually was.
        actual: &'static str,
    },
    /// The flight has already departed.
    FlightDeparted(FlightId),
    /// A hold request carried no passengers.
    EmptyParty,
    /// The payment was declined (simulated payment failure injection).
    PaymentDeclined(BookingRef),
    /// The product does not exist in the cart store.
    UnknownProduct(u64),
    /// Not enough product stock remains.
    InsufficientStock {
        /// Product concerned.
        product: u64,
        /// Units requested.
        requested: u32,
        /// Units actually available.
        available: u32,
    },
}

impl fmt::Display for InventoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InventoryError::UnknownFlight(id) => write!(f, "unknown flight {id}"),
            InventoryError::InsufficientSeats {
                flight,
                requested,
                available,
            } => write!(
                f,
                "flight {flight} has {available} seats available, {requested} requested"
            ),
            InventoryError::PartyTooLarge { requested, max } => {
                write!(f, "party of {requested} exceeds the maximum of {max}")
            }
            InventoryError::UnknownBooking(r) => write!(f, "unknown booking {r}"),
            InventoryError::WrongState {
                booking,
                expected,
                actual,
            } => write!(
                f,
                "booking {booking} is {actual}, operation requires {expected}"
            ),
            InventoryError::FlightDeparted(id) => write!(f, "flight {id} already departed"),
            InventoryError::EmptyParty => write!(f, "a hold requires at least one passenger"),
            InventoryError::PaymentDeclined(r) => write!(f, "payment declined for booking {r}"),
            InventoryError::UnknownProduct(id) => write!(f, "unknown product {id}"),
            InventoryError::InsufficientStock {
                product,
                requested,
                available,
            } => write!(
                f,
                "product {product} has {available} units available, {requested} requested"
            ),
        }
    }
}

impl Error for InventoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_bounds<T: Send + Sync + Error + 'static>() {}
        assert_bounds::<InventoryError>();
    }

    #[test]
    fn messages_are_informative() {
        let e = InventoryError::InsufficientSeats {
            flight: FlightId(3),
            requested: 6,
            available: 2,
        };
        assert_eq!(
            e.to_string(),
            "flight f3 has 2 seats available, 6 requested"
        );
        let e = InventoryError::PartyTooLarge {
            requested: 9,
            max: 4,
        };
        assert_eq!(e.to_string(), "party of 9 exceeds the maximum of 4");
    }
}
