//! The reservation system: flights, holds, payments, expiry.

use crate::booking::{Booking, BookingStatus};
use crate::error::InventoryError;
use crate::flight::{Availability, Flight};
use crate::passenger::Passenger;
use fg_core::event::EventQueue;
use fg_core::ids::{BookingRef, FlightId};
use fg_core::stats::Histogram;
use fg_core::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// The airline reservation core: finite seat inventory, TTL holds, and the
/// PNR lifecycle.
///
/// The two parameters the paper's mitigations turn are first-class here:
/// the **hold TTL** ("30 minutes to several hours depending on the domain")
/// and the **maximum Number in Party** (the Fig. 1 cap). Both can be changed
/// mid-run, exactly as the Amadeus team did during the Airline A incident.
///
/// # Example
///
/// ```
/// use fg_inventory::{Flight, Passenger, ReservationSystem, BookingStatus};
/// use fg_core::time::{SimDuration, SimTime};
/// use fg_core::ids::FlightId;
///
/// let mut sys = ReservationSystem::new(SimDuration::from_mins(30), 9);
/// sys.add_flight(Flight::new(FlightId(1), 2, SimTime::from_days(7)));
///
/// let r = sys.hold(FlightId(1), vec![Passenger::simple("A", "B")], SimTime::ZERO)?;
/// // Unpaid holds lapse after the TTL and seats return to inventory.
/// sys.expire_due(SimTime::from_mins(31));
/// assert_eq!(sys.booking(r).unwrap().status(), BookingStatus::Expired);
/// assert_eq!(sys.availability(FlightId(1)).unwrap().available, 2);
/// # Ok::<(), fg_inventory::InventoryError>(())
/// ```
#[derive(Debug)]
pub struct ReservationSystem {
    flights: HashMap<FlightId, Flight>,
    ledgers: HashMap<FlightId, Availability>,
    bookings: HashMap<BookingRef, Booking>,
    expiry: EventQueue<BookingRef>,
    hold_ttl: SimDuration,
    max_nip: u32,
    next_ref: u64,
}

impl ReservationSystem {
    /// Creates a system with the given hold TTL and maximum party size.
    ///
    /// # Panics
    ///
    /// Panics if `hold_ttl` is not positive or `max_nip` is zero.
    pub fn new(hold_ttl: SimDuration, max_nip: u32) -> Self {
        assert!(hold_ttl.as_millis() > 0, "hold TTL must be positive");
        assert!(max_nip > 0, "maximum party size must be at least one");
        ReservationSystem {
            flights: HashMap::new(),
            ledgers: HashMap::new(),
            bookings: HashMap::new(),
            expiry: EventQueue::new(),
            hold_ttl,
            max_nip,
            next_ref: 0,
        }
    }

    /// Registers a flight. Replaces any previous flight with the same id and
    /// resets its ledger.
    pub fn add_flight(&mut self, flight: Flight) {
        self.ledgers.insert(
            flight.id(),
            Availability {
                available: flight.capacity(),
                held: 0,
                sold: 0,
            },
        );
        self.flights.insert(flight.id(), flight);
    }

    /// Looks up a flight.
    pub fn flight(&self, id: FlightId) -> Option<&Flight> {
        self.flights.get(&id)
    }

    /// All flight ids, sorted (deterministic iteration).
    pub fn flight_ids(&self) -> Vec<FlightId> {
        let mut ids: Vec<FlightId> = self.flights.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The current hold TTL.
    pub fn hold_ttl(&self) -> SimDuration {
        self.hold_ttl
    }

    /// Changes the hold TTL for *future* holds (existing holds keep their
    /// original expiry — changing it retroactively would punish legitimate
    /// customers mid-checkout).
    pub fn set_hold_ttl(&mut self, ttl: SimDuration) {
        assert!(ttl.as_millis() > 0, "hold TTL must be positive");
        self.hold_ttl = ttl;
    }

    /// The current maximum Number in Party.
    pub fn max_nip(&self) -> u32 {
        self.max_nip
    }

    /// Changes the NiP cap — the Fig. 1 mitigation.
    pub fn set_max_nip(&mut self, max: u32) {
        assert!(max > 0, "maximum party size must be at least one");
        self.max_nip = max;
    }

    /// Places a hold for `passengers` on `flight` at `now`.
    ///
    /// Expires any due holds first, so availability reflects reality.
    ///
    /// # Errors
    ///
    /// * [`InventoryError::UnknownFlight`] — no such flight.
    /// * [`InventoryError::FlightDeparted`] — flight already departed.
    /// * [`InventoryError::EmptyParty`] — zero passengers.
    /// * [`InventoryError::PartyTooLarge`] — over the NiP cap.
    /// * [`InventoryError::InsufficientSeats`] — not enough free seats.
    pub fn hold(
        &mut self,
        flight: FlightId,
        passengers: Vec<Passenger>,
        now: SimTime,
    ) -> Result<BookingRef, InventoryError> {
        self.expire_due(now);
        let fl = self
            .flights
            .get(&flight)
            .copied()
            .ok_or(InventoryError::UnknownFlight(flight))?;
        if fl.departed(now) {
            return Err(InventoryError::FlightDeparted(flight));
        }
        if passengers.is_empty() {
            return Err(InventoryError::EmptyParty);
        }
        let nip = passengers.len() as u32;
        if nip > self.max_nip {
            return Err(InventoryError::PartyTooLarge {
                requested: nip,
                max: self.max_nip,
            });
        }
        let ledger = self
            .ledgers
            .get_mut(&flight)
            .expect("ledger exists per flight");
        if ledger.available < nip {
            return Err(InventoryError::InsufficientSeats {
                flight,
                requested: nip,
                available: ledger.available,
            });
        }
        ledger.available -= nip;
        ledger.held += nip;

        let reference = BookingRef::from_index(self.next_ref);
        self.next_ref += 1;
        let expires = now + self.hold_ttl;
        self.bookings.insert(
            reference,
            Booking::new(reference, flight, passengers, now, expires),
        );
        self.expiry.schedule(expires, reference);
        Ok(reference)
    }

    /// Pays for a held booking, converting held seats to sold.
    ///
    /// # Errors
    ///
    /// * [`InventoryError::UnknownBooking`] — no such booking.
    /// * [`InventoryError::WrongState`] — booking is not currently held
    ///   (including holds that lapsed before `now`).
    pub fn pay(&mut self, reference: BookingRef, now: SimTime) -> Result<(), InventoryError> {
        self.expire_due(now);
        let booking = self
            .bookings
            .get_mut(&reference)
            .ok_or(InventoryError::UnknownBooking(reference))?;
        if booking.status() != BookingStatus::Held {
            return Err(InventoryError::WrongState {
                booking: reference,
                expected: "held",
                actual: booking.status().label(),
            });
        }
        let nip = booking.nip();
        let flight = booking.flight();
        booking.set_status(BookingStatus::Paid);
        let ledger = self
            .ledgers
            .get_mut(&flight)
            .expect("ledger exists per flight");
        ledger.held -= nip;
        ledger.sold += nip;
        Ok(())
    }

    /// Issues the e-ticket for a paid booking.
    ///
    /// # Errors
    ///
    /// Returns [`InventoryError::WrongState`] unless the booking is paid, or
    /// [`InventoryError::UnknownBooking`] if it does not exist.
    pub fn ticket(&mut self, reference: BookingRef) -> Result<(), InventoryError> {
        let booking = self
            .bookings
            .get_mut(&reference)
            .ok_or(InventoryError::UnknownBooking(reference))?;
        if booking.status() != BookingStatus::Paid {
            return Err(InventoryError::WrongState {
                booking: reference,
                expected: "paid",
                actual: booking.status().label(),
            });
        }
        booking.set_status(BookingStatus::Ticketed);
        Ok(())
    }

    /// Cancels a booking, returning its seats to inventory.
    ///
    /// # Errors
    ///
    /// Returns [`InventoryError::UnknownBooking`] if it does not exist, or
    /// [`InventoryError::WrongState`] if already expired or cancelled.
    pub fn cancel(&mut self, reference: BookingRef, now: SimTime) -> Result<(), InventoryError> {
        self.expire_due(now);
        let booking = self
            .bookings
            .get_mut(&reference)
            .ok_or(InventoryError::UnknownBooking(reference))?;
        let nip = booking.nip();
        let flight = booking.flight();
        let prior = booking.status();
        match prior {
            BookingStatus::Held | BookingStatus::Paid | BookingStatus::Ticketed => {
                booking.set_status(BookingStatus::Cancelled);
                let ledger = self
                    .ledgers
                    .get_mut(&flight)
                    .expect("ledger exists per flight");
                if prior == BookingStatus::Held {
                    ledger.held -= nip;
                } else {
                    ledger.sold -= nip;
                }
                ledger.available += nip;
                Ok(())
            }
            BookingStatus::Expired | BookingStatus::Cancelled => Err(InventoryError::WrongState {
                booking: reference,
                expected: "held, paid, or ticketed",
                actual: prior.label(),
            }),
        }
    }

    /// Processes all holds whose TTL elapsed by `now`. Returns the booking
    /// references that expired in this call.
    pub fn expire_due(&mut self, now: SimTime) -> Vec<BookingRef> {
        let mut expired = Vec::new();
        while let Some((_, reference)) = self.expiry.pop_before(now) {
            let Some(booking) = self.bookings.get_mut(&reference) else {
                continue;
            };
            // Only still-held bookings whose recorded expiry has truly passed
            // lapse; paid/cancelled bookings left stale queue entries behind.
            if booking.status() == BookingStatus::Held && booking.hold_expires_at() <= now {
                let nip = booking.nip();
                let flight = booking.flight();
                booking.set_status(BookingStatus::Expired);
                let ledger = self
                    .ledgers
                    .get_mut(&flight)
                    // fg-analyze: allow(panic-path): ledger invariant — bookings are only created against flights registered with a ledger
                    .expect("ledger exists per flight");
                ledger.held -= nip;
                ledger.available += nip;
                expired.push(reference);
            }
        }
        expired
    }

    /// Registers a boarding-pass issuance against a ticketed booking.
    ///
    /// The caller delivers the pass (e.g. through `fg-smsgw`); this method
    /// only enforces booking state and counts issuances — deliberately
    /// unlimited per booking, reproducing the §IV-C vulnerability. Rate
    /// limits belong to the mitigation layer.
    ///
    /// # Errors
    ///
    /// Returns [`InventoryError::WrongState`] unless the booking is ticketed,
    /// or [`InventoryError::UnknownBooking`] if it does not exist.
    pub fn issue_boarding_pass(&mut self, reference: BookingRef) -> Result<u32, InventoryError> {
        let booking = self
            .bookings
            .get_mut(&reference)
            .ok_or(InventoryError::UnknownBooking(reference))?;
        if booking.status() != BookingStatus::Ticketed {
            return Err(InventoryError::WrongState {
                booking: reference,
                expected: "ticketed",
                actual: booking.status().label(),
            });
        }
        booking.count_boarding_pass();
        Ok(booking.boarding_passes_sent())
    }

    /// Snapshot of a flight's seat ledger (after lazily expiring due holds
    /// would be ideal, but this is a `&self` query; call
    /// [`ReservationSystem::expire_due`] first for exact numbers).
    pub fn availability(&self, flight: FlightId) -> Option<Availability> {
        self.ledgers.get(&flight).copied()
    }

    /// Looks up a booking.
    pub fn booking(&self, reference: BookingRef) -> Option<&Booking> {
        self.bookings.get(&reference)
    }

    /// Iterates over every booking ever created (order unspecified).
    pub fn bookings(&self) -> impl Iterator<Item = &Booking> {
        self.bookings.values()
    }

    /// Number of bookings ever created.
    pub fn booking_count(&self) -> usize {
        self.bookings.len()
    }

    /// The NiP histogram over bookings created in `[from, to)` — the Fig. 1
    /// quantity. Includes non-finalized bookings, as the paper's does
    /// ("considering also the non finalized ones").
    pub fn nip_histogram(&self, from: SimTime, to: SimTime, max_nip: usize) -> Histogram {
        let mut h = Histogram::new(max_nip);
        for b in self.bookings.values() {
            if b.created_at() >= from && b.created_at() < to {
                h.record(b.nip() as usize);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pax(n: usize) -> Vec<Passenger> {
        (0..n)
            .map(|i| Passenger::simple(&format!("P{i}"), "TEST"))
            .collect()
    }

    fn system_with_flight(capacity: u32) -> ReservationSystem {
        let mut sys = ReservationSystem::new(SimDuration::from_mins(30), 9);
        sys.add_flight(Flight::new(FlightId(1), capacity, SimTime::from_days(30)));
        sys
    }

    fn conservation_ok(sys: &ReservationSystem, flight: FlightId, capacity: u32) -> bool {
        let a = sys.availability(flight).unwrap();
        a.available + a.held + a.sold == capacity
    }

    #[test]
    fn hold_reduces_availability() {
        let mut sys = system_with_flight(10);
        sys.hold(FlightId(1), pax(3), SimTime::ZERO).unwrap();
        let a = sys.availability(FlightId(1)).unwrap();
        assert_eq!(a.available, 7);
        assert_eq!(a.held, 3);
        assert!(conservation_ok(&sys, FlightId(1), 10));
    }

    #[test]
    fn pay_converts_held_to_sold() {
        let mut sys = system_with_flight(10);
        let r = sys.hold(FlightId(1), pax(2), SimTime::ZERO).unwrap();
        sys.pay(r, SimTime::from_mins(5)).unwrap();
        let a = sys.availability(FlightId(1)).unwrap();
        assert_eq!((a.available, a.held, a.sold), (8, 0, 2));
        assert_eq!(sys.booking(r).unwrap().status(), BookingStatus::Paid);
    }

    #[test]
    fn expired_hold_returns_seats() {
        let mut sys = system_with_flight(10);
        let r = sys.hold(FlightId(1), pax(4), SimTime::ZERO).unwrap();
        let expired = sys.expire_due(SimTime::from_mins(31));
        assert_eq!(expired, vec![r]);
        let a = sys.availability(FlightId(1)).unwrap();
        assert_eq!((a.available, a.held, a.sold), (10, 0, 0));
    }

    #[test]
    fn hold_exactly_at_ttl_boundary_expires() {
        let mut sys = system_with_flight(10);
        let r = sys.hold(FlightId(1), pax(1), SimTime::ZERO).unwrap();
        assert!(
            sys.pay(r, SimTime::from_mins(30)).is_err(),
            "expiry is inclusive"
        );
    }

    #[test]
    fn pay_after_expiry_fails_even_without_explicit_expire() {
        let mut sys = system_with_flight(10);
        let r = sys.hold(FlightId(1), pax(1), SimTime::ZERO).unwrap();
        let err = sys.pay(r, SimTime::from_hours(2)).unwrap_err();
        assert!(matches!(
            err,
            InventoryError::WrongState {
                actual: "expired",
                ..
            }
        ));
    }

    #[test]
    fn paid_booking_does_not_expire() {
        let mut sys = system_with_flight(10);
        let r = sys.hold(FlightId(1), pax(2), SimTime::ZERO).unwrap();
        sys.pay(r, SimTime::from_mins(10)).unwrap();
        let expired = sys.expire_due(SimTime::from_hours(5));
        assert!(expired.is_empty());
        assert_eq!(sys.booking(r).unwrap().status(), BookingStatus::Paid);
        assert!(conservation_ok(&sys, FlightId(1), 10));
    }

    #[test]
    fn nip_cap_enforced_and_adjustable() {
        let mut sys = system_with_flight(50);
        assert!(sys.hold(FlightId(1), pax(9), SimTime::ZERO).is_ok());
        sys.set_max_nip(4);
        let err = sys.hold(FlightId(1), pax(5), SimTime::ZERO).unwrap_err();
        assert_eq!(
            err,
            InventoryError::PartyTooLarge {
                requested: 5,
                max: 4
            }
        );
        assert!(sys.hold(FlightId(1), pax(4), SimTime::ZERO).is_ok());
    }

    #[test]
    fn sold_out_flight_rejects_holds() {
        let mut sys = system_with_flight(3);
        sys.hold(FlightId(1), pax(3), SimTime::ZERO).unwrap();
        let err = sys.hold(FlightId(1), pax(1), SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            InventoryError::InsufficientSeats { available: 0, .. }
        ));
    }

    #[test]
    fn seats_free_after_expiry_can_be_rebooked() {
        // The seat-spinning loop: hold, wait for expiry, hold again.
        let mut sys = system_with_flight(6);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            let r = sys.hold(FlightId(1), pax(6), now).unwrap();
            now += SimDuration::from_mins(31);
            let expired = sys.expire_due(now);
            assert_eq!(expired, vec![r]);
        }
        assert_eq!(sys.booking_count(), 10);
        assert!(conservation_ok(&sys, FlightId(1), 6));
    }

    #[test]
    fn departed_flight_rejects_holds() {
        let mut sys = ReservationSystem::new(SimDuration::from_mins(30), 9);
        sys.add_flight(Flight::new(FlightId(5), 10, SimTime::from_days(1)));
        let err = sys
            .hold(FlightId(5), pax(1), SimTime::from_days(2))
            .unwrap_err();
        assert_eq!(err, InventoryError::FlightDeparted(FlightId(5)));
    }

    #[test]
    fn empty_party_rejected() {
        let mut sys = system_with_flight(10);
        assert_eq!(
            sys.hold(FlightId(1), vec![], SimTime::ZERO).unwrap_err(),
            InventoryError::EmptyParty
        );
    }

    #[test]
    fn unknown_entities_error() {
        let mut sys = system_with_flight(10);
        assert_eq!(
            sys.hold(FlightId(99), pax(1), SimTime::ZERO).unwrap_err(),
            InventoryError::UnknownFlight(FlightId(99))
        );
        let ghost = BookingRef::from_index(999);
        assert_eq!(
            sys.pay(ghost, SimTime::ZERO).unwrap_err(),
            InventoryError::UnknownBooking(ghost)
        );
    }

    #[test]
    fn cancel_returns_seats_from_any_live_state() {
        let mut sys = system_with_flight(10);
        let held = sys.hold(FlightId(1), pax(2), SimTime::ZERO).unwrap();
        sys.cancel(held, SimTime::from_mins(1)).unwrap();
        assert_eq!(sys.availability(FlightId(1)).unwrap().available, 10);

        let paid = sys
            .hold(FlightId(1), pax(3), SimTime::from_mins(2))
            .unwrap();
        sys.pay(paid, SimTime::from_mins(3)).unwrap();
        sys.cancel(paid, SimTime::from_mins(4)).unwrap();
        assert_eq!(sys.availability(FlightId(1)).unwrap().available, 10);
        assert!(conservation_ok(&sys, FlightId(1), 10));

        // Double-cancel is an error.
        assert!(sys.cancel(paid, SimTime::from_mins(5)).is_err());
    }

    #[test]
    fn boarding_pass_requires_ticketed_state() {
        let mut sys = system_with_flight(10);
        let r = sys.hold(FlightId(1), pax(1), SimTime::ZERO).unwrap();
        assert!(sys.issue_boarding_pass(r).is_err());
        sys.pay(r, SimTime::from_mins(1)).unwrap();
        assert!(sys.issue_boarding_pass(r).is_err());
        sys.ticket(r).unwrap();
        // No per-booking limit — the §IV-C vulnerability.
        for i in 1..=500 {
            assert_eq!(sys.issue_boarding_pass(r).unwrap(), i);
        }
    }

    #[test]
    fn nip_histogram_windows_by_creation_time() {
        let mut sys = system_with_flight(200);
        sys.hold(FlightId(1), pax(2), SimTime::from_days(0))
            .unwrap();
        sys.hold(FlightId(1), pax(6), SimTime::from_days(8))
            .unwrap();
        sys.hold(FlightId(1), pax(6), SimTime::from_days(9))
            .unwrap();
        let week0 = sys.nip_histogram(SimTime::ZERO, SimTime::from_weeks(1), 9);
        let week1 = sys.nip_histogram(SimTime::from_weeks(1), SimTime::from_weeks(2), 9);
        assert_eq!(week0.count(2), 1);
        assert_eq!(week0.total(), 1);
        assert_eq!(week1.count(6), 2);
    }

    #[test]
    fn booking_refs_are_unique() {
        let mut sys = system_with_flight(200);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let r = sys
                .hold(FlightId(1), pax(1), SimTime::from_mins(i))
                .unwrap();
            assert!(seen.insert(r));
            sys.cancel(r, SimTime::from_mins(i)).unwrap();
        }
    }

    proptest! {
        /// Conservation invariant: under any interleaving of holds, payments,
        /// cancellations, and time advances, available + held + sold equals
        /// capacity.
        #[test]
        fn prop_seat_conservation(ops in proptest::collection::vec((0u8..4, 1usize..6, 0u64..120), 1..80)) {
            let capacity = 40;
            let mut sys = system_with_flight(capacity);
            let mut refs: Vec<BookingRef> = Vec::new();
            let mut now = SimTime::ZERO;
            for (op, n, dt) in ops {
                now += SimDuration::from_mins(dt as i64);
                match op {
                    0 => {
                        if let Ok(r) = sys.hold(FlightId(1), pax(n), now) {
                            refs.push(r);
                        }
                    }
                    1 => {
                        if let Some(&r) = refs.get(n % refs.len().max(1)) {
                            let _ = sys.pay(r, now);
                        }
                    }
                    2 => {
                        if let Some(&r) = refs.get(n % refs.len().max(1)) {
                            let _ = sys.cancel(r, now);
                        }
                    }
                    _ => {
                        sys.expire_due(now);
                    }
                }
                prop_assert!(conservation_ok(&sys, FlightId(1), capacity));
            }
            // Final sweep far in the future: every hold lapses; conservation
            // still holds and nothing remains held.
            sys.expire_due(now + SimDuration::from_days(1));
            prop_assert!(conservation_ok(&sys, FlightId(1), capacity));
            prop_assert_eq!(sys.availability(FlightId(1)).unwrap().held, 0);
        }
    }
}
