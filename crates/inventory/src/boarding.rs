//! Boarding-pass issuance records.
//!
//! Airline D (§IV-C) let ticketed passengers receive boarding passes "among
//! other options, via SMS" with **no rate limit per booking reference** —
//! the feature the SMS pumpers monetized. [`BoardingPass`] captures one
//! issuance: which booking, which channel, which destination.

use fg_core::ids::{BookingRef, PhoneNumber};
use fg_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a boarding pass is delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryChannel {
    /// Delivered by SMS to a phone number — the abused channel.
    Sms(PhoneNumber),
    /// Delivered by e-mail (modelled as effectively free).
    Email,
    /// Displayed in-app / downloaded (free).
    InApp,
}

impl DeliveryChannel {
    /// `true` when the channel incurs per-message carrier cost.
    pub fn is_sms(&self) -> bool {
        matches!(self, DeliveryChannel::Sms(_))
    }
}

impl fmt::Display for DeliveryChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryChannel::Sms(n) => write!(f, "sms:{n}"),
            DeliveryChannel::Email => write!(f, "email"),
            DeliveryChannel::InApp => write!(f, "in-app"),
        }
    }
}

/// A single boarding-pass issuance event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoardingPass {
    booking: BookingRef,
    channel: DeliveryChannel,
    issued_at: SimTime,
    sequence: u32,
}

impl BoardingPass {
    /// Records an issuance: the `sequence`-th pass for this booking.
    pub fn new(
        booking: BookingRef,
        channel: DeliveryChannel,
        issued_at: SimTime,
        sequence: u32,
    ) -> Self {
        BoardingPass {
            booking,
            channel,
            issued_at,
            sequence,
        }
    }

    /// The booking the pass belongs to.
    pub fn booking(&self) -> BookingRef {
        self.booking
    }

    /// The delivery channel used.
    pub fn channel(&self) -> DeliveryChannel {
        self.channel
    }

    /// When the pass was issued.
    pub fn issued_at(&self) -> SimTime {
        self.issued_at
    }

    /// 1-based issuance counter within the booking.
    pub fn sequence(&self) -> u32 {
        self.sequence
    }
}

impl fmt::Display for BoardingPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BP#{} for {} via {} at {}",
            self.sequence, self.booking, self.channel, self.issued_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ids::CountryCode;

    #[test]
    fn sms_channel_detected() {
        let n = PhoneNumber::new(CountryCode::new("UZ"), 995_550_001);
        assert!(DeliveryChannel::Sms(n).is_sms());
        assert!(!DeliveryChannel::Email.is_sms());
        assert!(!DeliveryChannel::InApp.is_sms());
    }

    #[test]
    fn accessors_and_display() {
        let n = PhoneNumber::new(CountryCode::new("IR"), 9_121_234);
        let bp = BoardingPass::new(
            BookingRef::from_index(7),
            DeliveryChannel::Sms(n),
            SimTime::from_hours(3),
            2,
        );
        assert_eq!(bp.sequence(), 2);
        assert_eq!(bp.booking(), BookingRef::from_index(7));
        assert!(bp.to_string().contains("BP#2"));
        assert!(bp.to_string().contains("sms:+IR"));
    }
}
