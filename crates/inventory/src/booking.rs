//! Booking (PNR) records and lifecycle.

use crate::passenger::Passenger;
use fg_core::ids::{BookingRef, FlightId};
use fg_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lifecycle state of a booking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BookingStatus {
    /// Seats are held; payment pending; hold expires at the recorded time.
    Held,
    /// Payment completed; seats are sold.
    Paid,
    /// E-ticket issued; boarding passes may be requested.
    Ticketed,
    /// The hold expired before payment; seats returned to inventory.
    Expired,
    /// Cancelled by the client or the defence; seats returned if held.
    Cancelled,
}

impl BookingStatus {
    /// Short lowercase label for error messages and reports.
    pub const fn label(self) -> &'static str {
        match self {
            BookingStatus::Held => "held",
            BookingStatus::Paid => "paid",
            BookingStatus::Ticketed => "ticketed",
            BookingStatus::Expired => "expired",
            BookingStatus::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for BookingStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A Passenger Name Record: the unit the attacks create in bulk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Booking {
    reference: BookingRef,
    flight: FlightId,
    passengers: Vec<Passenger>,
    status: BookingStatus,
    created_at: SimTime,
    hold_expires_at: SimTime,
    boarding_passes_sent: u32,
}

impl Booking {
    pub(crate) fn new(
        reference: BookingRef,
        flight: FlightId,
        passengers: Vec<Passenger>,
        created_at: SimTime,
        hold_expires_at: SimTime,
    ) -> Self {
        Booking {
            reference,
            flight,
            passengers,
            status: BookingStatus::Held,
            created_at,
            hold_expires_at,
            boarding_passes_sent: 0,
        }
    }

    /// The record locator.
    pub fn reference(&self) -> BookingRef {
        self.reference
    }

    /// The flight this booking holds seats on.
    pub fn flight(&self) -> FlightId {
        self.flight
    }

    /// Passenger records, in entry order.
    pub fn passengers(&self) -> &[Passenger] {
        &self.passengers
    }

    /// Number in Party: the paper's Fig. 1 quantity.
    pub fn nip(&self) -> u32 {
        self.passengers.len() as u32
    }

    /// Current lifecycle state.
    pub fn status(&self) -> BookingStatus {
        self.status
    }

    /// Creation instant.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// When the hold lapses if unpaid.
    pub fn hold_expires_at(&self) -> SimTime {
        self.hold_expires_at
    }

    /// How many boarding passes have been issued against this booking.
    pub fn boarding_passes_sent(&self) -> u32 {
        self.boarding_passes_sent
    }

    pub(crate) fn set_status(&mut self, status: BookingStatus) {
        self.status = status;
    }

    pub(crate) fn count_boarding_pass(&mut self) {
        self.boarding_passes_sent += 1;
    }
}

impl fmt::Display for Booking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} NiP={} [{}]",
            self.reference,
            self.flight,
            self.nip(),
            self.status
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booking() -> Booking {
        Booking::new(
            BookingRef::from_index(1),
            FlightId(2),
            vec![Passenger::simple("A", "B"), Passenger::simple("C", "D")],
            SimTime::ZERO,
            SimTime::from_mins(30),
        )
    }

    #[test]
    fn new_booking_is_held() {
        let b = booking();
        assert_eq!(b.status(), BookingStatus::Held);
        assert_eq!(b.nip(), 2);
        assert_eq!(b.boarding_passes_sent(), 0);
        assert_eq!(b.hold_expires_at(), SimTime::from_mins(30));
    }

    #[test]
    fn status_labels() {
        assert_eq!(BookingStatus::Held.label(), "held");
        assert_eq!(BookingStatus::Ticketed.to_string(), "ticketed");
    }

    #[test]
    fn boarding_pass_counter() {
        let mut b = booking();
        b.count_boarding_pass();
        b.count_boarding_pass();
        assert_eq!(b.boarding_passes_sent(), 2);
    }

    #[test]
    fn display_mentions_reference_and_nip() {
        let s = booking().to_string();
        assert!(s.contains("NiP=2"));
        assert!(s.contains("[held]"));
    }
}
