//! Passenger records.
//!
//! §IV-B of the paper shows that passenger details are the richest signal
//! for Seat Spinning detection: bots used "entirely random entries", fixed
//! names with "systematically rotated" birthdates, or name-surname overlaps,
//! while manual attackers permuted "the same fixed set of passenger names"
//! with occasional misspellings. The detection heuristics live in
//! `fg-detection`; this module only defines the data they inspect.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar date (validated, proleptic-Gregorian-lite: leap years handled,
/// no pre-1900 dates needed for birthdates).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, validating month and day ranges.
    pub fn new(year: u16, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > Self::days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    fn days_in_month(year: u16, month: u8) -> u8 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
                {
                    29
                } else {
                    28
                }
            }
            _ => 0,
        }
    }

    /// The year component.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// The month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// The date `days` days later (approximate month arithmetic: walks day
    /// by day, adequate for birthdate-rotation modelling).
    pub fn plus_days(mut self, days: u32) -> Date {
        for _ in 0..days {
            if self.day < Self::days_in_month(self.year, self.month) {
                self.day += 1;
            } else if self.month < 12 {
                self.month += 1;
                self.day = 1;
            } else {
                self.year += 1;
                self.month = 1;
                self.day = 1;
            }
        }
        self
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A passenger record as supplied at hold time.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Passenger {
    /// Given name, upper-cased at construction (PNR convention).
    pub first_name: String,
    /// Surname, upper-cased at construction.
    pub surname: String,
    /// Date of birth, if collected by the airline.
    pub birthdate: Option<Date>,
    /// Contact e-mail, if collected.
    pub email: Option<String>,
}

impl Passenger {
    /// Creates a passenger with just a name (names are upper-cased, matching
    /// airline PNR convention and making comparisons case-insensitive).
    pub fn simple(first_name: &str, surname: &str) -> Self {
        Passenger {
            first_name: first_name.to_uppercase(),
            surname: surname.to_uppercase(),
            birthdate: None,
            email: None,
        }
    }

    /// Creates a passenger with full details.
    pub fn full(first_name: &str, surname: &str, birthdate: Date, email: &str) -> Self {
        Passenger {
            first_name: first_name.to_uppercase(),
            surname: surname.to_uppercase(),
            birthdate: Some(birthdate),
            email: Some(email.to_lowercase()),
        }
    }

    /// The `"FIRST SURNAME"` key used by repetition heuristics.
    pub fn name_key(&self) -> String {
        format!("{} {}", self.first_name, self.surname)
    }
}

impl fmt::Display for Passenger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.surname, self.first_name)?;
        if let Some(d) = self.birthdate {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_validation() {
        assert!(Date::new(1990, 2, 29).is_none());
        assert!(Date::new(1992, 2, 29).is_some()); // leap year
        assert!(Date::new(2000, 2, 29).is_some()); // 400-rule leap year
        assert!(Date::new(1900, 2, 29).is_none()); // 100-rule non-leap
        assert!(Date::new(1990, 13, 1).is_none());
        assert!(Date::new(1990, 0, 1).is_none());
        assert!(Date::new(1990, 4, 31).is_none());
        assert!(Date::new(1990, 4, 30).is_some());
    }

    #[test]
    fn plus_days_rolls_over() {
        let d = Date::new(1999, 12, 31).unwrap();
        assert_eq!(d.plus_days(1), Date::new(2000, 1, 1).unwrap());
        let d = Date::new(1992, 2, 28).unwrap();
        assert_eq!(d.plus_days(1), Date::new(1992, 2, 29).unwrap());
        assert_eq!(d.plus_days(2), Date::new(1992, 3, 1).unwrap());
    }

    #[test]
    fn names_are_uppercased() {
        let p = Passenger::simple("Ada", "Lovelace");
        assert_eq!(p.first_name, "ADA");
        assert_eq!(p.surname, "LOVELACE");
        assert_eq!(p.name_key(), "ADA LOVELACE");
    }

    #[test]
    fn full_passenger_lowercases_email() {
        let p = Passenger::full(
            "Grace",
            "Hopper",
            Date::new(1906, 12, 9).unwrap(),
            "Grace@Navy.MIL",
        );
        assert_eq!(p.email.as_deref(), Some("grace@navy.mil"));
        assert_eq!(p.birthdate.unwrap().to_string(), "1906-12-09");
    }

    #[test]
    fn display_is_pnr_style() {
        let p = Passenger::simple("Ada", "Lovelace");
        assert_eq!(p.to_string(), "LOVELACE/ADA");
    }
}
