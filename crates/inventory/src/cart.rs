//! Generic e-commerce carts — OWASP's canonical Denial of Inventory.
//!
//! The paper's §II-A opens with OWASP's formulation: "removing e-commerce
//! items from circulation by adding large quantities to a cart or basket
//! without completing the purchase". [`CartStore`] is the minimal store
//! implementing that feature: products with finite stock, carts that hold
//! units under a TTL, and checkout. It shares its conservation discipline
//! with the airline ledger.

use crate::error::InventoryError;
use fg_core::event::EventQueue;
use fg_core::ids::ClientId;
use fg_core::money::Money;
use fg_core::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifies a product in a [`CartStore`].
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ProductId(pub u64);

impl fmt::Display for ProductId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prod{}", self.0)
    }
}

/// A product with finite stock.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Product {
    /// Identifier.
    pub id: ProductId,
    /// Display name.
    pub name: String,
    /// Unit price.
    pub price: Money,
    /// Total stock at creation.
    pub stock: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CartLine {
    client: ClientId,
    product: ProductId,
    quantity: u32,
    expires_at: SimTime,
    live: bool,
}

/// A store with per-client carts holding finite stock under a TTL.
///
/// # Example
///
/// ```
/// use fg_inventory::cart::{CartStore, Product, ProductId};
/// use fg_core::ids::ClientId;
/// use fg_core::money::Money;
/// use fg_core::time::{SimDuration, SimTime};
///
/// let mut store = CartStore::new(SimDuration::from_mins(20));
/// store.add_product(Product {
///     id: ProductId(1),
///     name: "GPU".into(),
///     price: Money::from_units(999),
///     stock: 10,
/// });
/// store.add_to_cart(ClientId(1), ProductId(1), 4, SimTime::ZERO)?;
/// assert_eq!(store.available(ProductId(1)), Some(6));
/// // Abandoned carts release stock after the TTL.
/// store.expire_due(SimTime::from_mins(21));
/// assert_eq!(store.available(ProductId(1)), Some(10));
/// # Ok::<(), fg_inventory::InventoryError>(())
/// ```
#[derive(Debug)]
pub struct CartStore {
    products: HashMap<ProductId, Product>,
    available: HashMap<ProductId, u32>,
    sold: HashMap<ProductId, u32>,
    lines: Vec<CartLine>,
    expiry: EventQueue<usize>,
    ttl: SimDuration,
    revenue: Money,
}

impl CartStore {
    /// Creates a store whose cart lines lapse after `ttl`.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is not positive.
    pub fn new(ttl: SimDuration) -> Self {
        assert!(ttl.as_millis() > 0, "cart TTL must be positive");
        CartStore {
            products: HashMap::new(),
            available: HashMap::new(),
            sold: HashMap::new(),
            lines: Vec::new(),
            expiry: EventQueue::new(),
            ttl,
            revenue: Money::ZERO,
        }
    }

    /// Registers a product (replacing any prior definition and resetting its
    /// ledger).
    pub fn add_product(&mut self, product: Product) {
        self.available.insert(product.id, product.stock);
        self.sold.insert(product.id, 0);
        self.products.insert(product.id, product);
    }

    /// Units of `product` free to add to carts right now.
    pub fn available(&self, product: ProductId) -> Option<u32> {
        self.available.get(&product).copied()
    }

    /// Units of `product` sold so far.
    pub fn sold(&self, product: ProductId) -> Option<u32> {
        self.sold.get(&product).copied()
    }

    /// Units of `product` currently sitting in live carts.
    pub fn in_carts(&self, product: ProductId) -> u32 {
        self.lines
            .iter()
            .filter(|l| l.live && l.product == product)
            .map(|l| l.quantity)
            .sum()
    }

    /// Total revenue from checkouts.
    pub fn revenue(&self) -> Money {
        self.revenue
    }

    /// Adds `quantity` units of `product` to `client`'s cart at `now`.
    ///
    /// # Errors
    ///
    /// * [`InventoryError::UnknownProduct`] — no such product.
    /// * [`InventoryError::InsufficientStock`] — not enough free units.
    pub fn add_to_cart(
        &mut self,
        client: ClientId,
        product: ProductId,
        quantity: u32,
        now: SimTime,
    ) -> Result<(), InventoryError> {
        self.expire_due(now);
        if !self.products.contains_key(&product) {
            return Err(InventoryError::UnknownProduct(product.0));
        }
        let avail = self
            .available
            .get_mut(&product)
            .expect("ledger exists per product");
        if *avail < quantity {
            return Err(InventoryError::InsufficientStock {
                product: product.0,
                requested: quantity,
                available: *avail,
            });
        }
        *avail -= quantity;
        let idx = self.lines.len();
        self.lines.push(CartLine {
            client,
            product,
            quantity,
            expires_at: now + self.ttl,
            live: true,
        });
        self.expiry.schedule(now + self.ttl, idx);
        Ok(())
    }

    /// Checks out every live line in `client`'s cart, converting holds into
    /// sales. Returns the total charged.
    pub fn checkout(&mut self, client: ClientId, now: SimTime) -> Money {
        self.expire_due(now);
        let mut total = Money::ZERO;
        for line in &mut self.lines {
            if line.live && line.client == client {
                line.live = false;
                *self
                    .sold
                    .get_mut(&line.product)
                    .expect("ledger exists per product") += line.quantity;
                let price = self.products[&line.product].price;
                total += price * u64::from(line.quantity);
            }
        }
        self.revenue += total;
        total
    }

    /// Releases every cart line whose TTL elapsed by `now`. Returns how many
    /// lines lapsed.
    pub fn expire_due(&mut self, now: SimTime) -> usize {
        let mut count = 0;
        while let Some((_, idx)) = self.expiry.pop_before(now) {
            let line = &mut self.lines[idx];
            if line.live && line.expires_at <= now {
                line.live = false;
                *self
                    .available
                    .get_mut(&line.product)
                    // fg-analyze: allow(panic-path): ledger invariant — every product gets a ledger at registration, before any line can reference it
                    .expect("ledger exists per product") += line.quantity;
                count += 1;
            }
        }
        count
    }

    /// Conservation check: for every product,
    /// `available + in_carts + sold == stock`.
    pub fn conservation_holds(&self) -> bool {
        self.products
            .values()
            .all(|p| self.available[&p.id] + self.in_carts(p.id) + self.sold[&p.id] == p.stock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn store(stock: u32) -> CartStore {
        let mut s = CartStore::new(SimDuration::from_mins(20));
        s.add_product(Product {
            id: ProductId(1),
            name: "Widget".into(),
            price: Money::from_units(50),
            stock,
        });
        s
    }

    #[test]
    fn add_and_checkout() {
        let mut s = store(10);
        s.add_to_cart(ClientId(1), ProductId(1), 3, SimTime::ZERO)
            .unwrap();
        assert_eq!(s.available(ProductId(1)), Some(7));
        assert_eq!(s.in_carts(ProductId(1)), 3);
        let charged = s.checkout(ClientId(1), SimTime::from_mins(5));
        assert_eq!(charged, Money::from_units(150));
        assert_eq!(s.sold(ProductId(1)), Some(3));
        assert_eq!(s.revenue(), Money::from_units(150));
        assert!(s.conservation_holds());
    }

    #[test]
    fn abandoned_cart_releases_stock() {
        let mut s = store(10);
        s.add_to_cart(ClientId(2), ProductId(1), 10, SimTime::ZERO)
            .unwrap();
        assert_eq!(s.available(ProductId(1)), Some(0));
        assert_eq!(s.expire_due(SimTime::from_mins(21)), 1);
        assert_eq!(s.available(ProductId(1)), Some(10));
        // Checkout after expiry charges nothing.
        assert_eq!(s.checkout(ClientId(2), SimTime::from_mins(22)), Money::ZERO);
    }

    #[test]
    fn doi_loop_denies_stock_continuously() {
        // The DoI attack: re-add the full stock the moment the hold lapses.
        let mut s = store(100);
        let attacker = ClientId(666);
        let mut now = SimTime::ZERO;
        for _ in 0..20 {
            s.add_to_cart(attacker, ProductId(1), 100, now).unwrap();
            // A legitimate buyer finds nothing for the whole TTL window.
            assert_eq!(
                s.add_to_cart(
                    ClientId(1),
                    ProductId(1),
                    1,
                    now + SimDuration::from_mins(10)
                ),
                Err(InventoryError::InsufficientStock {
                    product: 1,
                    requested: 1,
                    available: 0
                })
            );
            now += SimDuration::from_mins(21);
            s.expire_due(now);
        }
        assert_eq!(s.sold(ProductId(1)), Some(0), "attacker never buys");
        assert!(s.conservation_holds());
    }

    #[test]
    fn unknown_product_rejected() {
        let mut s = store(10);
        assert_eq!(
            s.add_to_cart(ClientId(1), ProductId(9), 1, SimTime::ZERO),
            Err(InventoryError::UnknownProduct(9))
        );
        assert_eq!(s.available(ProductId(9)), None);
    }

    #[test]
    fn checkout_only_affects_own_cart() {
        let mut s = store(10);
        s.add_to_cart(ClientId(1), ProductId(1), 2, SimTime::ZERO)
            .unwrap();
        s.add_to_cart(ClientId(2), ProductId(1), 3, SimTime::ZERO)
            .unwrap();
        s.checkout(ClientId(1), SimTime::from_mins(1));
        assert_eq!(s.sold(ProductId(1)), Some(2));
        assert_eq!(s.in_carts(ProductId(1)), 3);
        assert!(s.conservation_holds());
    }

    proptest! {
        /// Stock conservation under arbitrary add/checkout/expire interleavings.
        #[test]
        fn prop_stock_conservation(ops in proptest::collection::vec((0u8..3, 1u32..5, 0u64..60), 1..60)) {
            let mut s = store(30);
            let mut now = SimTime::ZERO;
            for (op, q, dt) in ops {
                now += SimDuration::from_mins(dt as i64);
                match op {
                    0 => { let _ = s.add_to_cart(ClientId(u64::from(q % 3)), ProductId(1), q, now); }
                    1 => { s.checkout(ClientId(u64::from(q % 3)), now); }
                    _ => { s.expire_due(now); }
                }
                prop_assert!(s.conservation_holds());
            }
        }
    }
}
