//! Revenue-management pricing — the substrate of the §II-A price-drop
//! manipulation.
//!
//! "In cases involving dynamic pricing, attackers strategically hold
//! reservations and items at lower fares without an investment to force
//! price drops before making a legitimate purchase." Airline revenue
//! management prices against the *booking pace*: a flight selling ahead of
//! its expected curve gets more expensive, a flight selling behind it gets
//! discounted — aggressively so close to departure, when unsold seats are
//! about to become worthless. A DoI attacker who suppresses real sales makes
//! the flight look behind pace, harvests the resulting discount, and only
//! then buys.

use crate::flight::Availability;
use fg_core::money::Money;
use fg_core::time::SimTime;
use serde::{Deserialize, Serialize};

/// A pace-based dynamic pricer.
///
/// The fare is `base × pace_factor`, where the pace factor compares actual
/// sold seats to the linear booking curve between `sale_start` and
/// departure, clamped to `[floor, ceiling]`.
///
/// # Example
///
/// ```
/// use fg_inventory::pricing::DynamicPricer;
/// use fg_inventory::flight::Availability;
/// use fg_core::money::Money;
/// use fg_core::time::SimTime;
///
/// let pricer = DynamicPricer::airline(Money::from_units(120));
/// let empty_flight = Availability { available: 180, held: 0, sold: 0 };
/// // Halfway to departure with zero sales: well below pace → discounted.
/// let fare = pricer.quote(
///     empty_flight,
///     SimTime::from_days(15),
///     SimTime::ZERO,
///     SimTime::from_days(30),
/// );
/// assert!(fare < Money::from_units(120));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicPricer {
    /// The reference fare at exactly-on-pace demand.
    pub base: Money,
    /// Lowest multiplier (fire-sale floor).
    pub floor: f64,
    /// Highest multiplier (peak-demand ceiling).
    pub ceiling: f64,
    /// How strongly pace deviations move the fare, `0.0..`.
    pub sensitivity: f64,
}

impl DynamicPricer {
    /// An airline-typical configuration: fares between 55 % and 180 % of
    /// base, with near-linear response to pace.
    pub fn airline(base: Money) -> Self {
        DynamicPricer {
            base,
            floor: 0.55,
            ceiling: 1.8,
            sensitivity: 1.0,
        }
    }

    /// The fraction of the booking window elapsed at `now`, in `0.0..=1.0`.
    fn elapsed_fraction(now: SimTime, sale_start: SimTime, departure: SimTime) -> f64 {
        let total = departure.saturating_since(sale_start).as_millis() as f64;
        if total <= 0.0 {
            return 1.0;
        }
        let elapsed = now.saturating_since(sale_start).as_millis() as f64;
        (elapsed / total).clamp(0.0, 1.0)
    }

    /// The pace multiplier for the given ledger and timeline.
    ///
    /// Held (unpaid) seats do **not** count as demand — revenue management
    /// prices against money in the bank, which is precisely the blind spot
    /// the manipulation exploits.
    pub fn pace_factor(
        &self,
        availability: Availability,
        now: SimTime,
        sale_start: SimTime,
        departure: SimTime,
    ) -> f64 {
        let capacity = availability.capacity().max(1) as f64;
        let elapsed = Self::elapsed_fraction(now, sale_start, departure);
        // Smoothed pace estimator: at the very start of the window there is
        // no evidence either way, so the fare opens at base and converges to
        // sold-fraction / elapsed-fraction as the window progresses.
        const SMOOTHING: f64 = 0.08;
        let sold_frac = f64::from(availability.sold) / capacity;
        let pace = (sold_frac + SMOOTHING) / (elapsed + SMOOTHING);
        let raw = 1.0 + self.sensitivity * (pace - 1.0);
        raw.clamp(self.floor, self.ceiling)
    }

    /// Quotes the current fare per seat.
    pub fn quote(
        &self,
        availability: Availability,
        now: SimTime,
        sale_start: SimTime,
        departure: SimTime,
    ) -> Money {
        self.base
            .mul_f64(self.pace_factor(availability, now, sale_start, departure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Money = Money::from_units(100);

    fn avail(available: u32, held: u32, sold: u32) -> Availability {
        Availability {
            available,
            held,
            sold,
        }
    }

    fn quote_at(sold: u32, held: u32, day: u64) -> Money {
        DynamicPricer::airline(BASE).quote(
            avail(180 - sold - held, held, sold),
            SimTime::from_days(day),
            SimTime::ZERO,
            SimTime::from_days(30),
        )
    }

    #[test]
    fn on_pace_flight_sells_at_base() {
        // Day 15 of 30, 90 of 180 sold: exactly on pace.
        assert_eq!(quote_at(90, 0, 15), BASE);
    }

    #[test]
    fn ahead_of_pace_raises_fares() {
        let hot = quote_at(150, 0, 15);
        assert!(hot > BASE, "{hot}");
        // Ceiling binds eventually.
        let max = quote_at(180, 0, 1);
        assert_eq!(max, BASE.mul_f64(1.8));
    }

    #[test]
    fn behind_pace_discounts_down_to_the_floor() {
        let slow = quote_at(30, 0, 15);
        assert!(slow < BASE, "{slow}");
        let fire_sale = quote_at(0, 0, 28);
        assert_eq!(fire_sale, BASE.mul_f64(0.55));
    }

    #[test]
    fn held_seats_do_not_count_as_demand() {
        // 90 held vs 90 sold at the same instant: wildly different fares.
        let held_heavy = quote_at(0, 90, 15);
        let sold_heavy = quote_at(90, 0, 15);
        assert!(held_heavy < sold_heavy);
        assert_eq!(held_heavy, BASE.mul_f64(0.55), "holds look like no demand");
    }

    #[test]
    fn discount_deepens_toward_departure() {
        // Same (low) sales, later date → cheaper.
        let early = quote_at(30, 0, 10);
        let late = quote_at(30, 0, 25);
        assert!(late < early, "late {late} vs early {early}");
    }

    #[test]
    fn day_zero_quotes_at_base() {
        assert_eq!(quote_at(0, 0, 0), BASE);
    }

    #[test]
    fn degenerate_timeline_is_safe() {
        let p = DynamicPricer::airline(BASE);
        let q = p.quote(
            avail(180, 0, 0),
            SimTime::from_days(5),
            SimTime::from_days(5),
            SimTime::from_days(5),
        );
        assert!(q >= BASE.mul_f64(0.55) && q <= BASE.mul_f64(1.8));
    }
}
