//! # fg-inventory
//!
//! Reservation and inventory substrate for the FeatureGuard workspace.
//!
//! This crate implements the application features the paper's attacks abuse:
//!
//! * **Seat holds** (§IV-A): "once a seat is selected on a flight, it is
//!   temporarily reserved for the passenger for a specific duration — ranging
//!   from 30 minutes to several hours — before payment is required."
//!   [`ReservationSystem`] owns flights with finite capacity and a TTL-based
//!   hold ledger whose conservation invariant
//!   (`available + held + sold == capacity`) is property-tested.
//! * **PNR lifecycle** (§IV-B/C): bookings carry passenger records (name,
//!   surname, birthdate, email) — the very fields whose repetition patterns
//!   betray automated vs. manual Seat Spinning — and move through
//!   held → paid → ticketed states.
//! * **Boarding-pass issuance** (§IV-C): ticketed bookings can request
//!   boarding-pass delivery via SMS any number of times — the feature that,
//!   without per-booking rate limits, enabled the Airline D SMS-pumping
//!   attack.
//! * **Generic carts** ([`cart`]): OWASP's canonical DoI formulation —
//!   e-commerce stock held in carts without purchase.
//!
//! # Example
//!
//! ```
//! use fg_inventory::{Flight, Passenger, ReservationSystem};
//! use fg_core::time::{SimDuration, SimTime};
//! use fg_core::ids::FlightId;
//!
//! let mut sys = ReservationSystem::new(SimDuration::from_mins(30), 9);
//! sys.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(30)));
//!
//! let pax = vec![Passenger::simple("ADA", "LOVELACE")];
//! let booking = sys.hold(FlightId(1), pax, SimTime::ZERO)?;
//! assert_eq!(sys.availability(FlightId(1)).unwrap().held, 1);
//!
//! sys.pay(booking, SimTime::from_mins(10))?;
//! assert_eq!(sys.availability(FlightId(1)).unwrap().sold, 1);
//! # Ok::<(), fg_inventory::InventoryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boarding;
pub mod booking;
pub mod cart;
pub mod error;
pub mod flight;
pub mod passenger;
pub mod pricing;
pub mod system;

pub use boarding::{BoardingPass, DeliveryChannel};
pub use booking::{Booking, BookingStatus};
pub use cart::{CartStore, Product, ProductId};
pub use error::InventoryError;
pub use flight::{Availability, Flight};
pub use passenger::{Date, Passenger};
pub use pricing::DynamicPricer;
pub use system::ReservationSystem;
