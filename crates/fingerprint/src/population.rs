//! Parametric model of the legitimate browsing population.
//!
//! Real fingerprint populations have strong cross-attribute structure: an
//! iPhone reports `platform == "iPhone"`, touch support, a portrait screen,
//! and a Safari-class canvas hash. Humans sampled from [`PopulationModel`]
//! respect that structure; the *naive* bot sampler draws attributes
//! independently and therefore violates it with high probability — the exact
//! weakness the fp-inconsistent line of work (paper ref \[51\]) exploits, and
//! the reason sophisticated attackers mimic the population instead.

use crate::attributes::{BrowserFamily, Fingerprint, OsFamily, ScreenResolution};
use fg_core::rng::splitmix64;
use fg_core::stats::Categorical;
use rand::Rng;

/// Number of canvas-hash variants a single (browser, OS) class exhibits in
/// the wild (driver/font differences).
const CANVAS_VARIANTS: u64 = 4;

/// Deterministically computes the canvas-hash class for a (browser, OS,
/// variant) combination.
pub fn canvas_class(browser: BrowserFamily, os: OsFamily, variant: u64) -> u64 {
    splitmix64(
        0xCA17_0000 ^ (browser as u64) << 16 ^ (os as u64) << 8 ^ (variant % CANVAS_VARIANTS),
    )
}

/// `true` if `hash` is a plausible canvas hash for this (browser, OS) pair.
pub fn plausible_canvas(browser: BrowserFamily, os: OsFamily, hash: u64) -> bool {
    (0..CANVAS_VARIANTS).any(|v| canvas_class(browser, os, v) == hash)
}

/// Deterministically computes the WebGL-hash class for (OS, variant).
pub fn webgl_class(os: OsFamily, variant: u64) -> u64 {
    splitmix64(0x9E61_0000 ^ (os as u64) << 8 ^ (variant % CANVAS_VARIANTS))
}

/// Deterministically computes the audio-hash class for (browser, variant).
pub fn audio_class(browser: BrowserFamily, variant: u64) -> u64 {
    splitmix64(0xAD10_0000 ^ (browser as u64) << 8 ^ (variant % 2))
}

/// A consistent device archetype: an OS together with the browsers, screens
/// and hardware shapes genuinely observed on it.
#[derive(Clone, Debug)]
struct DeviceProfile {
    os: OsFamily,
    browsers: Categorical<(BrowserFamily, u16)>,
    screens: Categorical<ScreenResolution>,
    concurrency: Categorical<u8>,
    memory: Categorical<u8>,
    plugin_count: Categorical<u8>,
}

/// A weighted mixture of device archetypes plus language/timezone marginals.
///
/// # Example
///
/// ```
/// use fg_fingerprint::population::PopulationModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = PopulationModel::default_web();
/// let mut rng = StdRng::seed_from_u64(3);
/// let fp = model.sample_human(&mut rng);
/// assert!(!fp.webdriver, "humans never expose navigator.webdriver");
/// ```
#[derive(Clone, Debug)]
pub struct PopulationModel {
    profiles: Categorical<usize>,
    devices: Vec<DeviceProfile>,
    languages: Categorical<&'static str>,
    timezones: Categorical<i16>,
}

impl PopulationModel {
    /// The default model: a web population resembling public browser
    /// market-share statistics (desktop Windows/Chrome heavy, substantial
    /// mobile share).
    pub fn default_web() -> Self {
        let desktop_screens = Categorical::new(vec![
            (ScreenResolution::new(1920, 1080), 38.0),
            (ScreenResolution::new(1366, 768), 18.0),
            (ScreenResolution::new(2560, 1440), 12.0),
            (ScreenResolution::new(1536, 864), 10.0),
            (ScreenResolution::new(1440, 900), 8.0),
            (ScreenResolution::new(3840, 2160), 4.0),
        ])
        .expect("static weights");
        let phone_screens = Categorical::new(vec![
            (ScreenResolution::new(390, 844), 30.0),
            (ScreenResolution::new(393, 852), 22.0),
            (ScreenResolution::new(412, 915), 20.0),
            (ScreenResolution::new(360, 800), 18.0),
            (ScreenResolution::new(430, 932), 10.0),
        ])
        .expect("static weights");

        let devices = vec![
            DeviceProfile {
                os: OsFamily::Windows,
                browsers: Categorical::new(vec![
                    ((BrowserFamily::Chrome, 120), 55.0),
                    ((BrowserFamily::Chrome, 121), 15.0),
                    ((BrowserFamily::Edge, 120), 18.0),
                    ((BrowserFamily::Firefox, 121), 12.0),
                ])
                .expect("static weights"),
                screens: desktop_screens.clone(),
                concurrency: Categorical::new(vec![(4, 25.0), (8, 45.0), (12, 15.0), (16, 15.0)])
                    .expect("static weights"),
                memory: Categorical::new(vec![(8, 55.0), (16, 35.0), (32, 10.0)])
                    .expect("static weights"),
                plugin_count: Categorical::new(vec![(3, 60.0), (5, 40.0)]).expect("static weights"),
            },
            DeviceProfile {
                os: OsFamily::MacOs,
                browsers: Categorical::new(vec![
                    ((BrowserFamily::Safari, 17), 45.0),
                    ((BrowserFamily::Chrome, 120), 40.0),
                    ((BrowserFamily::Firefox, 121), 15.0),
                ])
                .expect("static weights"),
                screens: Categorical::new(vec![
                    (ScreenResolution::new(1440, 900), 35.0),
                    (ScreenResolution::new(1728, 1117), 30.0),
                    (ScreenResolution::new(2560, 1440), 20.0),
                    (ScreenResolution::new(1920, 1080), 15.0),
                ])
                .expect("static weights"),
                concurrency: Categorical::new(vec![(8, 55.0), (10, 30.0), (12, 15.0)])
                    .expect("static weights"),
                memory: Categorical::new(vec![(8, 45.0), (16, 45.0), (32, 10.0)])
                    .expect("static weights"),
                plugin_count: Categorical::new(vec![(3, 70.0), (5, 30.0)]).expect("static weights"),
            },
            DeviceProfile {
                os: OsFamily::Linux,
                browsers: Categorical::new(vec![
                    ((BrowserFamily::Firefox, 121), 55.0),
                    ((BrowserFamily::Chrome, 120), 45.0),
                ])
                .expect("static weights"),
                screens: desktop_screens,
                concurrency: Categorical::new(vec![(4, 20.0), (8, 40.0), (16, 40.0)])
                    .expect("static weights"),
                memory: Categorical::new(vec![(8, 40.0), (16, 40.0), (32, 20.0)])
                    .expect("static weights"),
                plugin_count: Categorical::new(vec![(0, 50.0), (3, 50.0)]).expect("static weights"),
            },
            DeviceProfile {
                os: OsFamily::Android,
                browsers: Categorical::new(vec![
                    ((BrowserFamily::Chrome, 120), 70.0),
                    ((BrowserFamily::SamsungInternet, 23), 20.0),
                    ((BrowserFamily::Firefox, 121), 10.0),
                ])
                .expect("static weights"),
                screens: phone_screens.clone(),
                concurrency: Categorical::new(vec![(8, 70.0), (4, 30.0)]).expect("static weights"),
                memory: Categorical::new(vec![(4, 40.0), (6, 35.0), (8, 25.0)])
                    .expect("static weights"),
                plugin_count: Categorical::new(vec![(0, 100.0)]).expect("static weights"),
            },
            DeviceProfile {
                os: OsFamily::Ios,
                browsers: Categorical::new(vec![
                    ((BrowserFamily::Safari, 17), 88.0),
                    ((BrowserFamily::Chrome, 120), 12.0),
                ])
                .expect("static weights"),
                screens: phone_screens,
                concurrency: Categorical::new(vec![(6, 100.0)]).expect("static weights"),
                memory: Categorical::new(vec![(4, 60.0), (6, 40.0)]).expect("static weights"),
                plugin_count: Categorical::new(vec![(0, 100.0)]).expect("static weights"),
            },
        ];

        PopulationModel {
            profiles: Categorical::new(vec![
                (0, 48.0), // Windows
                (1, 12.0), // macOS
                (2, 3.0),  // Linux
                (3, 27.0), // Android
                (4, 10.0), // iOS
            ])
            .expect("static weights"),
            devices,
            languages: Categorical::new(vec![
                ("en-US", 30.0),
                ("en-GB", 10.0),
                ("fr-FR", 10.0),
                ("de-DE", 8.0),
                ("es-ES", 8.0),
                ("it-IT", 6.0),
                ("zh-CN", 10.0),
                ("th-TH", 4.0),
                ("ru-RU", 6.0),
                ("ar-SA", 4.0),
                ("pt-BR", 4.0),
            ])
            .expect("static weights"),
            timezones: Categorical::new(vec![
                (-480, 6.0),
                (-300, 14.0),
                (0, 14.0),
                (60, 22.0),
                (120, 10.0),
                (180, 8.0),
                (330, 8.0),
                (420, 6.0),
                (480, 12.0),
            ])
            .expect("static weights"),
        }
    }

    /// Samples a fully consistent human fingerprint.
    pub fn sample_human<R: Rng + ?Sized>(&self, rng: &mut R) -> Fingerprint {
        let device = &self.devices[*self.profiles.sample(rng)];
        let (browser, version) = *device.browsers.sample(rng);
        let os = device.os;
        let canvas_variant = rng.gen_range(0..CANVAS_VARIANTS);
        Fingerprint {
            browser,
            browser_version: version,
            os,
            platform: os.platform_string().to_owned(),
            screen: *device.screens.sample(rng),
            language: (*self.languages.sample(rng)).to_owned(),
            timezone_offset_min: *self.timezones.sample(rng),
            hardware_concurrency: *device.concurrency.sample(rng),
            device_memory_gb: *device.memory.sample(rng),
            canvas_hash: canvas_class(browser, os, canvas_variant),
            webgl_hash: webgl_class(os, canvas_variant),
            audio_hash: audio_class(browser, rng.gen_range(0..2)),
            plugin_count: *device.plugin_count.sample(rng),
            touch_support: os.is_mobile(),
            webdriver: false,
            color_depth: if os.is_mobile() { 32 } else { 24 },
        }
    }

    /// Samples a *naive bot* fingerprint: attributes drawn independently,
    /// ignoring cross-attribute structure, with a chance of leaking
    /// instrumentation artifacts.
    ///
    /// `artifact_prob` is the probability that `navigator.webdriver` (or a
    /// headless UA) leaks through — 0.0 for carefully patched frameworks.
    pub fn sample_naive_bot<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        artifact_prob: f64,
    ) -> Fingerprint {
        let mut fp = self.sample_human(rng);
        // Independently re-roll structure-bearing attributes, breaking their
        // correlation with the chosen OS/browser.
        let other_os = OsFamily::ALL[rng.gen_range(0..OsFamily::ALL.len())];
        fp.platform = other_os.platform_string().to_owned();
        fp.touch_support = rng.gen_bool(0.5);
        let other_browser = BrowserFamily::ALL[rng.gen_range(0..BrowserFamily::ALL.len() - 1)];
        fp.canvas_hash = canvas_class(other_browser, other_os, rng.gen_range(0..CANVAS_VARIANTS));
        if rng.gen_bool(0.3) {
            fp.hardware_concurrency = 0; // unset in many headless configs
        }
        if rng.gen_bool(artifact_prob) {
            if rng.gen_bool(0.5) {
                fp.webdriver = true;
            } else {
                fp.browser = BrowserFamily::HeadlessChrome;
            }
        }
        fp
    }

    /// Samples a *mimicry bot* fingerprint: indistinguishable, attribute-wise,
    /// from [`PopulationModel::sample_human`]. Such bots can only be caught by
    /// behavioural signals — the paper's central point.
    pub fn sample_mimicry_bot<R: Rng + ?Sized>(&self, rng: &mut R) -> Fingerprint {
        self.sample_human(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inconsistency::consistency_report;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn humans_are_always_consistent() {
        let model = PopulationModel::default_web();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let fp = model.sample_human(&mut rng);
            let report = consistency_report(&fp);
            assert!(report.is_clean(), "human fp flagged: {report:?} for {fp}");
        }
    }

    #[test]
    fn naive_bots_are_frequently_inconsistent() {
        let model = PopulationModel::default_web();
        let mut rng = StdRng::seed_from_u64(43);
        let flagged = (0..500)
            .filter(|_| {
                let fp = model.sample_naive_bot(&mut rng, 0.2);
                !consistency_report(&fp).is_clean()
            })
            .count();
        assert!(
            flagged > 350,
            "expected most naive bots flagged, got {flagged}/500"
        );
    }

    #[test]
    fn mimicry_bots_pass_consistency() {
        let model = PopulationModel::default_web();
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..200 {
            let fp = model.sample_mimicry_bot(&mut rng);
            assert!(consistency_report(&fp).is_clean());
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let model = PopulationModel::default_web();
        let a = model.sample_human(&mut StdRng::seed_from_u64(7));
        let b = model.sample_human(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn population_has_diversity() {
        let model = PopulationModel::default_web();
        let mut rng = StdRng::seed_from_u64(45);
        let ids: std::collections::HashSet<u64> = (0..200)
            .map(|_| model.sample_human(&mut rng).identity_hash())
            .collect();
        assert!(ids.len() > 100, "only {} distinct identities", ids.len());
    }

    #[test]
    fn canvas_class_is_deterministic_and_keyed() {
        let a = canvas_class(BrowserFamily::Chrome, OsFamily::Windows, 0);
        assert_eq!(a, canvas_class(BrowserFamily::Chrome, OsFamily::Windows, 0));
        assert_ne!(
            a,
            canvas_class(BrowserFamily::Firefox, OsFamily::Windows, 0)
        );
        assert_ne!(a, canvas_class(BrowserFamily::Chrome, OsFamily::MacOs, 0));
        assert!(plausible_canvas(
            BrowserFamily::Chrome,
            OsFamily::Windows,
            a
        ));
        assert!(!plausible_canvas(
            BrowserFamily::Firefox,
            OsFamily::Windows,
            a
        ));
    }

    #[test]
    fn variants_wrap() {
        assert_eq!(
            canvas_class(BrowserFamily::Chrome, OsFamily::Windows, 0),
            canvas_class(BrowserFamily::Chrome, OsFamily::Windows, CANVAS_VARIANTS),
        );
    }
}
