//! # fg-fingerprint
//!
//! Browser fingerprint substrate for the FeatureGuard workspace.
//!
//! The paper (§III-B, §IV) shows that knowledge-based bot detection rests on
//! browser fingerprinting, and that the attacks it studies defeat it through
//! **fingerprint rotation** (new apparent identity every few hours — 5.3 h on
//! average in the Airline A case study) and **population mimicry** (rotated
//! fingerprints drawn to look like common real-user configurations). This
//! crate models exactly that arms race:
//!
//! * [`attributes`] — the fingerprint attribute tuple ([`Fingerprint`]):
//!   browser family/version, OS, screen, languages, timezone, hardware hints,
//!   rendering hashes (canvas / WebGL / audio), and automation artifacts such
//!   as `navigator.webdriver`.
//! * [`population`] — a parametric model of the *legitimate* user population
//!   with cross-attribute consistency (mobile OS ⇒ touch support, browser ⇒
//!   plausible canvas-hash class, …). Both humans and mimicry bots sample
//!   from it; naive bots sample attributes independently and become
//!   detectably inconsistent.
//! * [`rotation`] — bot rotation strategies and schedules.
//! * [`mod@similarity`] — attribute-weighted similarity and the linking score a
//!   defender can use to connect rotated identities.
//! * [`inconsistency`] — fp-inconsistent-style integrity checks that catch
//!   naive rotation.
//!
//! # Example
//!
//! ```
//! use fg_fingerprint::population::PopulationModel;
//! use fg_fingerprint::inconsistency::consistency_report;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let model = PopulationModel::default_web();
//! let mut rng = StdRng::seed_from_u64(1);
//! let human = model.sample_human(&mut rng);
//! // A fingerprint drawn from the consistent human model passes all checks.
//! assert!(consistency_report(&human).is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod inconsistency;
pub mod population;
pub mod rotation;
pub mod similarity;

pub use attributes::{BrowserFamily, Fingerprint, OsFamily, ScreenResolution};
pub use inconsistency::{consistency_report, ConsistencyReport, Inconsistency};
pub use population::PopulationModel;
pub use rotation::{RotationSchedule, RotationStrategy, Rotator};
pub use similarity::{linking_score, similarity};
