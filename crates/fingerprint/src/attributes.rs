//! The fingerprint attribute tuple.
//!
//! The attribute set mirrors what real anti-bot vendors collect (§III-B of
//! the paper): navigator properties, screen geometry, rendering hashes, and
//! instrumentation artifacts. Hashes are modelled as opaque `u64` classes —
//! detection operates on equality/population frequency, never on real pixel
//! bytes, so this loses nothing relevant.

use fg_core::rng::splitmix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Browser product family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BrowserFamily {
    Chrome,
    Firefox,
    Safari,
    Edge,
    SamsungInternet,
    /// An instrumentation framework that did not bother to disguise itself
    /// (HeadlessChrome UA string, PhantomJS, …).
    HeadlessChrome,
}

impl BrowserFamily {
    /// All families, for iteration in samplers and entropy calculations.
    pub const ALL: [BrowserFamily; 6] = [
        BrowserFamily::Chrome,
        BrowserFamily::Firefox,
        BrowserFamily::Safari,
        BrowserFamily::Edge,
        BrowserFamily::SamsungInternet,
        BrowserFamily::HeadlessChrome,
    ];
}

impl fmt::Display for BrowserFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BrowserFamily::Chrome => "Chrome",
            BrowserFamily::Firefox => "Firefox",
            BrowserFamily::Safari => "Safari",
            BrowserFamily::Edge => "Edge",
            BrowserFamily::SamsungInternet => "SamsungInternet",
            BrowserFamily::HeadlessChrome => "HeadlessChrome",
        };
        f.write_str(s)
    }
}

/// Operating system family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OsFamily {
    Windows,
    MacOs,
    Linux,
    Android,
    Ios,
}

impl OsFamily {
    /// All families, for iteration.
    pub const ALL: [OsFamily; 5] = [
        OsFamily::Windows,
        OsFamily::MacOs,
        OsFamily::Linux,
        OsFamily::Android,
        OsFamily::Ios,
    ];

    /// `true` for phone/tablet operating systems.
    pub const fn is_mobile(self) -> bool {
        matches!(self, OsFamily::Android | OsFamily::Ios)
    }

    /// The `navigator.platform` string a genuine browser reports on this OS.
    pub const fn platform_string(self) -> &'static str {
        match self {
            OsFamily::Windows => "Win32",
            OsFamily::MacOs => "MacIntel",
            OsFamily::Linux => "Linux x86_64",
            OsFamily::Android => "Linux armv8l",
            OsFamily::Ios => "iPhone",
        }
    }
}

impl fmt::Display for OsFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OsFamily::Windows => "Windows",
            OsFamily::MacOs => "macOS",
            OsFamily::Linux => "Linux",
            OsFamily::Android => "Android",
            OsFamily::Ios => "iOS",
        };
        f.write_str(s)
    }
}

/// Screen geometry in CSS pixels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScreenResolution {
    /// Width in CSS pixels.
    pub width: u32,
    /// Height in CSS pixels.
    pub height: u32,
}

impl ScreenResolution {
    /// Creates a resolution.
    pub const fn new(width: u32, height: u32) -> Self {
        ScreenResolution { width, height }
    }

    /// `true` for portrait-oriented screens (height > width), the norm on
    /// phones and an inconsistency signal on desktop OSes.
    pub const fn is_portrait(self) -> bool {
        self.height > self.width
    }
}

impl fmt::Display for ScreenResolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A full client fingerprint as collected by the defence's JavaScript probe.
///
/// Equality of two `Fingerprint` values means "indistinguishable to the
/// defender". [`Fingerprint::identity_hash`] condenses the tuple into the
/// 64-bit identity key used by block-lists.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Browser product family.
    pub browser: BrowserFamily,
    /// Browser major version.
    pub browser_version: u16,
    /// Operating system family.
    pub os: OsFamily,
    /// `navigator.platform` as reported by the client (spoofable!).
    pub platform: String,
    /// Screen geometry.
    pub screen: ScreenResolution,
    /// Primary language tag, e.g. `en-US`.
    pub language: String,
    /// IANA-style timezone offset in minutes east of UTC.
    pub timezone_offset_min: i16,
    /// `navigator.hardwareConcurrency`.
    pub hardware_concurrency: u8,
    /// `navigator.deviceMemory` in GiB.
    pub device_memory_gb: u8,
    /// Canvas rendering hash class.
    pub canvas_hash: u64,
    /// WebGL renderer hash class.
    pub webgl_hash: u64,
    /// AudioContext hash class.
    pub audio_hash: u64,
    /// Number of plugins exposed by `navigator.plugins`.
    pub plugin_count: u8,
    /// Whether touch events are supported.
    pub touch_support: bool,
    /// Whether `navigator.webdriver` is `true` (instrumentation artifact).
    pub webdriver: bool,
    /// Screen color depth in bits.
    pub color_depth: u8,
}

impl Fingerprint {
    /// A 64-bit identity key over the identity-relevant attributes.
    ///
    /// Two clients with the same identity hash are the same "identity" from
    /// the defender's perspective; rotating any identity-relevant attribute
    /// changes the hash.
    pub fn identity_hash(&self) -> u64 {
        let mut h = splitmix64(self.browser as u64 ^ (u64::from(self.browser_version) << 8));
        h = splitmix64(h ^ self.os as u64);
        for &b in self.platform.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ (u64::from(self.screen.width) << 32 | u64::from(self.screen.height)));
        for &b in self.language.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ (self.timezone_offset_min as u64));
        h = splitmix64(h ^ u64::from(self.hardware_concurrency));
        h = splitmix64(h ^ u64::from(self.device_memory_gb));
        h = splitmix64(h ^ self.canvas_hash);
        h = splitmix64(h ^ self.webgl_hash);
        h = splitmix64(h ^ self.audio_hash);
        h = splitmix64(h ^ u64::from(self.plugin_count));
        h = splitmix64(h ^ (u64::from(self.touch_support) << 1 | u64::from(self.webdriver)));
        splitmix64(h ^ u64::from(self.color_depth))
    }

    /// The user-agent string a genuine browser with these attributes emits.
    pub fn user_agent(&self) -> String {
        match self.browser {
            BrowserFamily::HeadlessChrome => format!(
                "Mozilla/5.0 ({}) HeadlessChrome/{}.0.0.0",
                self.os, self.browser_version
            ),
            b => format!(
                "Mozilla/5.0 ({}; {}) {}/{}.0",
                self.os, self.platform, b, self.browser_version
            ),
        }
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} on {} ({}, {}, tz{:+})",
            self.browser,
            self.browser_version,
            self.os,
            self.screen,
            self.language,
            self.timezone_offset_min
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fingerprint {
        Fingerprint {
            browser: BrowserFamily::Chrome,
            browser_version: 120,
            os: OsFamily::Windows,
            platform: "Win32".into(),
            screen: ScreenResolution::new(1920, 1080),
            language: "en-US".into(),
            timezone_offset_min: -300,
            hardware_concurrency: 8,
            device_memory_gb: 16,
            canvas_hash: 0xAB,
            webgl_hash: 0xCD,
            audio_hash: 0xEF,
            plugin_count: 3,
            touch_support: false,
            webdriver: false,
            color_depth: 24,
        }
    }

    #[test]
    fn identity_hash_stable_and_sensitive() {
        let fp = sample();
        assert_eq!(fp.identity_hash(), sample().identity_hash());
        for mutate in [
            |f: &mut Fingerprint| f.browser_version += 1,
            |f: &mut Fingerprint| f.screen = ScreenResolution::new(1366, 768),
            |f: &mut Fingerprint| f.canvas_hash ^= 1,
            |f: &mut Fingerprint| f.language = "fr-FR".into(),
            |f: &mut Fingerprint| f.timezone_offset_min = 60,
            |f: &mut Fingerprint| f.webdriver = true,
        ] {
            let mut m = sample();
            mutate(&mut m);
            assert_ne!(m.identity_hash(), fp.identity_hash());
        }
    }

    #[test]
    fn mobile_detection() {
        assert!(OsFamily::Android.is_mobile());
        assert!(OsFamily::Ios.is_mobile());
        assert!(!OsFamily::Windows.is_mobile());
    }

    #[test]
    fn platform_strings_distinct_per_os() {
        let mut seen: Vec<&str> = OsFamily::ALL.iter().map(|o| o.platform_string()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), OsFamily::ALL.len());
    }

    #[test]
    fn user_agent_mentions_browser_and_os() {
        let fp = sample();
        let ua = fp.user_agent();
        assert!(ua.contains("Chrome"));
        assert!(ua.contains("Windows"));
    }

    #[test]
    fn headless_user_agent_is_marked() {
        let mut fp = sample();
        fp.browser = BrowserFamily::HeadlessChrome;
        assert!(fp.user_agent().contains("HeadlessChrome"));
    }

    #[test]
    fn portrait_detection() {
        assert!(ScreenResolution::new(390, 844).is_portrait());
        assert!(!ScreenResolution::new(1920, 1080).is_portrait());
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("Chrome 120"));
        assert!(s.contains("1920x1080"));
    }
}
