//! fp-inconsistent-style integrity checks.
//!
//! When a bot rotates attributes independently (rather than sampling whole
//! consistent device profiles), the resulting tuple contains contradictions a
//! genuine browser cannot produce. This module codifies the checks referenced
//! in the paper's §III-B (ref \[51\]): platform/OS mismatch, touch support on
//! the wrong device class, implausible rendering hashes, instrumentation
//! artifacts, and impossible hardware values.

use crate::attributes::{BrowserFamily, Fingerprint, OsFamily};
use crate::population::{plausible_canvas, webgl_class};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One detected contradiction inside a fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Inconsistency {
    /// `navigator.webdriver` is set — a direct instrumentation artifact.
    WebdriverFlag,
    /// The UA announces a headless browser.
    HeadlessUserAgent,
    /// `navigator.platform` contradicts the OS implied by the UA.
    PlatformOsMismatch,
    /// Touch support reported on a desktop OS, or missing on mobile.
    TouchMismatch,
    /// Canvas hash is not plausible for this (browser, OS) pair.
    ImplausibleCanvas,
    /// WebGL hash is not plausible for this OS.
    ImplausibleWebgl,
    /// `hardwareConcurrency` of zero — genuine browsers report ≥ 1.
    ZeroConcurrency,
    /// Landscape phone screen or portrait desktop screen.
    ScreenOrientationMismatch,
    /// Safari reported on a non-Apple OS.
    SafariOffApple,
    /// Plugins reported on a mobile browser (mobile browsers expose none).
    MobilePlugins,
}

impl fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Inconsistency::WebdriverFlag => "navigator.webdriver is true",
            Inconsistency::HeadlessUserAgent => "user agent announces a headless browser",
            Inconsistency::PlatformOsMismatch => "navigator.platform contradicts the OS",
            Inconsistency::TouchMismatch => "touch support contradicts the device class",
            Inconsistency::ImplausibleCanvas => "canvas hash implausible for browser/OS",
            Inconsistency::ImplausibleWebgl => "webgl hash implausible for OS",
            Inconsistency::ZeroConcurrency => "hardwareConcurrency is zero",
            Inconsistency::ScreenOrientationMismatch => "screen orientation contradicts device",
            Inconsistency::SafariOffApple => "Safari reported on a non-Apple OS",
            Inconsistency::MobilePlugins => "plugins reported on a mobile browser",
        };
        f.write_str(s)
    }
}

/// The result of running every consistency check against one fingerprint.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    findings: Vec<Inconsistency>,
}

impl ConsistencyReport {
    /// `true` if no check fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The individual findings.
    pub fn findings(&self) -> &[Inconsistency] {
        &self.findings
    }

    /// A suspicion score in `0.0..=1.0`: 0 for clean, saturating with the
    /// number of findings. Hard artifacts (webdriver / headless UA) alone
    /// push the score to 1.0.
    pub fn suspicion(&self) -> f64 {
        if self.findings.iter().any(|f| {
            matches!(
                f,
                Inconsistency::WebdriverFlag | Inconsistency::HeadlessUserAgent
            )
        }) {
            return 1.0;
        }
        (self.findings.len() as f64 * 0.34).min(1.0)
    }
}

/// Runs every consistency check against `fp`.
///
/// # Example
///
/// ```
/// use fg_fingerprint::population::PopulationModel;
/// use fg_fingerprint::inconsistency::{consistency_report, Inconsistency};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fp = PopulationModel::default_web().sample_human(&mut rng);
/// fp.webdriver = true;
/// let report = consistency_report(&fp);
/// assert!(report.findings().contains(&Inconsistency::WebdriverFlag));
/// assert_eq!(report.suspicion(), 1.0);
/// ```
pub fn consistency_report(fp: &Fingerprint) -> ConsistencyReport {
    let mut findings = Vec::new();

    if fp.webdriver {
        findings.push(Inconsistency::WebdriverFlag);
    }
    if fp.browser == BrowserFamily::HeadlessChrome {
        findings.push(Inconsistency::HeadlessUserAgent);
    }
    if fp.platform != fp.os.platform_string() {
        findings.push(Inconsistency::PlatformOsMismatch);
    }
    if fp.touch_support != fp.os.is_mobile() {
        findings.push(Inconsistency::TouchMismatch);
    }
    if fp.browser != BrowserFamily::HeadlessChrome
        && !plausible_canvas(fp.browser, fp.os, fp.canvas_hash)
    {
        findings.push(Inconsistency::ImplausibleCanvas);
    }
    if !(0..8).any(|v| webgl_class(fp.os, v) == fp.webgl_hash) {
        findings.push(Inconsistency::ImplausibleWebgl);
    }
    if fp.hardware_concurrency == 0 {
        findings.push(Inconsistency::ZeroConcurrency);
    }
    if fp.os.is_mobile() != fp.screen.is_portrait() {
        findings.push(Inconsistency::ScreenOrientationMismatch);
    }
    if fp.browser == BrowserFamily::Safari && !matches!(fp.os, OsFamily::MacOs | OsFamily::Ios) {
        findings.push(Inconsistency::SafariOffApple);
    }
    if fp.os.is_mobile() && fp.plugin_count > 0 {
        findings.push(Inconsistency::MobilePlugins);
    }

    ConsistencyReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn human() -> Fingerprint {
        PopulationModel::default_web().sample_human(&mut StdRng::seed_from_u64(10))
    }

    #[test]
    fn clean_human_has_zero_suspicion() {
        let r = consistency_report(&human());
        assert!(r.is_clean());
        assert_eq!(r.suspicion(), 0.0);
    }

    #[test]
    fn each_check_fires_on_its_trigger() {
        let mut fp = human();
        fp.webdriver = true;
        assert!(consistency_report(&fp)
            .findings()
            .contains(&Inconsistency::WebdriverFlag));

        let mut fp = human();
        fp.platform = "Atari".into();
        assert!(consistency_report(&fp)
            .findings()
            .contains(&Inconsistency::PlatformOsMismatch));

        let mut fp = human();
        fp.touch_support = !fp.touch_support;
        assert!(consistency_report(&fp)
            .findings()
            .contains(&Inconsistency::TouchMismatch));

        let mut fp = human();
        fp.canvas_hash = 12345;
        assert!(consistency_report(&fp)
            .findings()
            .contains(&Inconsistency::ImplausibleCanvas));

        let mut fp = human();
        fp.webgl_hash = 999;
        assert!(consistency_report(&fp)
            .findings()
            .contains(&Inconsistency::ImplausibleWebgl));

        let mut fp = human();
        fp.hardware_concurrency = 0;
        assert!(consistency_report(&fp)
            .findings()
            .contains(&Inconsistency::ZeroConcurrency));
    }

    #[test]
    fn headless_ua_is_hard_artifact() {
        let mut fp = human();
        fp.browser = BrowserFamily::HeadlessChrome;
        let r = consistency_report(&fp);
        assert!(r.findings().contains(&Inconsistency::HeadlessUserAgent));
        assert_eq!(r.suspicion(), 1.0);
    }

    #[test]
    fn safari_on_windows_flagged() {
        let mut fp = human();
        fp.browser = BrowserFamily::Safari;
        fp.os = OsFamily::Windows;
        fp.platform = OsFamily::Windows.platform_string().into();
        let r = consistency_report(&fp);
        assert!(r.findings().contains(&Inconsistency::SafariOffApple));
    }

    #[test]
    fn suspicion_saturates_at_one() {
        let mut fp = human();
        fp.platform = "x".into();
        fp.touch_support = !fp.touch_support;
        fp.canvas_hash = 1;
        fp.webgl_hash = 1;
        fp.hardware_concurrency = 0;
        let r = consistency_report(&fp);
        assert!(r.findings().len() >= 4);
        assert_eq!(r.suspicion(), 1.0);
    }

    #[test]
    fn soft_findings_scale_suspicion() {
        let mut fp = human();
        fp.hardware_concurrency = 0;
        let r = consistency_report(&fp);
        assert_eq!(r.findings().len(), 1);
        assert!(r.suspicion() > 0.3 && r.suspicion() < 0.4);
    }
}
