//! Bot fingerprint rotation.
//!
//! §IV-A of the paper measures attackers rotating their technical features
//! "within an average of 5.3 hours" of each new blocking rule, and §IV-C
//! describes continuous rotation to bypass anti-bot protection. A
//! [`Rotator`] owns a bot's current [`Fingerprint`] and produces new
//! identities according to a [`RotationStrategy`] (how the new fingerprint is
//! made) and a [`RotationSchedule`] (when rotation happens).

use crate::attributes::Fingerprint;
use crate::population::{canvas_class, PopulationModel};
use fg_core::time::{SimDuration, SimTime};
use rand::Rng;

/// How a bot fabricates its next fingerprint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RotationStrategy {
    /// Sample a fresh, fully consistent fingerprint from the human
    /// population model — indistinguishable attribute-wise.
    Mimicry,
    /// Sample attributes independently; cheap but inconsistent, with the
    /// given probability of leaking an instrumentation artifact.
    Naive {
        /// Probability that `navigator.webdriver`/headless UA leaks through.
        artifact_prob: f64,
    },
    /// Keep the current device profile but tweak a few attributes (version,
    /// canvas variant, language). Changes the exact identity while remaining
    /// *linkable* by similarity analysis.
    Tweak,
}

/// When a bot rotates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RotationSchedule {
    /// Never rotate (manual attackers, or the honeypot-pacified steady state
    /// hypothesized in §V).
    Never,
    /// Rotate roughly every `mean`, uniformly jittered by ±`jitter_frac`.
    Interval {
        /// Mean time between rotations.
        mean: SimDuration,
        /// Fractional jitter, `0.0..1.0`.
        jitter_frac: f64,
    },
    /// Rotate only in reaction to being blocked, after a reaction delay.
    OnBlock {
        /// Time from observing a block to presenting the new identity.
        reaction: SimDuration,
    },
    /// Both: scheduled rotation plus reactive rotation on block.
    IntervalAndOnBlock {
        /// Mean time between scheduled rotations.
        mean: SimDuration,
        /// Fractional jitter for the scheduled part.
        jitter_frac: f64,
        /// Reaction delay for the reactive part.
        reaction: SimDuration,
    },
}

/// Owns a bot's fingerprint identity over time.
///
/// # Example
///
/// ```
/// use fg_fingerprint::{PopulationModel, RotationSchedule, RotationStrategy, Rotator};
/// use fg_core::time::{SimDuration, SimTime};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let mut rotator = Rotator::new(
///     PopulationModel::default_web(),
///     RotationStrategy::Mimicry,
///     RotationSchedule::OnBlock { reaction: SimDuration::from_mins(30) },
///     SimTime::ZERO,
///     &mut rng,
/// );
/// let before = rotator.current().identity_hash();
/// rotator.notify_blocked(SimTime::from_hours(1), &mut rng);
/// // After the reaction delay elapses the bot presents a new identity.
/// rotator.tick(SimTime::from_hours(2), &mut rng);
/// assert_ne!(rotator.current().identity_hash(), before);
/// ```
#[derive(Clone, Debug)]
pub struct Rotator {
    model: PopulationModel,
    strategy: RotationStrategy,
    schedule: RotationSchedule,
    current: Fingerprint,
    rotations: Vec<SimTime>,
    next_scheduled: Option<SimTime>,
    pending_reactive: Option<SimTime>,
    started: SimTime,
}

impl Rotator {
    /// Creates a rotator with an initial fingerprint drawn per `strategy`.
    pub fn new<R: Rng + ?Sized>(
        model: PopulationModel,
        strategy: RotationStrategy,
        schedule: RotationSchedule,
        now: SimTime,
        rng: &mut R,
    ) -> Self {
        let current = Self::fabricate(&model, strategy, None, rng);
        let mut rotator = Rotator {
            model,
            strategy,
            schedule,
            current,
            rotations: Vec::new(),
            next_scheduled: None,
            pending_reactive: None,
            started: now,
        };
        rotator.next_scheduled = rotator.schedule_next(now, rng);
        rotator
    }

    fn fabricate<R: Rng + ?Sized>(
        model: &PopulationModel,
        strategy: RotationStrategy,
        previous: Option<&Fingerprint>,
        rng: &mut R,
    ) -> Fingerprint {
        match strategy {
            RotationStrategy::Mimicry => model.sample_mimicry_bot(rng),
            RotationStrategy::Naive { artifact_prob } => model.sample_naive_bot(rng, artifact_prob),
            RotationStrategy::Tweak => {
                let mut fp = previous.cloned().unwrap_or_else(|| model.sample_human(rng));
                // Nudge identity-bearing attributes while keeping the device
                // profile: version bump, canvas re-render, language swap.
                fp.browser_version = fp.browser_version.saturating_add(rng.gen_range(1..3));
                fp.canvas_hash = canvas_class(fp.browser, fp.os, rng.gen_range(0..4));
                if rng.gen_bool(0.5) {
                    fp.language = if fp.language == "en-US" {
                        "en-GB".to_owned()
                    } else {
                        "en-US".to_owned()
                    };
                }
                fp
            }
        }
    }

    fn schedule_next<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> Option<SimTime> {
        let (mean, jitter) = match self.schedule {
            RotationSchedule::Interval { mean, jitter_frac }
            | RotationSchedule::IntervalAndOnBlock {
                mean, jitter_frac, ..
            } => (mean, jitter_frac),
            _ => return None,
        };
        let jitter = jitter.clamp(0.0, 0.999);
        let factor = 1.0 + rng.gen_range(-jitter..=jitter);
        Some(now + mean.mul_f64(factor))
    }

    /// The fingerprint the bot currently presents.
    pub fn current(&self) -> &Fingerprint {
        &self.current
    }

    /// Informs the rotator that its current identity was blocked at `now`.
    ///
    /// Depending on the schedule this arms a reactive rotation after the
    /// configured reaction delay. Idempotent while a reaction is pending.
    pub fn notify_blocked<R: Rng + ?Sized>(&mut self, now: SimTime, _rng: &mut R) {
        let reaction = match self.schedule {
            RotationSchedule::OnBlock { reaction }
            | RotationSchedule::IntervalAndOnBlock { reaction, .. } => reaction,
            _ => return,
        };
        if self.pending_reactive.is_none() {
            self.pending_reactive = Some(now + reaction);
        }
    }

    /// Advances simulated time; performs any rotation that has become due.
    ///
    /// Returns `true` if the identity changed.
    pub fn tick<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> bool {
        let reactive_due = self.pending_reactive.is_some_and(|t| t <= now);
        let scheduled_due = self.next_scheduled.is_some_and(|t| t <= now);
        if !reactive_due && !scheduled_due {
            return false;
        }
        self.rotate_now(now, rng);
        true
    }

    /// Unconditionally rotates to a fresh identity at `now`.
    pub fn rotate_now<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) {
        let old_id = self.current.identity_hash();
        // Guarantee an identity change: resample until the hash differs
        // (collisions are astronomically rare; the loop guards Tweak's small
        // mutation space).
        for _ in 0..64 {
            let candidate = Self::fabricate(&self.model, self.strategy, Some(&self.current), rng);
            if candidate.identity_hash() != old_id {
                self.current = candidate;
                break;
            }
        }
        self.rotations.push(now);
        self.pending_reactive = None;
        self.next_scheduled = self.schedule_next(now, rng);
    }

    /// Timestamps of every completed rotation.
    pub fn rotation_times(&self) -> &[SimTime] {
        &self.rotations
    }

    /// Mean interval between consecutive rotations (including the stretch
    /// from start to the first rotation). `None` before the first rotation.
    pub fn mean_rotation_interval(&self) -> Option<SimDuration> {
        if self.rotations.is_empty() {
            return None;
        }
        let mut prev = self.started;
        let mut total = SimDuration::ZERO;
        for &t in &self.rotations {
            total += t - prev;
            prev = t;
        }
        Some(SimDuration::from_millis(
            total.as_millis() / self.rotations.len() as i64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rotator(strategy: RotationStrategy, schedule: RotationSchedule) -> (Rotator, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let r = Rotator::new(
            PopulationModel::default_web(),
            strategy,
            schedule,
            SimTime::ZERO,
            &mut rng,
        );
        (r, rng)
    }

    #[test]
    fn never_schedule_never_rotates() {
        let (mut r, mut rng) = rotator(RotationStrategy::Mimicry, RotationSchedule::Never);
        let id = r.current().identity_hash();
        assert!(!r.tick(SimTime::from_days(30), &mut rng));
        assert_eq!(r.current().identity_hash(), id);
        assert!(r.rotation_times().is_empty());
        assert_eq!(r.mean_rotation_interval(), None);
    }

    #[test]
    fn interval_schedule_rotates_repeatedly() {
        let (mut r, mut rng) = rotator(
            RotationStrategy::Mimicry,
            RotationSchedule::Interval {
                mean: SimDuration::from_hours(5),
                jitter_frac: 0.2,
            },
        );
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += SimDuration::from_hours(1);
            r.tick(now, &mut rng);
        }
        let n = r.rotation_times().len();
        assert!(
            (15..=25).contains(&n),
            "expected ~20 rotations in 100h, got {n}"
        );
        let mean = r.mean_rotation_interval().unwrap().as_hours_f64();
        assert!((4.0..6.5).contains(&mean), "mean interval {mean}h");
    }

    #[test]
    fn on_block_rotates_after_reaction_delay() {
        let (mut r, mut rng) = rotator(
            RotationStrategy::Mimicry,
            RotationSchedule::OnBlock {
                reaction: SimDuration::from_hours(2),
            },
        );
        let id = r.current().identity_hash();
        r.notify_blocked(SimTime::from_hours(1), &mut rng);
        assert!(!r.tick(SimTime::from_hours(2), &mut rng), "too early");
        assert!(r.tick(SimTime::from_hours(3), &mut rng));
        assert_ne!(r.current().identity_hash(), id);
    }

    #[test]
    fn notify_blocked_is_idempotent_while_pending() {
        let (mut r, mut rng) = rotator(
            RotationStrategy::Mimicry,
            RotationSchedule::OnBlock {
                reaction: SimDuration::from_hours(1),
            },
        );
        r.notify_blocked(SimTime::from_mins(0), &mut rng);
        r.notify_blocked(SimTime::from_mins(30), &mut rng);
        r.tick(SimTime::from_hours(2), &mut rng);
        assert_eq!(r.rotation_times().len(), 1);
    }

    #[test]
    fn tweak_changes_identity_but_keeps_profile() {
        let (mut r, mut rng) = rotator(
            RotationStrategy::Tweak,
            RotationSchedule::Interval {
                mean: SimDuration::from_hours(1),
                jitter_frac: 0.0,
            },
        );
        let before = r.current().clone();
        r.rotate_now(SimTime::from_hours(1), &mut rng);
        let after = r.current();
        assert_ne!(before.identity_hash(), after.identity_hash());
        assert_eq!(before.os, after.os);
        assert_eq!(before.screen, after.screen);
    }

    #[test]
    fn rotation_changes_identity_every_time() {
        let (mut r, mut rng) = rotator(RotationStrategy::Mimicry, RotationSchedule::Never);
        let mut seen = std::collections::HashSet::new();
        seen.insert(r.current().identity_hash());
        for i in 1..=50 {
            r.rotate_now(SimTime::from_hours(i), &mut rng);
            assert!(
                seen.insert(r.current().identity_hash()),
                "identity repeated at rotation {i}"
            );
        }
    }

    #[test]
    fn mean_interval_matches_53_hours_target() {
        // Calibration test for the §IV-A statistic: an attacker configured
        // with a 5.3 h mean really exhibits ≈5.3 h mean rotation.
        let (mut r, mut rng) = rotator(
            RotationStrategy::Mimicry,
            RotationSchedule::Interval {
                mean: SimDuration::from_hours_f64(5.3),
                jitter_frac: 0.3,
            },
        );
        let mut now = SimTime::ZERO;
        while r.rotation_times().len() < 200 {
            now += SimDuration::from_mins(10);
            r.tick(now, &mut rng);
        }
        let mean = r.mean_rotation_interval().unwrap().as_hours_f64();
        assert!((5.0..5.7).contains(&mean), "mean {mean}h");
    }
}
