//! Fingerprint similarity and cross-identity linking.
//!
//! Blocking by exact fingerprint dies the moment the attacker rotates
//! (§IV-A). The defender's counter is *linking*: scoring how likely two
//! distinct fingerprints belong to the same operator. Attribute-weighted
//! similarity catches [`RotationStrategy::Tweak`]-style rotation (same device
//! profile, nudged identity) while full mimicry resampling defeats it — which
//! is exactly the asymmetry the paper reports.
//!
//! [`RotationStrategy::Tweak`]: crate::rotation::RotationStrategy::Tweak

use crate::attributes::Fingerprint;

/// Weights for each attribute's contribution to similarity. Stable,
/// device-bound attributes weigh more than volatile ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimilarityWeights {
    /// Browser family match weight.
    pub browser: f64,
    /// Browser major version closeness weight.
    pub version: f64,
    /// OS match weight.
    pub os: f64,
    /// Screen resolution match weight.
    pub screen: f64,
    /// Language match weight.
    pub language: f64,
    /// Timezone match weight.
    pub timezone: f64,
    /// Hardware (concurrency + memory) match weight.
    pub hardware: f64,
    /// Rendering hashes (canvas/webgl/audio) match weight.
    pub rendering: f64,
}

impl Default for SimilarityWeights {
    fn default() -> Self {
        SimilarityWeights {
            browser: 1.0,
            version: 0.5,
            os: 1.5,
            screen: 1.5,
            language: 1.0,
            timezone: 1.0,
            hardware: 1.5,
            rendering: 2.0,
        }
    }
}

impl SimilarityWeights {
    fn total(&self) -> f64 {
        self.browser
            + self.version
            + self.os
            + self.screen
            + self.language
            + self.timezone
            + self.hardware
            + self.rendering
    }
}

/// Similarity of two fingerprints in `0.0..=1.0` under custom weights.
pub fn similarity_with(a: &Fingerprint, b: &Fingerprint, w: &SimilarityWeights) -> f64 {
    let mut score = 0.0;
    if a.browser == b.browser {
        score += w.browser;
        // Version closeness only meaningful within the same family.
        let dv = a.browser_version.abs_diff(b.browser_version);
        score += w.version * (1.0 - f64::from(dv.min(10)) / 10.0);
    }
    if a.os == b.os {
        score += w.os;
    }
    if a.screen == b.screen {
        score += w.screen;
    }
    if a.language == b.language {
        score += w.language;
    }
    if a.timezone_offset_min == b.timezone_offset_min {
        score += w.timezone;
    }
    let hw_matches = u8::from(a.hardware_concurrency == b.hardware_concurrency)
        + u8::from(a.device_memory_gb == b.device_memory_gb);
    score += w.hardware * f64::from(hw_matches) / 2.0;
    let render_matches = u8::from(a.canvas_hash == b.canvas_hash)
        + u8::from(a.webgl_hash == b.webgl_hash)
        + u8::from(a.audio_hash == b.audio_hash);
    score += w.rendering * f64::from(render_matches) / 3.0;
    score / w.total()
}

/// Similarity of two fingerprints in `0.0..=1.0` under default weights.
///
/// # Example
///
/// ```
/// use fg_fingerprint::{similarity, PopulationModel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let model = PopulationModel::default_web();
/// let fp = model.sample_human(&mut rng);
/// assert_eq!(similarity(&fp, &fp), 1.0);
/// ```
pub fn similarity(a: &Fingerprint, b: &Fingerprint) -> f64 {
    similarity_with(a, b, &SimilarityWeights::default())
}

/// The defender's linking score: probability-like evidence that `a` and `b`
/// are the same operator behind a rotation.
///
/// Currently the weighted similarity, sharpened so that exact rendering-hash
/// agreement (device-bound, hard to fake twice by chance) dominates.
pub fn linking_score(a: &Fingerprint, b: &Fingerprint) -> f64 {
    let base = similarity(a, b);
    let render_full = a.canvas_hash == b.canvas_hash
        && a.webgl_hash == b.webgl_hash
        && a.audio_hash == b.audio_hash;
    if render_full {
        (base + 0.25).min(1.0)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationModel;
    use crate::rotation::{RotationSchedule, RotationStrategy, Rotator};
    use fg_core::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_fingerprints_score_one() {
        let fp = PopulationModel::default_web().sample_human(&mut StdRng::seed_from_u64(1));
        assert!((similarity(&fp, &fp) - 1.0).abs() < 1e-12);
        assert!((linking_score(&fp, &fp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric() {
        let model = PopulationModel::default_web();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let a = model.sample_human(&mut rng);
            let b = model.sample_human(&mut rng);
            assert!((similarity(&a, &b) - similarity(&b, &a)).abs() < 1e-12);
        }
    }

    #[test]
    fn similarity_bounded() {
        let model = PopulationModel::default_web();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let a = model.sample_human(&mut rng);
            let b = model.sample_naive_bot(&mut rng, 0.5);
            let s = similarity(&a, &b);
            assert!((0.0..=1.0).contains(&s));
            let l = linking_score(&a, &b);
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn tweak_rotation_remains_linkable_mimicry_does_not() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = PopulationModel::default_web();

        // Tweak rotation: high linking score to the previous identity.
        let mut tweak = Rotator::new(
            model.clone(),
            RotationStrategy::Tweak,
            RotationSchedule::Never,
            SimTime::ZERO,
            &mut rng,
        );
        let mut tweak_scores = Vec::new();
        for i in 0..30 {
            let before = tweak.current().clone();
            tweak.rotate_now(SimTime::from_hours(i), &mut rng);
            tweak_scores.push(linking_score(&before, tweak.current()));
        }
        let tweak_mean: f64 = tweak_scores.iter().sum::<f64>() / tweak_scores.len() as f64;

        // Mimicry rotation: the new identity is an unrelated device.
        let mut mim = Rotator::new(
            model,
            RotationStrategy::Mimicry,
            RotationSchedule::Never,
            SimTime::ZERO,
            &mut rng,
        );
        let mut mim_scores = Vec::new();
        for i in 0..30 {
            let before = mim.current().clone();
            mim.rotate_now(SimTime::from_hours(i), &mut rng);
            mim_scores.push(linking_score(&before, mim.current()));
        }
        let mim_mean: f64 = mim_scores.iter().sum::<f64>() / mim_scores.len() as f64;

        assert!(
            tweak_mean > mim_mean + 0.2,
            "tweak {tweak_mean:.2} should link far better than mimicry {mim_mean:.2}"
        );
        assert!(tweak_mean > 0.7, "tweak linking {tweak_mean:.2}");
    }

    #[test]
    fn version_distance_decays_similarity() {
        let model = PopulationModel::default_web();
        let a = model.sample_human(&mut StdRng::seed_from_u64(4));
        let mut near = a.clone();
        near.browser_version += 1;
        let mut far = a.clone();
        far.browser_version += 30;
        assert!(similarity(&a, &near) > similarity(&a, &far));
    }

    #[test]
    fn custom_weights_change_ranking() {
        let model = PopulationModel::default_web();
        let a = model.sample_human(&mut StdRng::seed_from_u64(6));
        let mut b = a.clone();
        b.language = "xx-XX".into();
        let only_lang = SimilarityWeights {
            language: 100.0,
            ..SimilarityWeights::default()
        };
        assert!(similarity_with(&a, &b, &only_lang) < similarity(&a, &b));
    }
}
