//! Per-country SMS termination pricing.
//!
//! Termination pricing varies wildly by destination: ordinary A2P routes cost
//! cents while "high-cost destinations or premium numbers" (§II-B, ref \[14\])
//! cost an order of magnitude more — and that margin is the pump's fuel. The
//! default table assigns the paper's Table I top-10 countries high rates
//! and/or high attacker number-availability, so that economically rational
//! targeting reproduces the table's ordering shape.

use fg_core::ids::CountryCode;
use fg_core::money::Money;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Pricing tier of a destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RateTier {
    /// Ordinary application-to-person route.
    Normal,
    /// Elevated termination fees (remote or loosely regulated markets).
    HighCost,
    /// Premium-rate numbers: the highest payout per message.
    Premium,
}

impl fmt::Display for RateTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RateTier::Normal => "normal",
            RateTier::HighCost => "high-cost",
            RateTier::Premium => "premium",
        };
        f.write_str(s)
    }
}

/// One destination's pricing and abuse characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CountryRate {
    /// What the application owner pays per message.
    pub price: Money,
    /// Pricing tier.
    pub tier: RateTier,
    /// Relative ease for an attacker to obtain destination numbers here
    /// (0.0 = practically none, 1.0 = unlimited supply).
    pub number_availability: f64,
}

/// The full per-country rate table.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RateTable {
    rates: HashMap<CountryCode, CountryRate>,
    fallback: Option<CountryRate>,
}

impl RateTable {
    /// An empty table.
    pub fn new() -> Self {
        RateTable::default()
    }

    /// The default world table.
    ///
    /// Table I countries receive high rates and/or abundant attacker number
    /// supply; mainstream markets receive ordinary rates and scarce supply
    /// (regulated numbering plans). Values are representative of public A2P
    /// price sheets, not any specific contract.
    pub fn default_world() -> Self {
        let mut t = RateTable::new();
        let mut add = |code: &str, cents: i64, tier: RateTier, avail: f64| {
            t.insert(
                CountryCode::new(code),
                CountryRate {
                    price: Money::from_cents(cents),
                    tier,
                    number_availability: avail,
                },
            );
        };
        // Table I top-10 — ordered as in the paper.
        add("UZ", 28, RateTier::Premium, 1.00);
        add("IR", 26, RateTier::Premium, 0.85);
        add("KG", 24, RateTier::Premium, 0.70);
        add("JO", 20, RateTier::HighCost, 0.55);
        add("NG", 18, RateTier::HighCost, 0.50);
        add("KH", 16, RateTier::HighCost, 0.40);
        add("SG", 6, RateTier::Normal, 0.12);
        add("GB", 4, RateTier::Normal, 0.10);
        add("CN", 5, RateTier::Normal, 0.10);
        add("TH", 5, RateTier::Normal, 0.08);
        // The broader world: ordinary destinations with scarce numbers.
        for code in [
            "US", "FR", "DE", "ES", "IT", "BR", "IN", "ID", "PK", "BD", "RU", "JP", "KR", "VN",
            "PH", "MY", "TR", "EG", "SA", "AE", "MX", "AR", "CO", "CL", "PE", "ZA", "KE", "GH",
            "MA", "DZ", "PL", "NL", "BE", "SE", "NO", "PT", "GR", "CA",
        ] {
            t.insert(
                CountryCode::new(code),
                CountryRate {
                    price: Money::from_cents(3),
                    tier: RateTier::Normal,
                    number_availability: 0.05,
                },
            );
        }
        t.set_fallback(CountryRate {
            price: Money::from_cents(8),
            tier: RateTier::Normal,
            number_availability: 0.02,
        });
        t
    }

    /// Inserts or replaces one country's rate.
    pub fn insert(&mut self, country: CountryCode, rate: CountryRate) {
        self.rates.insert(country, rate);
    }

    /// Sets the rate applied to countries absent from the table.
    pub fn set_fallback(&mut self, rate: CountryRate) {
        self.fallback = Some(rate);
    }

    /// The rate for `country` (table entry, else fallback, else `None`).
    pub fn rate(&self, country: CountryCode) -> Option<CountryRate> {
        self.rates.get(&country).copied().or(self.fallback)
    }

    /// Price the application owner pays to send one SMS to `country`.
    pub fn price(&self, country: CountryCode) -> Option<Money> {
        self.rate(country).map(|r| r.price)
    }

    /// Countries explicitly present, sorted for deterministic iteration.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut c: Vec<CountryCode> = self.rates.keys().copied().collect();
        c.sort_unstable();
        c
    }

    /// The attacker's expected value of targeting `country`: price × number
    /// availability. The country-targeting weights used by the SMS-pumping
    /// workload are proportional to this.
    pub fn attack_value(&self, country: CountryCode) -> f64 {
        self.rate(country)
            .map_or(0.0, |r| r.price.as_f64() * r.number_availability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_countries_present_and_expensive() {
        let t = RateTable::default_world();
        let uz = t.rate(CountryCode::new("UZ")).unwrap();
        assert_eq!(uz.tier, RateTier::Premium);
        let gb = t.rate(CountryCode::new("GB")).unwrap();
        assert_eq!(gb.tier, RateTier::Normal);
        assert!(uz.price > gb.price);
    }

    #[test]
    fn attack_value_orders_table_one_head_above_tail() {
        let t = RateTable::default_world();
        let head = t.attack_value(CountryCode::new("UZ"));
        let mid = t.attack_value(CountryCode::new("NG"));
        let tail = t.attack_value(CountryCode::new("TH"));
        let outside = t.attack_value(CountryCode::new("FR"));
        assert!(head > mid && mid > tail && tail > outside);
    }

    #[test]
    fn fallback_covers_unknown_countries() {
        let t = RateTable::default_world();
        let rate = t.rate(CountryCode::new("ZZ")).unwrap();
        assert_eq!(rate.price, Money::from_cents(8));
        let mut empty = RateTable::new();
        assert_eq!(empty.rate(CountryCode::new("ZZ")), None);
        empty.set_fallback(rate);
        assert!(empty.rate(CountryCode::new("ZZ")).is_some());
    }

    #[test]
    fn countries_sorted_and_complete() {
        let t = RateTable::default_world();
        let c = t.countries();
        assert_eq!(c.len(), 48);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn price_accessor_matches_rate() {
        let t = RateTable::default_world();
        let c = CountryCode::new("JO");
        assert_eq!(t.price(c), Some(t.rate(c).unwrap().price));
    }
}
