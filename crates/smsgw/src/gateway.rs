//! The SMS sending façade with full accounting.

use crate::message::{SmsKind, SmsMessage};
use crate::operators::OperatorNetwork;
use crate::rates::RateTable;
use fg_core::ids::CountryCode;
use fg_core::money::Money;
use fg_core::stats::TimeSeries;
use fg_core::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Outcome of one send attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendReceipt {
    /// Whether the message was handed to the carrier.
    pub delivered: bool,
    /// Whether the contracted quota blocked this send.
    pub quota_exceeded: bool,
}

/// The application's SMS gateway.
///
/// Tracks exactly the quantities the paper's case studies report:
///
/// * per-country sent counts over time (Table I surges),
/// * per-kind counts (the §IV-C "~25 % increase in sent boarding passes"),
/// * owner spend, and attacker revenue through fraudulent carriers (§V
///   economics),
/// * contracted quota state — when pumpers exhaust it, *legitimate* sends
///   fail, the collateral damage §II-B warns about.
///
/// # Example
///
/// ```
/// use fg_smsgw::{Gateway, SmsKind, SmsMessage};
/// use fg_core::ids::{CountryCode, PhoneNumber};
/// use fg_core::time::SimTime;
///
/// let mut gw = Gateway::default_network();
/// let uz = PhoneNumber::new(CountryCode::new("UZ"), 99_111_2233);
/// gw.send(SmsMessage::new(uz, SmsKind::Otp), SimTime::ZERO);
/// assert_eq!(gw.sent_to(CountryCode::new("UZ")), 1);
/// assert!(gw.attacker_revenue().is_positive(), "UZ terminates fraudulently");
/// ```
#[derive(Clone, Debug)]
pub struct Gateway {
    rates: RateTable,
    network: OperatorNetwork,
    per_country: HashMap<CountryCode, TimeSeries>,
    per_kind: HashMap<&'static str, TimeSeries>,
    owner_cost: Money,
    attacker_revenue: Money,
    quota_per_window: Option<u64>,
    quota_window: SimDuration,
    quota_used: u64,
    quota_window_start: SimTime,
    rejected_quota: u64,
    sent_total: u64,
    metrics: Option<GatewayMetrics>,
}

/// Pre-registered telemetry handles so per-send updates stay lock-free.
#[derive(Clone, Debug)]
struct GatewayMetrics {
    telemetry: std::sync::Arc<fg_telemetry::Telemetry>,
    rejected_quota: fg_telemetry::Counter,
    owner_cost: fg_telemetry::Gauge,
    attacker_revenue: fg_telemetry::Gauge,
    /// Lazily registered per-country counters, cached so only the first
    /// send to a country touches the registry mutex.
    per_country: HashMap<CountryCode, fg_telemetry::Counter>,
}

impl Gateway {
    /// Creates a gateway over explicit rates and operator network.
    pub fn new(rates: RateTable, network: OperatorNetwork) -> Self {
        Gateway {
            rates,
            network,
            per_country: HashMap::new(),
            per_kind: HashMap::new(),
            owner_cost: Money::ZERO,
            attacker_revenue: Money::ZERO,
            quota_per_window: None,
            quota_window: SimDuration::from_days(1),
            quota_used: 0,
            quota_window_start: SimTime::ZERO,
            rejected_quota: 0,
            sent_total: 0,
            metrics: None,
        }
    }

    /// Attaches a telemetry hub; sends then maintain
    /// `fg_sms_sent_total{country=...}` counters and owner-cost /
    /// attacker-revenue gauges.
    pub fn attach_telemetry(&mut self, telemetry: std::sync::Arc<fg_telemetry::Telemetry>) {
        let registry = telemetry.metrics();
        for (name, help) in [
            ("fg_sms_sent_total", "Delivered SMS by destination country"),
            (
                "fg_sms_rejected_quota_total",
                "SMS rejected by the gateway's quota guard",
            ),
            (
                "fg_sms_owner_cost_units",
                "Cumulative SMS termination cost billed to the app owner",
            ),
            (
                "fg_sms_attacker_revenue_units",
                "Cumulative revenue-share accrued to colluding operators",
            ),
        ] {
            registry.set_help(name, help);
        }
        self.metrics = Some(GatewayMetrics {
            rejected_quota: registry.counter("fg_sms_rejected_quota_total"),
            owner_cost: registry.gauge("fg_sms_owner_cost_units"),
            attacker_revenue: registry.gauge("fg_sms_attacker_revenue_units"),
            per_country: HashMap::new(),
            telemetry,
        });
    }

    /// The default world: [`RateTable::default_world`] routed over
    /// [`OperatorNetwork::default_fraud_world`].
    pub fn default_network() -> Self {
        Gateway::new(
            RateTable::default_world(),
            OperatorNetwork::default_fraud_world(),
        )
    }

    /// Sets a contracted quota: at most `limit` messages per `window`.
    pub fn set_quota(&mut self, limit: u64, window: SimDuration) {
        assert!(window.as_millis() > 0, "quota window must be positive");
        self.quota_per_window = Some(limit);
        self.quota_window = window;
    }

    /// Removes any quota.
    pub fn clear_quota(&mut self) {
        self.quota_per_window = None;
    }

    /// Mutable access to the operator network (for §V carrier mitigations).
    pub fn network_mut(&mut self) -> &mut OperatorNetwork {
        &mut self.network
    }

    /// The rate table in force.
    pub fn rates(&self) -> &RateTable {
        &self.rates
    }

    /// Sends one message at `now`, settling all the money flows.
    pub fn send(&mut self, msg: SmsMessage, now: SimTime) -> SendReceipt {
        // Roll the quota window forward.
        if let Some(limit) = self.quota_per_window {
            while now >= self.quota_window_start + self.quota_window {
                self.quota_window_start += self.quota_window;
                self.quota_used = 0;
            }
            if self.quota_used >= limit {
                self.rejected_quota += 1;
                if let Some(m) = &self.metrics {
                    m.rejected_quota.inc();
                }
                return SendReceipt {
                    delivered: false,
                    quota_exceeded: true,
                };
            }
            self.quota_used += 1;
        }

        let country = msg.to().country();
        let price = self.rates.price(country).unwrap_or(Money::ZERO);
        self.owner_cost += price;
        let (_termination, attacker) = self.network.settle(country, price);
        self.attacker_revenue += attacker;

        self.per_country
            .entry(country)
            .or_insert_with(|| TimeSeries::new(SimTime::ZERO, SimDuration::from_days(1)))
            .record(now, 1);
        self.per_kind
            .entry(msg.kind().label())
            .or_insert_with(|| TimeSeries::new(SimTime::ZERO, SimDuration::from_days(1)))
            .record(now, 1);
        self.sent_total += 1;

        if let Some(m) = &mut self.metrics {
            m.per_country
                .entry(country)
                .or_insert_with(|| {
                    m.telemetry
                        .metrics()
                        .counter_with("fg_sms_sent_total", &[("country", country.as_str())])
                })
                .inc();
            m.owner_cost.set(self.owner_cost.as_f64());
            m.attacker_revenue.set(self.attacker_revenue.as_f64());
        }

        SendReceipt {
            delivered: true,
            quota_exceeded: false,
        }
    }

    /// Total messages delivered.
    pub fn sent_total(&self) -> u64 {
        self.sent_total
    }

    /// Messages delivered to `country` across all time.
    pub fn sent_to(&self, country: CountryCode) -> u64 {
        self.per_country.get(&country).map_or(0, TimeSeries::total)
    }

    /// Messages delivered to `country` in `[from, to)`.
    pub fn sent_to_between(&self, country: CountryCode, from: SimTime, to: SimTime) -> u64 {
        self.per_country
            .get(&country)
            .map_or(0, |ts| ts.total_between(from, to))
    }

    /// Messages of `kind` delivered in `[from, to)`.
    pub fn sent_kind_between(&self, kind: SmsKind, from: SimTime, to: SimTime) -> u64 {
        self.per_kind
            .get(kind.label())
            .map_or(0, |ts| ts.total_between(from, to))
    }

    /// Per-country surge percentage between a baseline and an observation
    /// window — the Table I metric. Countries with zero baseline are skipped
    /// (no defined percentage). Sorted descending by surge.
    pub fn surge_table(
        &self,
        baseline: (SimTime, SimTime),
        window: (SimTime, SimTime),
    ) -> Vec<(CountryCode, f64)> {
        let mut rows: Vec<(CountryCode, f64)> = self
            .per_country
            .iter()
            .filter_map(|(c, ts)| ts.surge_pct(baseline, window).map(|s| (*c, s)))
            .collect();
        rows.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("surges are finite")
                .then(a.0.cmp(&b.0))
        });
        rows
    }

    /// Number of countries that received at least one message in `[from, to)`
    /// — the §IV-C "42 different countries" statistic.
    pub fn countries_reached_between(&self, from: SimTime, to: SimTime) -> usize {
        self.per_country
            .values()
            .filter(|ts| ts.total_between(from, to) > 0)
            .count()
    }

    /// What the application owner has paid so far.
    pub fn owner_cost(&self) -> Money {
        self.owner_cost
    }

    /// What fraudulent carriers have kicked back to the attacker so far.
    pub fn attacker_revenue(&self) -> Money {
        self.attacker_revenue
    }

    /// Sends rejected by the quota so far.
    pub fn rejected_by_quota(&self) -> u64 {
        self.rejected_quota
    }
}

impl Default for Gateway {
    fn default() -> Self {
        Gateway::default_network()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ids::PhoneNumber;

    fn number(code: &str, n: u64) -> PhoneNumber {
        PhoneNumber::new(CountryCode::new(code), n)
    }

    #[test]
    fn accounting_accumulates() {
        let mut gw = Gateway::default_network();
        for i in 0..10 {
            gw.send(
                SmsMessage::new(number("GB", i), SmsKind::Otp),
                SimTime::ZERO,
            );
        }
        assert_eq!(gw.sent_total(), 10);
        assert_eq!(gw.sent_to(CountryCode::new("GB")), 10);
        assert_eq!(gw.owner_cost(), Money::from_cents(40)); // 10 × 4¢
        assert_eq!(gw.attacker_revenue(), Money::ZERO, "GB is legit");
    }

    #[test]
    fn fraudulent_destination_pays_the_attacker() {
        let mut gw = Gateway::default_network();
        gw.send(
            SmsMessage::new(number("UZ", 1), SmsKind::Otp),
            SimTime::ZERO,
        );
        // 28¢ × 70% termination × 60% kickback = 11.76¢
        assert_eq!(gw.attacker_revenue(), Money::from_micros(117_600));
        assert!(gw.attacker_revenue() < gw.owner_cost());
    }

    #[test]
    fn telemetry_tracks_countries_and_money_flows() {
        let telemetry = fg_telemetry::Telemetry::shared();
        let mut gw = Gateway::default_network();
        gw.attach_telemetry(telemetry.clone());
        gw.set_quota(3, SimDuration::from_days(1));
        for i in 0..3 {
            gw.send(
                SmsMessage::new(number("UZ", i), SmsKind::Otp),
                SimTime::ZERO,
            );
        }
        gw.send(
            SmsMessage::new(number("GB", 9), SmsKind::Otp),
            SimTime::ZERO,
        );

        let snap = telemetry.snapshot().metrics;
        assert_eq!(
            snap.counter_value("fg_sms_sent_total", &[("country", "UZ")]),
            Some(3)
        );
        // The fourth send tripped the quota before reaching GB.
        assert_eq!(
            snap.counter_value("fg_sms_sent_total", &[("country", "GB")]),
            None
        );
        assert_eq!(
            snap.counter_value("fg_sms_rejected_quota_total", &[]),
            Some(1)
        );
        assert!(
            (snap.gauge_value("fg_sms_owner_cost_units", &[]).unwrap() - gw.owner_cost().as_f64())
                .abs()
                < 1e-12
        );
        assert!(
            (snap
                .gauge_value("fg_sms_attacker_revenue_units", &[])
                .unwrap()
                - gw.attacker_revenue().as_f64())
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn quota_blocks_after_limit_and_rolls_over() {
        let mut gw = Gateway::default_network();
        gw.set_quota(3, SimDuration::from_days(1));
        for i in 0..5 {
            let r = gw.send(
                SmsMessage::new(number("FR", i), SmsKind::Otp),
                SimTime::from_hours(i),
            );
            assert_eq!(r.delivered, i < 3, "send {i}");
        }
        assert_eq!(gw.rejected_by_quota(), 2);
        // Next day the window resets.
        let r = gw.send(
            SmsMessage::new(number("FR", 9), SmsKind::Otp),
            SimTime::from_hours(25),
        );
        assert!(r.delivered);
        assert!(!r.quota_exceeded);
    }

    #[test]
    fn quota_rollover_skips_idle_windows() {
        let mut gw = Gateway::default_network();
        gw.set_quota(1, SimDuration::from_days(1));
        gw.send(
            SmsMessage::new(number("DE", 1), SmsKind::Otp),
            SimTime::ZERO,
        );
        // Five days idle; the window must have rolled, not require five sends.
        let r = gw.send(
            SmsMessage::new(number("DE", 2), SmsKind::Otp),
            SimTime::from_days(5),
        );
        assert!(r.delivered);
    }

    #[test]
    fn surge_table_ranks_attacked_countries_first() {
        let mut gw = Gateway::default_network();
        // Baseline week: 10 SMS each to UZ and GB.
        for d in 0..5 {
            for i in 0..2 {
                gw.send(
                    SmsMessage::new(number("UZ", i), SmsKind::Otp),
                    SimTime::from_days(d),
                );
                gw.send(
                    SmsMessage::new(number("GB", i), SmsKind::Otp),
                    SimTime::from_days(d),
                );
            }
        }
        // Attack week: 500 to UZ, 12 to GB.
        for i in 0..500u64 {
            gw.send(
                SmsMessage::new(number("UZ", i), SmsKind::Otp),
                SimTime::from_days(7),
            );
        }
        for i in 0..12u64 {
            gw.send(
                SmsMessage::new(number("GB", i), SmsKind::Otp),
                SimTime::from_days(7),
            );
        }
        let table = gw.surge_table(
            (SimTime::ZERO, SimTime::from_weeks(1)),
            (SimTime::from_weeks(1), SimTime::from_weeks(2)),
        );
        assert_eq!(table[0].0, CountryCode::new("UZ"));
        assert!((table[0].1 - 4900.0).abs() < 1.0, "UZ surge {}", table[0].1);
        assert_eq!(table[1].0, CountryCode::new("GB"));
        assert!((table[1].1 - 20.0).abs() < 1.0, "GB surge {}", table[1].1);
    }

    #[test]
    fn countries_reached_counts_distinct() {
        let mut gw = Gateway::default_network();
        for code in ["UZ", "IR", "KG", "JO"] {
            gw.send(
                SmsMessage::new(number(code, 5), SmsKind::Otp),
                SimTime::from_days(8),
            );
        }
        assert_eq!(
            gw.countries_reached_between(SimTime::from_weeks(1), SimTime::from_weeks(2)),
            4
        );
        assert_eq!(
            gw.countries_reached_between(SimTime::ZERO, SimTime::from_weeks(1)),
            0
        );
    }

    #[test]
    fn per_kind_accounting() {
        let mut gw = Gateway::default_network();
        let bp = SmsKind::BoardingPass(fg_core::ids::BookingRef::from_index(0));
        gw.send(SmsMessage::new(number("TH", 1), bp), SimTime::ZERO);
        gw.send(
            SmsMessage::new(number("TH", 1), SmsKind::Otp),
            SimTime::ZERO,
        );
        assert_eq!(
            gw.sent_kind_between(bp, SimTime::ZERO, SimTime::from_days(1)),
            1
        );
        assert_eq!(
            gw.sent_kind_between(SmsKind::Otp, SimTime::ZERO, SimTime::from_days(1)),
            1
        );
    }

    #[test]
    fn deregistering_carrier_stops_revenue_mid_run() {
        let mut gw = Gateway::default_network();
        gw.send(
            SmsMessage::new(number("UZ", 1), SmsKind::Otp),
            SimTime::ZERO,
        );
        let before = gw.attacker_revenue();
        gw.network_mut()
            .deregister_fraudulent(CountryCode::new("UZ"));
        gw.send(
            SmsMessage::new(number("UZ", 1), SmsKind::Otp),
            SimTime::ZERO,
        );
        assert_eq!(gw.attacker_revenue(), before);
    }
}
