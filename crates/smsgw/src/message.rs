//! SMS messages.

use fg_core::ids::{BookingRef, PhoneNumber};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of application feature produced the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SmsKind {
    /// One-time password for login / 2FA — the classic pumping target.
    Otp,
    /// Boarding-pass delivery — the §IV-C advanced pumping target.
    BoardingPass(BookingRef),
    /// Generic notification.
    Notification,
}

impl SmsKind {
    /// Short label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            SmsKind::Otp => "otp",
            SmsKind::BoardingPass(_) => "boarding-pass",
            SmsKind::Notification => "notification",
        }
    }
}

impl fmt::Display for SmsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One outbound SMS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmsMessage {
    to: PhoneNumber,
    kind: SmsKind,
}

impl SmsMessage {
    /// Creates a message.
    pub fn new(to: PhoneNumber, kind: SmsKind) -> Self {
        SmsMessage { to, kind }
    }

    /// Destination number.
    pub fn to(&self) -> PhoneNumber {
        self.to
    }

    /// Originating feature.
    pub fn kind(&self) -> SmsKind {
        self.kind
    }
}

impl fmt::Display for SmsMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.kind, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ids::CountryCode;

    #[test]
    fn labels() {
        assert_eq!(SmsKind::Otp.label(), "otp");
        assert_eq!(
            SmsKind::BoardingPass(BookingRef::from_index(0)).label(),
            "boarding-pass"
        );
        assert_eq!(SmsKind::Notification.to_string(), "notification");
    }

    #[test]
    fn accessors() {
        let n = PhoneNumber::new(CountryCode::new("KH"), 12_555_777);
        let m = SmsMessage::new(n, SmsKind::Otp);
        assert_eq!(m.to(), n);
        assert_eq!(m.kind(), SmsKind::Otp);
        assert!(m.to_string().contains("+KH"));
    }
}
