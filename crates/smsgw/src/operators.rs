//! Operator routing and revenue-share fraud.
//!
//! §II-B: attackers "may collude with local mobile network operators that
//! provide lists of mobile numbers to target and share part of the
//! corresponding revenue", or "create new local carriers and identify them as
//! terminator actors to a primary operator", collecting termination
//! compensation for all managed traffic. [`OperatorNetwork`] maps each
//! destination country to its terminating carrier and computes where each
//! cent of the application owner's spend ends up — including the attacker's
//! kickback when the carrier is fraudulent.

use fg_core::ids::CountryCode;
use fg_core::money::Money;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The nature of a terminating carrier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CarrierKind {
    /// A legitimate carrier: the termination fee stays in the ecosystem.
    Legit,
    /// A colluding or attacker-created carrier paying a kickback.
    Fraudulent {
        /// Fraction of the termination fee kicked back to the attacker,
        /// `0.0..=1.0`.
        attacker_share: f64,
    },
}

impl CarrierKind {
    /// The attacker's fraction of the termination fee.
    pub fn attacker_share(&self) -> f64 {
        match *self {
            CarrierKind::Legit => 0.0,
            CarrierKind::Fraudulent { attacker_share } => attacker_share.clamp(0.0, 1.0),
        }
    }
}

impl fmt::Display for CarrierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CarrierKind::Legit => write!(f, "legit"),
            CarrierKind::Fraudulent { attacker_share } => {
                write!(f, "fraudulent({:.0}% kickback)", attacker_share * 100.0)
            }
        }
    }
}

/// Per-country terminating carrier registry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OperatorNetwork {
    carriers: HashMap<CountryCode, CarrierKind>,
    /// Termination fee fraction retained by the terminating carrier (the
    /// primary operator keeps the rest as transit margin).
    termination_fraction: f64,
}

impl OperatorNetwork {
    /// Creates a network where every country terminates legitimately and the
    /// terminating carrier collects `termination_fraction` of the price.
    pub fn all_legit(termination_fraction: f64) -> Self {
        OperatorNetwork {
            carriers: HashMap::new(),
            termination_fraction: termination_fraction.clamp(0.0, 1.0),
        }
    }

    /// The default network matching the paper's fraud geography: premium
    /// destinations in the Table I head terminate at fraudulent carriers with
    /// substantial kickbacks.
    pub fn default_fraud_world() -> Self {
        let mut net = OperatorNetwork::all_legit(0.7);
        for (code, share) in [
            ("UZ", 0.6),
            ("IR", 0.55),
            ("KG", 0.55),
            ("JO", 0.5),
            ("NG", 0.5),
            ("KH", 0.45),
        ] {
            net.set_carrier(
                CountryCode::new(code),
                CarrierKind::Fraudulent {
                    attacker_share: share,
                },
            );
        }
        net
    }

    /// Sets the terminating carrier for a country.
    pub fn set_carrier(&mut self, country: CountryCode, kind: CarrierKind) {
        self.carriers.insert(country, kind);
    }

    /// The terminating carrier for a country (legit unless overridden).
    pub fn carrier(&self, country: CountryCode) -> CarrierKind {
        self.carriers
            .get(&country)
            .copied()
            .unwrap_or(CarrierKind::Legit)
    }

    /// Splits an owner's spend of `price` on one message to `country` into
    /// `(termination_fee, attacker_revenue)`.
    pub fn settle(&self, country: CountryCode, price: Money) -> (Money, Money) {
        let termination = price.mul_f64(self.termination_fraction);
        let attacker = termination.mul_f64(self.carrier(country).attacker_share());
        (termination, attacker)
    }

    /// Removes fraudulent carriers in `country` — the §V mitigation of
    /// "stricter validation measures for new secondary operators" /
    /// de-registering abusers. Returns `true` if a fraudulent carrier was
    /// actually removed.
    pub fn deregister_fraudulent(&mut self, country: CountryCode) -> bool {
        match self.carriers.get(&country) {
            Some(CarrierKind::Fraudulent { .. }) => {
                self.carriers.insert(country, CarrierKind::Legit);
                true
            }
            _ => false,
        }
    }

    /// Countries currently terminating at fraudulent carriers, sorted.
    pub fn fraudulent_countries(&self) -> Vec<CountryCode> {
        let mut v: Vec<CountryCode> = self
            .carriers
            .iter()
            .filter(|(_, k)| matches!(k, CarrierKind::Fraudulent { .. }))
            .map(|(c, _)| *c)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_world_has_fraud_in_premium_head() {
        let net = OperatorNetwork::default_fraud_world();
        assert!(matches!(
            net.carrier(CountryCode::new("UZ")),
            CarrierKind::Fraudulent { .. }
        ));
        assert!(matches!(
            net.carrier(CountryCode::new("GB")),
            CarrierKind::Legit
        ));
        assert_eq!(net.fraudulent_countries().len(), 6);
    }

    #[test]
    fn settle_splits_money_correctly() {
        let net = OperatorNetwork::default_fraud_world();
        let price = Money::from_cents(28);
        let (term, attacker) = net.settle(CountryCode::new("UZ"), price);
        // 70% termination, 60% of that kicked back.
        assert_eq!(term, price.mul_f64(0.7));
        assert_eq!(attacker, price.mul_f64(0.7).mul_f64(0.6));
        let (_, none) = net.settle(CountryCode::new("GB"), price);
        assert_eq!(none, Money::ZERO);
    }

    #[test]
    fn deregistration_stops_kickbacks() {
        let mut net = OperatorNetwork::default_fraud_world();
        assert!(net.deregister_fraudulent(CountryCode::new("UZ")));
        let (_, attacker) = net.settle(CountryCode::new("UZ"), Money::from_cents(28));
        assert_eq!(attacker, Money::ZERO);
        // Idempotent / no-op on legit carriers.
        assert!(!net.deregister_fraudulent(CountryCode::new("UZ")));
        assert!(!net.deregister_fraudulent(CountryCode::new("GB")));
    }

    #[test]
    fn shares_clamped() {
        let k = CarrierKind::Fraudulent {
            attacker_share: 2.0,
        };
        assert_eq!(k.attacker_share(), 1.0);
        assert_eq!(CarrierKind::Legit.attacker_share(), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CarrierKind::Legit.to_string(), "legit");
        assert_eq!(
            CarrierKind::Fraudulent {
                attacker_share: 0.5
            }
            .to_string(),
            "fraudulent(50% kickback)"
        );
    }
}
