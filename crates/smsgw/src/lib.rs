//! # fg-smsgw
//!
//! SMS gateway substrate for the FeatureGuard workspace.
//!
//! SMS Pumping (§II-B) monetizes the gap between what an application pays to
//! send a message and who collects the termination fee. This crate models the
//! whole chain the paper describes:
//!
//! * [`rates`] — per-country termination pricing with normal / high-cost /
//!   premium tiers and a "number availability" weight (how easy it is for an
//!   attacker to obtain destination numbers there). Table I's top-10
//!   countries ship with characteristics that make them rational targets.
//! * [`operators`] — the operator chain: the application's primary operator
//!   routes to a terminating carrier per destination country; *fraudulent*
//!   secondary carriers kick back a revenue share to the attacker — the FCC
//!   intercarrier-compensation abuse of §II-B.
//! * [`message`] — the messages themselves (OTP, boarding pass,
//!   notification).
//! * [`gateway`] — the sending façade: cost accounting for the application
//!   owner, attacker revenue accounting, per-country traffic time series
//!   (the Table I data source), contracted quota enforcement, and delivery
//!   failure injection.
//!
//! # Example
//!
//! ```
//! use fg_smsgw::{Gateway, SmsKind, SmsMessage};
//! use fg_core::ids::{CountryCode, PhoneNumber};
//! use fg_core::time::SimTime;
//!
//! let mut gw = Gateway::default_network();
//! let to = PhoneNumber::new(CountryCode::new("GB"), 7_700_900_123);
//! let receipt = gw.send(SmsMessage::new(to, SmsKind::Otp), SimTime::ZERO);
//! assert!(receipt.delivered);
//! assert!(gw.owner_cost().is_positive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gateway;
pub mod message;
pub mod operators;
pub mod rates;

pub use gateway::{Gateway, SendReceipt};
pub use message::{SmsKind, SmsMessage};
pub use operators::{CarrierKind, OperatorNetwork};
pub use rates::{RateTable, RateTier};
