#!/usr/bin/env bash
# serve-smoke: end-to-end gate for the serving layer.
#
# Boots fg-serve from a watched config file, drives it with fg-loadgen,
# exercises /metrics and the live-observability plane (/debug/traces,
# /debug/flightrecorder, /debug/alerts — every latency exemplar must
# resolve to a retrievable trace, and the server-side p99 gauge must agree
# with the wire-side measurement), proves hot-reload reject-and-keep-old,
# drains on SIGTERM, and asserts the unified exit-code contract (0/2/3/4)
# for both binaries. Run from the repository root after
# `cargo build --release -p fg-serve --bins`; CI calls it verbatim.
#
# Tunables (env): BIN_DIR, SERVE_PORT, LOAD_DURATION, SERVE_BENCH_OUT.
set -euo pipefail

BIN=${BIN_DIR:-target/release}
PORT=${SERVE_PORT:-8787}
ADDR=127.0.0.1:$PORT
CONFIG=serve-config.json
OUT=${SERVE_BENCH_OUT:-BENCH_serve.json}
LOG=serve-smoke.log
SERVE_PID=""

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  [ -f "$LOG" ] && tail -40 "$LOG" >&2
  exit 1
}

# expect_exit CODE cmd... — the exit-code contract is part of the interface
# (fg_serve::Exit): 0 success, 2 usage, 3 unavailable, 4 contract failed.
expect_exit() {
  local want=$1
  shift
  set +e
  "$@" >/dev/null 2>&1
  local got=$?
  set -e
  [ "$got" -eq "$want" ] || fail "expected exit $want from '$*', got $got"
  echo "serve-smoke: exit-code contract ok: '$*' -> $got"
}

readyz() { curl -sf "http://$ADDR/readyz"; }

# --- config bootstrap -------------------------------------------------
"$BIN/fg-serve" --print-config > "$CONFIG"
python3 - "$CONFIG" "$ADDR" <<'EOF'
import json, sys
path, addr = sys.argv[1], sys.argv[2]
c = json.load(open(path))
c["listen"] = addr
# A sustained replay pins many non-allow traces; a deep ring keeps every
# banded exemplar resolvable for the invariant checked below.
c["observe"]["trace_capacity"] = 65536
json.dump(c, open(path, "w"), indent=2)
EOF
"$BIN/fg-serve" --check --config "$CONFIG"
cp "$CONFIG" serve-config.good.json

# A structurally valid config the fg-analyze gate must reject: challenging
# at the block threshold makes every challenge unreachable.
python3 - "$CONFIG" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))
c["policy"]["challenge_threshold"] = c["policy"]["block_threshold"]
json.dump(c, open("serve-config.bad.json", "w"), indent=2)
EOF

# --- exit-code contract, no server needed -----------------------------
expect_exit 2 "$BIN/fg-serve" --no-such-flag
expect_exit 2 "$BIN/fg-loadgen" --no-such-flag
expect_exit 4 "$BIN/fg-serve" --check --config serve-config.bad.json
expect_exit 3 "$BIN/fg-loadgen" --addr 127.0.0.1:9 --duration 1s --connections 1 --out /dev/null

# --- boot -------------------------------------------------------------
"$BIN/fg-serve" --config "$CONFIG" --final-metrics serve-final-metrics.prom > "$LOG" 2>&1 &
SERVE_PID=$!
trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  readyz > /dev/null 2>&1 && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "fg-serve died during boot"
  sleep 0.2
done
readyz | grep -q '"ready":true' || fail "/readyz never reported ready"
curl -sf "http://$ADDR/healthz" | grep -q '"ok":true' || fail "/healthz wrong"
echo "serve-smoke: fg-serve ready on $ADDR"

# A second instance on the occupied port must refuse with 3, not clobber.
expect_exit 3 "$BIN/fg-serve" --config "$CONFIG"

# --- load -------------------------------------------------------------
"$BIN/fg-loadgen" --addr "$ADDR" --connections 4 --duration "${LOAD_DURATION:-10s}" --seed 42 \
  --assert-min-rate 50 --assert-max-p99-ms 250 --out "$OUT"
python3 - "$OUT" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == 2, r
assert r["ok"] > 0 and r["decisions_per_sec"] > 0, r
# Schema 2: per-status counts (200 included) and the k slowest exchanges
# with their decision trace ids.
assert r["statuses"].get("200", 0) == r["ok"], r["statuses"]
assert sum(r["statuses"].values()) == r["sent"], r["statuses"]
assert r["slowest"], "slowest exchanges missing"
assert all(s["latency_ms"] > 0 for s in r["slowest"]), r["slowest"]
lat = [s["latency_ms"] for s in r["slowest"]]
assert lat == sorted(lat, reverse=True), "slowest not worst-first"
EOF
echo "serve-smoke: load OK -> $OUT"

# An impossible SLO bound must exit 4 (violation), not 0.
expect_exit 4 "$BIN/fg-loadgen" --addr "$ADDR" --connections 1 --duration 1s --seed 43 \
  --assert-min-rate 100000000 --out /dev/null

# --- metrics ----------------------------------------------------------
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q 'fg_decisions_total' || fail "metrics missing fg_decisions_total"
echo "$METRICS" | grep -q 'fg_http_requests_total' || fail "metrics missing fg_http_requests_total"
echo "serve-smoke: /metrics OK"

# --- live observability plane -----------------------------------------
# Let the embedded sentinel tick at least once past the load, then scrape
# the debug plane into files; CI uploads them as the debug-snapshot
# artifact alongside BENCH_serve.json.
sleep 2
curl -sf "http://$ADDR/metrics" > serve-metrics.prom
curl -sf "http://$ADDR/debug/traces" > serve-debug-traces.json
curl -sf "http://$ADDR/debug/flightrecorder" > serve-debug-flightrecorder.json
curl -sf "http://$ADDR/debug/alerts" > serve-debug-alerts.json
python3 - "$OUT" <<'EOF'
import json, re, sys
metrics = open("serve-metrics.prom").read()
traces = json.load(open("serve-debug-traces.json"))
flight = json.load(open("serve-debug-flightrecorder.json"))
alerts = json.load(open("serve-debug-alerts.json"))
bench = json.load(open(sys.argv[1]))

# Every latency exemplar on /metrics must resolve to a trace that
# /debug/traces can still serve — the metrics->trace pivot is the whole
# point of exemplars, so a dangling id is a hard failure.
exemplars = set(re.findall(r'# \{trace_id="([0-9a-f]{16})"\}', metrics))
assert exemplars, "no exemplars on /metrics after an abusive replay"
retained = set(traces["retained"])
dangling = exemplars - retained
assert not dangling, f"exemplars not resolvable via /debug/traces: {sorted(dangling)}"

# The flight recorder saw the replay and still holds a live tail.
assert flight["recorded"] > 0 and flight["live"], flight

# The embedded sentinel is evaluating the shipped SLO policy.
assert "active" in alerts, alerts
assert any(r.get("id") == "serve-p99-slo" for r in alerts["policy"]["rules"]), alerts["policy"]

# The server-side p99 gauge must agree with the wire-side measurement:
# positive, and no better than the client saw (client p99 includes
# loopback + parse overhead, so allow 3x + 50ms of slack, not equality).
m = re.search(r'fg_http_request_p99_seconds\{endpoint="decide"\} ([0-9.eE+-]+)', metrics)
assert m, "p99 gauge missing for the decide endpoint"
server_ms = float(m.group(1)) * 1000.0
client_ms = bench["latency_ms"]["p99"]
assert server_ms > 0, "p99 gauge never refreshed by the sentinel"
assert server_ms <= client_ms * 3 + 50, (server_ms, client_ms)
EOF
echo "serve-smoke: observability plane OK (exemplars resolve, p99 agrees)"

# --- hot reload: rejected edit keeps the old config -------------------
GEN_BEFORE=$(readyz | python3 -c 'import json,sys; print(json.load(sys.stdin)["config_generation"])')
cp serve-config.bad.json "$CONFIG"
for _ in $(seq 1 50); do
  readyz | grep -q 'rejected' && break
  sleep 0.2
done
readyz | grep -q 'rejected' || fail "watcher never rejected the bad config"
GEN_AFTER=$(readyz | python3 -c 'import json,sys; print(json.load(sys.stdin)["config_generation"])')
[ "$GEN_BEFORE" = "$GEN_AFTER" ] || fail "generation moved on a rejected reload ($GEN_BEFORE -> $GEN_AFTER)"
# The surviving config must still serve decisions.
"$BIN/fg-loadgen" --addr "$ADDR" --connections 2 --duration 2s --seed 44 --out /dev/null
echo "serve-smoke: hot-reload rejection OK (old config survived)"

# --- hot reload: a valid edit applies ---------------------------------
python3 - <<'EOF'
import json
c = json.load(open("serve-config.good.json"))
c["limits"]["decide"] = 48
json.dump(c, open("serve-config.json", "w"), indent=2)
EOF
for _ in $(seq 1 50); do
  readyz | grep -q "\"config_generation\":$((GEN_BEFORE + 1))" && break
  sleep 0.2
done
readyz | grep -q "\"config_generation\":$((GEN_BEFORE + 1))" || fail "valid hot reload never applied"
echo "serve-smoke: hot-reload apply OK (generation $((GEN_BEFORE + 1)))"

# --- SIGTERM drain ----------------------------------------------------
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
DRAIN=$?
set -e
trap - EXIT
[ "$DRAIN" -eq 0 ] || fail "drain exited $DRAIN, wanted 0"
grep -q 'drained cleanly' "$LOG" || fail "no clean-drain line in the server log"
[ -s serve-final-metrics.prom ] || fail "final metrics snapshot missing"
grep -q 'fg_decisions_total' serve-final-metrics.prom || fail "final metrics snapshot missing counters"
echo "serve-smoke: SIGTERM drain OK"
echo "serve-smoke: PASS"
