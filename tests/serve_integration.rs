//! End-to-end integration of the serving layer: endpoints, load shedding,
//! config hot-reload (reject-and-keep-old), and graceful drain — all over
//! real sockets on an ephemeral port.

use fg_scenario::workload::{generate, WorkloadConfig};
use fg_serve::{ServeConfig, Server};
use fg_telemetry::Telemetry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn test_config() -> ServeConfig {
    let mut config = ServeConfig::recommended();
    config.listen = "127.0.0.1:0".to_owned();
    config.workers = 2;
    config.queue_depth = 16;
    config
}

/// One full HTTP exchange on a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status present")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn sample_decide_body() -> String {
    let workload = generate(&WorkloadConfig {
        seed: 5,
        horizon_hours: 1,
        arrivals_per_day: 50.0,
        seat_spinner: false,
        sms_pumper: false,
    });
    serde_json::to_string(workload.requests.first().expect("non-empty workload"))
        .expect("request serializes")
}

#[test]
fn endpoints_answer_with_correct_statuses() {
    let server = Server::start(test_config(), Telemetry::shared(), None).expect("boot");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    let (status, body) = request(addr, "GET", "/readyz", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"ready\":true"), "{body}");
    assert!(body.contains("\"config_generation\":1"), "{body}");

    let decide_body = sample_decide_body();
    let (status, body) = request(addr, "POST", "/v1/decide", decide_body.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"decision\""), "{body}");
    assert!(body.contains("\"reasons\""), "{body}");

    let (status, _) = request(addr, "POST", "/v1/decide", b"{not json");
    assert_eq!(status, 400);

    let outcome = fg_serve::OutcomeReport {
        ip: fg_netsim::ip::IpAddress::from_octets(10, 1, 2, 3),
        score: 0.9,
        now_ms: 1_000,
    };
    let report = serde_json::to_string(&outcome).expect("report serializes");
    let (status, body) = request(addr, "POST", "/v1/report", report.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"reports\":1"), "{body}");

    let bad_outcome = fg_serve::OutcomeReport {
        score: 7.0,
        ..outcome
    };
    let bad = serde_json::to_string(&bad_outcome).expect("report serializes");
    let (status, _) = request(addr, "POST", "/v1/report", bad.as_bytes());
    assert_eq!(status, 400);

    let (status, body) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(
        body.contains("fg_decisions_total"),
        "metrics must include decision counters"
    );
    assert!(
        body.contains("fg_http_requests_total"),
        "metrics must include HTTP counters"
    );

    let (status, _) = request(addr, "GET", "/v1/decide", b"");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/healthz", b"");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/no/such/path", b"");
    assert_eq!(status, 404);

    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");
}

/// A unique temp path for this test process (no wall-clock naming needed).
fn temp_config_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fg-serve-test-{}-{tag}.json", std::process::id()))
}

fn wait_for<F: FnMut() -> bool>(mut ready: F, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if ready() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

#[test]
fn hot_reload_rejects_bad_configs_and_applies_good_ones() {
    let path = temp_config_path("reload");
    let config = test_config();
    std::fs::write(&path, config.to_json()).expect("write initial config");

    let server =
        Server::start(config.clone(), Telemetry::shared(), Some(path.clone())).expect("boot");
    let addr = server.addr();
    let state = server.state().clone();
    assert_eq!(state.generation(), 1);

    // 1. A semantically broken policy (challenge at the block threshold —
    //    structurally valid, rejected by the fg-analyze gate) must be
    //    refused, and the old config must keep serving.
    let mut bad = config.clone();
    bad.policy.challenge_threshold = bad.policy.block_threshold;
    std::fs::write(&path, bad.to_json()).expect("write bad config");
    assert!(
        wait_for(
            || state.last_reload().contains("rejected"),
            Duration::from_secs(5)
        ),
        "watcher never rejected the bad config: {}",
        state.last_reload()
    );
    assert_eq!(
        state.generation(),
        1,
        "rejected reload must not bump the generation"
    );
    let decide_body = sample_decide_body();
    let (status, _) = request(addr, "POST", "/v1/decide", decide_body.as_bytes());
    assert_eq!(
        status, 200,
        "old config must keep serving after a rejected reload"
    );

    // 2. A boot-only field change is also rejected (restart required).
    let mut frozen = config.clone();
    frozen.workers = 7;
    std::fs::write(&path, frozen.to_json()).expect("write frozen-field config");
    assert!(
        wait_for(
            || state.last_reload().contains("restart required"),
            Duration::from_secs(5)
        ),
        "boot-only change not refused: {}",
        state.last_reload()
    );
    assert_eq!(state.generation(), 1);

    // 3. A valid hot change (tightened limits) applies and bumps the
    //    generation, visible through /readyz.
    let mut good = config.clone();
    good.limits.decide = 8;
    std::fs::write(&path, good.to_json()).expect("write good config");
    assert!(
        wait_for(|| state.generation() == 2, Duration::from_secs(5)),
        "valid reload never applied: {}",
        state.last_reload()
    );
    let (status, body) = request(addr, "GET", "/readyz", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"config_generation\":2"), "{body}");

    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn drain_finishes_in_flight_work_and_stops_accepting() {
    let server = Server::start(test_config(), Telemetry::shared(), None).expect("boot");
    let addr = server.addr();

    // Serve something first so the drain has real state behind it.
    let decide_body = sample_decide_body();
    let (status, _) = request(addr, "POST", "/v1/decide", decide_body.as_bytes());
    assert_eq!(status, 200);

    server.begin_shutdown();
    // Draining is visible on /readyz as 503 until the workers exit — but
    // only if a worker picks the connection up before the pool drains, so
    // accept either answer and require the drain itself to be clean.
    let probe = TcpStream::connect(addr);
    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");
    assert_eq!(report.stragglers, 0);
    drop(probe);

    // The listener is gone: new connections must fail.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after drain"
    );
}
