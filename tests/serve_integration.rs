//! End-to-end integration of the serving layer: endpoints, load shedding,
//! config hot-reload (reject-and-keep-old), and graceful drain — all over
//! real sockets on an ephemeral port.

use fg_scenario::workload::{generate, WorkloadConfig};
use fg_serve::{ServeConfig, Server};
use fg_telemetry::Telemetry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn test_config() -> ServeConfig {
    let mut config = ServeConfig::recommended();
    config.listen = "127.0.0.1:0".to_owned();
    config.workers = 2;
    config.queue_depth = 16;
    config
}

/// One full HTTP exchange on a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status present")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// Like [`request`], but sends extra request headers and returns the
/// response headers (lower-cased names) alongside status and body.
fn request_full(
    addr: SocketAddr,
    method: &str,
    target: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status present")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric length");
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (
        status,
        headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

fn sample_decide_body() -> String {
    let workload = generate(&WorkloadConfig {
        seed: 5,
        horizon_hours: 1,
        arrivals_per_day: 50.0,
        seat_spinner: false,
        sms_pumper: false,
    });
    serde_json::to_string(workload.requests.first().expect("non-empty workload"))
        .expect("request serializes")
}

#[test]
fn endpoints_answer_with_correct_statuses() {
    let server = Server::start(test_config(), Telemetry::shared(), None).expect("boot");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    let (status, body) = request(addr, "GET", "/readyz", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"ready\":true"), "{body}");
    assert!(body.contains("\"config_generation\":1"), "{body}");

    let decide_body = sample_decide_body();
    let (status, body) = request(addr, "POST", "/v1/decide", decide_body.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"decision\""), "{body}");
    assert!(body.contains("\"reasons\""), "{body}");

    let (status, _) = request(addr, "POST", "/v1/decide", b"{not json");
    assert_eq!(status, 400);

    let outcome = fg_serve::OutcomeReport {
        ip: fg_netsim::ip::IpAddress::from_octets(10, 1, 2, 3),
        score: 0.9,
        now_ms: 1_000,
    };
    let report = serde_json::to_string(&outcome).expect("report serializes");
    let (status, body) = request(addr, "POST", "/v1/report", report.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"reports\":1"), "{body}");

    let bad_outcome = fg_serve::OutcomeReport {
        score: 7.0,
        ..outcome
    };
    let bad = serde_json::to_string(&bad_outcome).expect("report serializes");
    let (status, _) = request(addr, "POST", "/v1/report", bad.as_bytes());
    assert_eq!(status, 400);

    let (status, body) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(
        body.contains("fg_decisions_total"),
        "metrics must include decision counters"
    );
    assert!(
        body.contains("fg_http_requests_total"),
        "metrics must include HTTP counters"
    );

    let (status, _) = request(addr, "GET", "/v1/decide", b"");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/healthz", b"");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/no/such/path", b"");
    assert_eq!(status, 404);

    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");
}

#[test]
fn observability_plane_links_metrics_traces_and_the_flight_recorder() {
    let server = Server::start(test_config(), Telemetry::shared(), None).expect("boot");
    let addr = server.addr();

    // Drive a workload with abusive traffic: non-allow decisions are
    // pinned into the trace ring deterministically (no sampling coin), so
    // the assertions below don't depend on timing or luck.
    let workload = generate(&WorkloadConfig {
        seed: 7,
        horizon_hours: 2,
        arrivals_per_day: 600.0,
        seat_spinner: true,
        sms_pumper: false,
    });
    let wire_trace = "4bf92f3577b34da6a3ce929d0e0e4736";
    let mut non_allow_id: Option<u64> = None;
    let mut served = 0u64;
    for req in workload.requests.iter().take(400) {
        let body = serde_json::to_string(req).expect("request serializes");
        let traceparent = format!("00-{wire_trace}-00f067aa0ba902b7-01");
        let (status, headers, body) = request_full(
            addr,
            "POST",
            "/v1/decide",
            &[("Traceparent", &traceparent)],
            body.as_bytes(),
        );
        assert_eq!(status, 200, "{body}");
        served += 1;
        let parsed: serde_json::Value = serde_json::from_str(&body).expect("decision json");
        let trace_id = parsed
            .get("trace_id")
            .and_then(|v| v.as_u64())
            .expect("decision carries a trace id");
        // The caller's trace id is echoed back verbatim, with the decision
        // trace id as the new parent span.
        let echo = headers
            .iter()
            .find(|(name, _)| name == "traceparent")
            .map(|(_, value)| value.clone())
            .expect("traceparent echoed");
        assert_eq!(echo, format!("00-{wire_trace}-{trace_id:016x}-01"));
        // Wire decisions carry serde's variant spelling ("Allow"), the
        // observability plane uses the Display labels ("allow").
        let decision = parsed
            .get("decision")
            .and_then(|v| v.as_str())
            .expect("decision label");
        if decision != "Allow" && non_allow_id.is_none() {
            non_allow_id = Some(trace_id);
        }
    }
    let pinned = non_allow_id.expect("abusive workload produced a non-allow decision");

    // The pinned trace is retrievable, spans included, via its hex id.
    let (status, body) = request(
        addr,
        "GET",
        &format!("/debug/traces?trace_id={pinned:016x}"),
        b"",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(&format!("{pinned:016x}")), "{body}");
    assert!(body.contains("\"spans\""), "{body}");
    assert!(body.contains("serve.http"), "{body}");
    let (status, _) = request(addr, "GET", "/debug/traces?trace_id=zzz", b"");
    assert_eq!(status, 400);

    // The flight recorder saw every exchange.
    let (status, body) = request(addr, "GET", "/debug/flightrecorder", b"");
    assert_eq!(status, 200, "{body}");
    let flight: serde_json::Value = serde_json::from_str(&body).expect("flight json");
    let recorded = flight
        .get("recorded")
        .and_then(|v| v.as_u64())
        .expect("recorded count");
    assert!(recorded >= served, "{recorded} < {served}");

    // The alert surface answers with the serve SLO policy.
    let (status, body) = request(addr, "GET", "/debug/alerts", b"");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"active\""), "{body}");
    assert!(body.contains("serve-p99-slo"), "{body}");

    // The latency grid exposes per-endpoint histograms whose exemplars are
    // exactly the pinned (non-allow) trace ids — resolvable above.
    let (status, metrics) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("fg_http_request_duration_seconds_bucket"),
        "latency grid missing"
    );
    assert!(
        metrics.contains("endpoint=\"decide\",status=\"200\""),
        "decide row missing"
    );
    assert!(
        metrics.contains("# {trace_id=\""),
        "exemplars missing from exposition"
    );
    assert!(
        metrics.contains("fg_serve_active_alerts"),
        "alert gauge missing"
    );

    // Debug endpoints answer only GET.
    let (status, _) = request(addr, "POST", "/debug/traces", b"");
    assert_eq!(status, 405);

    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");
}

/// A unique temp path for this test process (no wall-clock naming needed).
fn temp_config_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fg-serve-test-{}-{tag}.json", std::process::id()))
}

fn wait_for<F: FnMut() -> bool>(mut ready: F, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if ready() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

#[test]
fn hot_reload_rejects_bad_configs_and_applies_good_ones() {
    let path = temp_config_path("reload");
    let config = test_config();
    std::fs::write(&path, config.to_json()).expect("write initial config");

    let server =
        Server::start(config.clone(), Telemetry::shared(), Some(path.clone())).expect("boot");
    let addr = server.addr();
    let state = server.state().clone();
    assert_eq!(state.generation(), 1);

    // 1. A semantically broken policy (challenge at the block threshold —
    //    structurally valid, rejected by the fg-analyze gate) must be
    //    refused, and the old config must keep serving.
    let mut bad = config.clone();
    bad.policy.challenge_threshold = bad.policy.block_threshold;
    std::fs::write(&path, bad.to_json()).expect("write bad config");
    assert!(
        wait_for(
            || state.last_reload().contains("rejected"),
            Duration::from_secs(5)
        ),
        "watcher never rejected the bad config: {}",
        state.last_reload()
    );
    assert_eq!(
        state.generation(),
        1,
        "rejected reload must not bump the generation"
    );
    let decide_body = sample_decide_body();
    let (status, _) = request(addr, "POST", "/v1/decide", decide_body.as_bytes());
    assert_eq!(
        status, 200,
        "old config must keep serving after a rejected reload"
    );

    // 2. A boot-only field change is also rejected (restart required).
    let mut frozen = config.clone();
    frozen.workers = 7;
    std::fs::write(&path, frozen.to_json()).expect("write frozen-field config");
    assert!(
        wait_for(
            || state.last_reload().contains("restart required"),
            Duration::from_secs(5)
        ),
        "boot-only change not refused: {}",
        state.last_reload()
    );
    assert_eq!(state.generation(), 1);

    // 3. A valid hot change (tightened limits) applies and bumps the
    //    generation, visible through /readyz.
    let mut good = config.clone();
    good.limits.decide = 8;
    std::fs::write(&path, good.to_json()).expect("write good config");
    assert!(
        wait_for(|| state.generation() == 2, Duration::from_secs(5)),
        "valid reload never applied: {}",
        state.last_reload()
    );
    let (status, body) = request(addr, "GET", "/readyz", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"config_generation\":2"), "{body}");

    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn drain_finishes_in_flight_work_and_stops_accepting() {
    let server = Server::start(test_config(), Telemetry::shared(), None).expect("boot");
    let addr = server.addr();

    // Serve something first so the drain has real state behind it.
    let decide_body = sample_decide_body();
    let (status, _) = request(addr, "POST", "/v1/decide", decide_body.as_bytes());
    assert_eq!(status, 200);

    server.begin_shutdown();
    // Draining is visible on /readyz as 503 until the workers exit — but
    // only if a worker picks the connection up before the pool drains, so
    // accept either answer and require the drain itself to be clean.
    let probe = TcpStream::connect(addr);
    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");
    assert_eq!(report.stragglers, 0);
    drop(probe);

    // The listener is gone: new connections must fail.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after drain"
    );
}
