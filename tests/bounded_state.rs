//! Long-horizon regression: rotating identities must not grow the defence
//! state without bound.
//!
//! The paper's attackers rotate fingerprints every few hours and take a
//! fresh residential exit per request, so every keyed defence map
//! (per-IP/per-fingerprint velocity, per-booking SMS limiter, per-client
//! hold limiter) sees an endless stream of new keys. With housekeeping
//! compaction/eviction wired into `DefendedApp::tick`, map sizes must track
//! the *live* key population — identities still inside a velocity window or
//! holding an unrefilled token bucket — not the cumulative total of
//! identities ever seen.

use fg_behavior::api::{App, ClientRequest};
use fg_core::ids::{ClientId, CountryCode, FlightId, PhoneNumber};
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::population::PopulationModel;
use fg_inventory::{Flight, Passenger};
use fg_mitigation::gating::TrustTier;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::ip::IpClass;
use fg_scenario::app::{AppConfig, DefendedApp};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn rotating_identities_keep_defence_state_bounded() {
    let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::recommended()), 99);
    app.add_flight(Flight::new(FlightId(1), 100_000, SimTime::from_days(32)));
    let geo = GeoDatabase::default_world();
    let population = PopulationModel::default_web();
    let mut rng = StdRng::seed_from_u64(7);

    // 30 days; every hour two brand-new identities (fresh client, IP, and
    // fingerprint — never reused) search, hold, pay, and pull a boarding
    // pass over SMS, then disappear forever.
    const DAYS: u64 = 30;
    const IDENTITIES_PER_HOUR: u64 = 2;
    let mut distinct_identities = 0u64;
    let mut distinct_bookings = 0u64;
    for hour in 0..DAYS * 24 {
        for k in 0..IDENTITIES_PER_HOUR {
            distinct_identities += 1;
            let req = ClientRequest {
                client: ClientId(1_000 + distinct_identities),
                ip: geo
                    .sample_ip(CountryCode::new("DE"), IpClass::Residential, &mut rng)
                    .unwrap(),
                fingerprint: population.sample_human(&mut rng),
                tier: TrustTier::Verified,
                is_bot: false,
            };
            let now = SimTime::from_hours(hour) + SimDuration::from_mins(k as i64 * 20);
            let _ = app.search(&req, now);
            let held = app
                .hold(
                    &req,
                    FlightId(1),
                    vec![Passenger::simple("ROTATING", "TRAVELLER")],
                    now + SimDuration::from_mins(1),
                )
                .ok();
            if let Some(booking) = held {
                distinct_bookings += 1;
                let _ = app.pay(&req, booking, now + SimDuration::from_mins(2));
                let _ = app.boarding_pass_sms(
                    &req,
                    booking,
                    PhoneNumber::new(CountryCode::new("DE"), 15_200_000_000 + distinct_bookings),
                    now + SimDuration::from_mins(3),
                );
            }
        }
        // The simulation engine ticks housekeeping at least every 5 minutes;
        // hourly is a *weaker* regime, so passing here is conservative.
        app.tick(SimTime::from_hours(hour + 1));
    }

    assert_eq!(distinct_identities, DAYS * 24 * IDENTITIES_PER_HOUR);
    assert!(
        distinct_bookings > distinct_identities / 2,
        "workload failed to book: {distinct_bookings} bookings"
    );

    // Velocity counters (1 h sliding window): live keys are only the last
    // hour's identities — ≤ 2 identities × 3 maps, doubled for slack.
    let velocity = app.detection().tracked_keys();
    let velocity_live_bound = 2 * (IDENTITIES_PER_HOUR as usize) * 3;
    assert!(
        velocity.total() <= velocity_live_bound,
        "velocity maps grew past the live population: {velocity:?} \
         (bound {velocity_live_bound}, {distinct_identities} identities seen)"
    );

    // Keyed limiters: a booking-SMS bucket (burst 3, 3/day) refills the one
    // spent token in 8 h; a client-hold bucket (burst 5, 10/day) in 2.4 h.
    // Live populations are the keys active inside those refill spans.
    let (booking_sms, client_hold) = app.policy().limiter_tracked_keys();
    let booking_live = (IDENTITIES_PER_HOUR * 9) as usize; // ≤ 9 h of bookings
    assert!(
        booking_sms <= 2 * booking_live,
        "booking-SMS limiter grew past the live population: {booking_sms} \
         (bound {}, {distinct_bookings} bookings seen)",
        2 * booking_live
    );
    let client_live = (IDENTITIES_PER_HOUR * 3) as usize; // ≤ 3 h of clients
    assert!(
        client_hold <= 2 * client_live,
        "client-hold limiter grew past the live population: {client_hold} \
         (bound {}, {distinct_identities} clients seen)",
        2 * client_live
    );

    // The point of the regression: state is orders of magnitude below the
    // cumulative key count a leak would reach.
    let total_state = velocity.total() + booking_sms + client_hold;
    assert!(
        (total_state as u64) < distinct_identities / 10,
        "defence state ({total_state}) is not bounded relative to \
         {distinct_identities} rotated identities"
    );
}
