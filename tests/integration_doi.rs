//! Cross-crate integration: the Denial-of-Inventory loop end to end.
//!
//! Exercises fg-behavior agents against the fg-scenario defended app over
//! real fg-inventory ledgers, asserting the paper's qualitative claims hold
//! through the whole stack (not just per-crate units).

use fg_behavior::{LegitConfig, LegitPopulation, SeatSpinner, SeatSpinnerConfig};
use fg_core::ids::{ClientId, FlightId};
use fg_core::time::{SimDuration, SimTime};
use fg_inventory::{BookingStatus, Flight};
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_scenario::app::{AppConfig, DefendedApp};
use fg_scenario::engine::{share, Simulation};
use fg_scenario::monitor::HoldMonitor;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Shared<T> = std::rc::Rc<std::cell::RefCell<T>>;
type World = (
    Simulation,
    Shared<LegitPopulation>,
    Shared<SeatSpinner>,
    Shared<HoldMonitor>,
);

fn build_world(policy: PolicyConfig, seed: u64, days: u64) -> World {
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(days);
    let mut app = DefendedApp::new(AppConfig::airline(policy), seed);
    app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(days + 3)));
    app.add_flight(Flight::new(
        FlightId(2),
        50_000,
        SimTime::from_days(days + 30),
    ));

    let mut sim = Simulation::new(app, seed);
    let (legit, legit_agent) = share(LegitPopulation::new(
        LegitConfig::default_airline(vec![FlightId(1), FlightId(2)], end),
        geo.clone(),
        1_000_000,
    ));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut rng = StdRng::seed_from_u64(seed);
    let (bot, bot_agent) = share(SeatSpinner::new(
        SeatSpinnerConfig::airline_a(FlightId(1)),
        ClientId(1),
        geo,
        &mut rng,
    ));
    sim.add_agent(bot_agent, SimTime::ZERO);

    let (mon, mon_agent) = share(HoldMonitor::new(
        FlightId(1),
        SimDuration::from_mins(30),
        end,
    ));
    sim.add_agent(mon_agent, SimTime::ZERO);

    (sim, legit, bot, mon)
}

#[test]
fn undefended_spinner_denies_inventory_and_never_buys() {
    let (sim, legit, bot, mon) = build_world(PolicyConfig::unprotected(), 1, 4);
    let app = sim.run(SimTime::from_days(4));

    // The bot held large blocks continuously.
    assert!(
        mon.borrow().mean_hold_ratio() > 0.25,
        "mean hold ratio {:.3}",
        mon.borrow().mean_hold_ratio()
    );
    assert!(bot.borrow().stats().holds_placed > 100);

    // Every attacker booking ends held/expired — never paid.
    let paid_by_bot = app
        .reservations()
        .bookings()
        .filter(|b| b.status() == BookingStatus::Paid || b.status() == BookingStatus::Ticketed)
        .count() as u64;
    let legit_paid = legit.borrow().stats().paid;
    assert!(paid_by_bot <= legit_paid, "only legit bookings convert");

    // Real customers were turned away from the depleted flight.
    assert!(legit.borrow().stats().denied_by_stock > 0);

    // Seat conservation held across every crate boundary.
    let a = app.reservations().availability(FlightId(1)).unwrap();
    assert_eq!(a.available + a.held + a.sold, 180);
}

#[test]
fn recommended_stack_protects_inventory() {
    let (sim, _legit, _bot, mon) = build_world(PolicyConfig::recommended(), 2, 4);
    let app = sim.run(SimTime::from_days(4));

    // The target flight stays mostly sellable under the full stack.
    assert!(
        mon.borrow().mean_hold_ratio() < 0.15,
        "mean hold ratio {:.3}",
        mon.borrow().mean_hold_ratio()
    );
    // The defence acted (anything but a pile of Allows).
    let counts = app.policy().counts();
    assert!(
        counts.tier_denied + counts.honeypot + counts.block + counts.rate_limited > 0,
        "{counts:?}"
    );
}

#[test]
fn expired_holds_always_return_to_inventory() {
    let (sim, _, _, _) = build_world(PolicyConfig::unprotected(), 3, 2);
    // Run well past the spinner's endgame so every last hold TTL lapses.
    let app = sim.run(SimTime::from_days(4));
    // A day after the horizon, no live holds remain anywhere.
    for f in app.reservations().flight_ids() {
        assert_eq!(
            app.reservations().availability(f).unwrap().held,
            0,
            "flight {f} still has held seats"
        );
    }
}

#[test]
fn run_is_deterministic_across_identical_builds() {
    let run_once = || {
        let (sim, legit, bot, _) = build_world(PolicyConfig::traditional_antibot(), 7, 2);
        let app = sim.run(SimTime::from_days(2));
        let legit_stats = legit.borrow().stats();
        let bot_holds = bot.borrow().stats().holds_placed;
        (
            app.reservations().booking_count(),
            app.logs().len(),
            legit_stats,
            bot_holds,
        )
    };
    assert_eq!(run_once(), run_once());
}
