//! Cross-crate integration: the parallel multi-seed harness.
//!
//! The acceptance bar is determinism — a cell's report JSON is a pure
//! function of (experiment, seed), so sweeping with any `--jobs` produces
//! byte-identical artifacts, and a `--seeds 1 --seed-offset K` run
//! regenerates exactly cell `K` of a larger sweep.

use fg_scenario::experiments::{ablation, case_b, proxies};
use fg_scenario::harness::{run_matrix, HarnessConfig};

fn smoke(seeds: usize, seed_offset: usize, jobs: usize, telemetry: bool) -> HarnessConfig {
    HarnessConfig {
        seeds,
        seed_offset,
        jobs,
        smoke: true,
        telemetry,
        alerts: false,
        traces: false,
        shards: 1,
    }
}

#[test]
fn ablation_cells_are_thread_count_independent() {
    let specs = [ablation::spec()];
    let sequential = run_matrix(&specs, &smoke(2, 0, 1, false));
    let parallel = run_matrix(&specs, &smoke(2, 0, 4, false));
    assert_eq!(sequential[0].cells.len(), 2);
    for (s, p) in sequential[0].cells.iter().zip(&parallel[0].cells) {
        assert_eq!(s.seed, p.seed);
        assert_eq!(
            s.json, p.json,
            "replicate {} diverged between jobs=1 and jobs=4",
            s.replicate
        );
    }
    assert_eq!(sequential[0].aggregate, parallel[0].aggregate);
    // Replicate 0 runs the module's historical default seed.
    assert_eq!(
        sequential[0].cells[0].seed,
        ablation::AblationConfig::default().seed
    );
}

#[test]
fn seed_offset_reproduces_any_cell_of_a_sweep() {
    let specs = [proxies::spec()];
    let sweep = run_matrix(&specs, &smoke(3, 0, 3, false));
    for replicate in 0..3 {
        let lone = run_matrix(&specs, &smoke(1, replicate, 1, false));
        assert_eq!(lone[0].cells[0].seed, sweep[0].cells[replicate].seed);
        assert_eq!(
            lone[0].cells[0].json, sweep[0].cells[replicate].json,
            "cell {replicate} not reproduced by --seed-offset"
        );
    }
}

#[test]
fn replicates_diverge_but_aggregate_over_all_seeds() {
    let specs = [proxies::spec()];
    let runs = run_matrix(&specs, &smoke(3, 0, 2, false));
    let cells = &runs[0].cells;
    assert!(
        cells.windows(2).any(|w| w[0].json != w[1].json),
        "different seeds should produce different reports"
    );
    assert!(!runs[0].aggregate.is_empty());
    for row in &runs[0].aggregate {
        assert_eq!(row.n, 3, "{} missing replicates", row.metric);
        assert!(row.min <= row.max, "{}", row.metric);
    }
}

#[test]
fn telemetry_merges_across_replicates() {
    let specs = [case_b::spec()];
    let runs = run_matrix(&specs, &smoke(2, 0, 2, true));
    let run = &runs[0];
    let merged = run
        .merged_telemetry
        .as_ref()
        .expect("case_b is telemetry-capable");
    let per_cell: u64 = run
        .cells
        .iter()
        .map(|c| c.telemetry.as_ref().unwrap().audit.recorded)
        .sum();
    assert_eq!(
        merged.audit.recorded, per_cell,
        "merged audit totals must sum the replicates"
    );
    assert!(per_cell > 0, "case_b records policy decisions");
}
