//! Cross-crate integration: the defence pipeline itself — detection signals
//! flowing into policy decisions, the security-team loop, the honeypot, and
//! the attacker's adaptation, all through public APIs.

use fg_behavior::api::{ApiOutcome, App, ClientRequest};
use fg_behavior::{SeatSpinner, SeatSpinnerConfig};
use fg_core::ids::{ClientId, CountryCode, FlightId};
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::population::PopulationModel;
use fg_inventory::{Flight, Passenger};
use fg_mitigation::gating::TrustTier;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::ip::IpClass;
use fg_scenario::app::{AppConfig, DefendedApp};
use fg_scenario::engine::{share, Simulation};
use fg_scenario::team::{SecurityTeam, TeamConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn human_request(seed: u64) -> ClientRequest {
    let mut rng = StdRng::seed_from_u64(seed);
    ClientRequest {
        client: ClientId(1_000_000 + seed),
        ip: GeoDatabase::default_world()
            .sample_ip(CountryCode::new("DE"), IpClass::Residential, &mut rng)
            .unwrap(),
        fingerprint: PopulationModel::default_web().sample_human(&mut rng),
        tier: TrustTier::Verified,
        is_bot: false,
    }
}

#[test]
fn naive_bot_is_stopped_at_the_first_request() {
    // A bot with a leaking webdriver flag never gets one hold through the
    // traditional posture.
    let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::traditional_antibot()), 1);
    app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(30)));

    let mut req = human_request(1);
    req.is_bot = true;
    req.fingerprint.webdriver = true;

    let outcome = app.hold(
        &req,
        FlightId(1),
        vec![Passenger::simple("BOT", "ONE")],
        SimTime::ZERO,
    );
    assert!(outcome.defence_refused(), "{outcome}");
    assert_eq!(app.reservations().booking_count(), 0);
}

#[test]
fn team_and_rotation_arms_race_runs_multiple_rounds() {
    let geo = GeoDatabase::default_world();
    let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::traditional_antibot()), 2);
    app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(20)));

    let mut sim = Simulation::new(app, 2);
    sim.with_team(
        TeamConfig::default(),
        SimDuration::from_hours(1),
        SimTime::from_hours(1),
    );

    let mut rng = StdRng::seed_from_u64(2);
    let mut cfg = SeatSpinnerConfig::airline_a(FlightId(1));
    cfg.rotation_schedule = fg_fingerprint::rotation::RotationSchedule::OnBlock {
        reaction: SimDuration::from_hours(2),
    };
    let (bot, bot_agent) = share(SeatSpinner::new(cfg, ClientId(1), geo, &mut rng));
    sim.add_agent(bot_agent, SimTime::ZERO);

    let app = sim.run(SimTime::from_days(7));

    // Multiple block rules were deployed and multiple rotations answered
    // them — the §IV-A cycle, several rounds deep.
    assert!(
        app.policy().rules().len() >= 3,
        "rules {}",
        app.policy().rules().len()
    );
    assert!(
        bot.borrow().rotation_times().len() >= 3,
        "rotations {}",
        bot.borrow().rotation_times().len()
    );
    // Every deployed rule eventually hit something (it was aimed at a real
    // identity the bot used).
    let effective = app
        .policy()
        .rules()
        .stats()
        .iter()
        .filter(|r| r.hits > 0)
        .count();
    assert!(effective >= 2, "effective rules {effective}");
}

#[test]
fn honeypot_keeps_attacker_spending_without_real_harm() {
    let geo = GeoDatabase::default_world();
    let mut policy = PolicyConfig::recommended();
    policy.gate.clear(fg_detection::log::Endpoint::Hold);
    policy.client_hold_limit = None;
    let mut app = DefendedApp::new(AppConfig::airline(policy), 3);
    app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(20)));

    let mut sim = Simulation::new(app, 3);
    sim.with_team(
        TeamConfig::default(),
        SimDuration::from_hours(2),
        SimTime::from_hours(2),
    );
    let mut rng = StdRng::seed_from_u64(3);
    let (bot, bot_agent) = share(SeatSpinner::new(
        SeatSpinnerConfig::airline_a(FlightId(1)),
        ClientId(1),
        geo,
        &mut rng,
    ));
    sim.add_agent(bot_agent, SimTime::ZERO);

    let app = sim.run(SimTime::from_days(5));

    // After the team flags the bot, it lives in the decoy: fake holds pile
    // up, real inventory recovers, and the bot keeps "succeeding".
    assert!(
        app.honeypot().stats().holds_absorbed > 20,
        "{:?}",
        app.honeypot().stats()
    );
    let avail = app.reservations().availability(FlightId(1)).unwrap();
    assert!(avail.held < 90, "real holds bounded once diverted: {avail}");
    // The bot's view: most recent holds succeeded (it has no reason to
    // rotate aggressively).
    assert!(bot.borrow().stats().holds_placed > 50);
}

#[test]
fn security_team_review_is_side_effect_free_for_humans() {
    let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::traditional_antibot()), 4);
    app.add_flight(Flight::new(FlightId(1), 1_000, SimTime::from_days(30)));

    // Twenty distinct humans book and pay normally.
    for i in 0..20 {
        let req = human_request(100 + i);
        let booking = app
            .hold(
                &req,
                FlightId(1),
                vec![Passenger::simple("GOOD", &format!("USER{i}"))],
                SimTime::from_mins(i * 10),
            )
            .unwrap();
        assert!(app
            .pay(&req, booking, SimTime::from_mins(i * 10 + 5))
            .is_ok());
    }

    let mut team = SecurityTeam::new(TeamConfig::default());
    let outcome = team.review(&mut app, SimTime::from_hours(4));
    assert_eq!(outcome.fingerprints_blocked, 0, "{outcome:?}");

    // Humans remain unblocked afterwards.
    let req = human_request(105);
    assert!(matches!(
        app.search(&req, SimTime::from_hours(5)),
        ApiOutcome::Ok(())
    ));
}
