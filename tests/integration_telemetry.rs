//! Cross-crate integration: the telemetry pipeline on a full seeded
//! Airline-A run — the audit trail explains every non-Allow decision, the
//! counter-backed decision totals agree with the scenario report, and the
//! exporters produce well-formed artifacts.

use fg_scenario::experiments::case_a::{run_with_telemetry, CaseAConfig};

#[test]
fn case_a_audit_trail_explains_the_defence() {
    let (report, telemetry) = run_with_telemetry(CaseAConfig::default());
    let snapshot = telemetry.snapshot();

    // The run produced a non-empty audit trail.
    let audit = telemetry.audit();
    assert!(!audit.is_empty(), "audit trail empty after a 14-day run");

    // The report's blocked count is the audit trail's blocked count is the
    // exported counter: three views of the same cells.
    assert!(report.blocked_requests > 0, "{report}");
    assert_eq!(audit.decision_total("block"), report.blocked_requests);
    assert_eq!(
        snapshot
            .metrics
            .counter_value("fg_decisions_total", &[("decision", "block")]),
        Some(report.blocked_requests)
    );

    // At least one non-Allow decision is explained end-to-end: the record
    // names the signal that fired and carries a triggered reason link.
    let explained = audit.non_allow().find(|r| {
        r.triggering_signal().is_some()
            && r.reasons
                .iter()
                .any(|reason| reason.contains(":triggered("))
    });
    let record = explained.expect("no non-allow decision carries a triggering signal");
    assert!(!record.endpoint.is_empty());

    // Stage profiles cover the whole gate path.
    let stages: Vec<&str> = snapshot.stages.iter().map(|s| s.stage.as_str()).collect();
    for expected in [
        "mitigation.honeypot-check",
        "detect.assess",
        "policy.decide",
        "team.review",
    ] {
        assert!(stages.contains(&expected), "missing stage {expected}");
    }

    // Exporters render without panicking and carry the decision family.
    let json = snapshot.to_json();
    assert!(json.contains("fg_decisions_total"));
    let prom = snapshot.to_prometheus();
    assert!(prom.contains("# TYPE fg_decisions_total counter"));
    assert!(prom.contains("fg_decisions_total{decision=\"block\"}"));
}

#[test]
fn case_a_telemetry_is_deterministic_in_sim_terms() {
    // Two runs with the same seed produce identical audit trails (wall-clock
    // stage timings differ, sim-side observations must not).
    let (_, t1) = run_with_telemetry(CaseAConfig::default());
    let (_, t2) = run_with_telemetry(CaseAConfig::default());
    assert_eq!(t1.audit().recorded(), t2.audit().recorded());
    assert_eq!(t1.audit().decision_totals(), t2.audit().decision_totals());
    let (s1, s2) = (t1.snapshot(), t2.snapshot());
    assert_eq!(s1.metrics.counters, s2.metrics.counters);
}
