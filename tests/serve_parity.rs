//! Wire/simulator decision parity.
//!
//! The serving tentpole's core claim: `POST /v1/decide` is the *same*
//! decision the simulator's gate makes — same decision kind, same reason
//! chain, same score and signal breakdown, byte-for-byte in the JSON —
//! because both run [`fg_scenario::app::DefendedApp::decide_request`]. This
//! test replays a deterministic fg-behavior workload twice: once in
//! process, once over a real TCP socket against a running server, and
//! demands identical artifacts under the same seed and shard config.

use fg_scenario::app::GateDecision;
use fg_scenario::workload::{generate, WireRequest, WorkloadConfig};
use fg_serve::{DecisionService, ServeConfig, Server};
use fg_telemetry::Telemetry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Sends one decide request over an established keep-alive connection and
/// returns (status, body).
fn post_decide(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    body: &[u8],
) -> (u16, Vec<u8>) {
    write!(
        writer,
        "POST /v1/decide HTTP/1.1\r\nHost: parity\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write request head");
    writer.write_all(body).expect("write request body");
    writer.flush().expect("flush request");

    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .expect("read status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code present")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header line");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read response body");
    (status, body)
}

fn wire_decisions(config: &ServeConfig, requests: &[WireRequest]) -> Vec<String> {
    let server = Server::start(config.clone(), Telemetry::shared(), None).expect("server boots");
    let addr = server.addr();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(requests.len());
    for req in requests {
        let body = serde_json::to_string(req).expect("request serializes");
        let (status, resp) = post_decide(&mut reader, &mut writer, body.as_bytes());
        assert_eq!(status, 200, "decide must succeed for generated requests");
        out.push(String::from_utf8(resp).expect("utf-8 response"));
    }
    drop(reader);
    drop(writer);
    server.drain(Duration::from_secs(10));
    out
}

fn in_process_decisions(config: &ServeConfig, requests: &[WireRequest]) -> Vec<String> {
    let service = DecisionService::new(config, Telemetry::shared());
    requests
        .iter()
        .map(|req| serde_json::to_string(&service.decide(req)).expect("decision serializes"))
        .collect()
}

fn parity_under(config: &ServeConfig) {
    let workload = generate(&WorkloadConfig {
        seed: config.seed,
        horizon_hours: 2,
        arrivals_per_day: 600.0,
        seat_spinner: true,
        sms_pumper: true,
    });
    assert!(
        workload.requests.len() > 50,
        "workload too small to be meaningful: {}",
        workload.requests.len()
    );

    let local = in_process_decisions(config, &workload.requests);
    let wire = wire_decisions(config, &workload.requests);

    assert_eq!(local.len(), wire.len());
    for (i, (l, w)) in local.iter().zip(&wire).enumerate() {
        assert_eq!(
            l, w,
            "decision {i} diverged between in-process and wire replay"
        );
    }

    // Spot-check the artifacts carry real content: reason chains must be
    // present and trace ids distinct (they hash the per-request sequence).
    let decisions: Vec<GateDecision> = wire
        .iter()
        .map(|s| serde_json::from_str(s).expect("decision parses"))
        .collect();
    assert!(decisions.iter().any(|d| !d.reasons.is_empty()));
    let distinct: std::collections::HashSet<u64> = decisions.iter().map(|d| d.trace_id).collect();
    assert_eq!(
        distinct.len(),
        decisions.len(),
        "trace ids must be distinct"
    );
}

#[test]
fn wire_replay_matches_in_process_decisions() {
    let mut config = ServeConfig::recommended();
    config.listen = "127.0.0.1:0".to_owned();
    config.workers = 2;
    parity_under(&config);
}

#[test]
fn parity_holds_under_sharded_stores() {
    let mut config = ServeConfig::recommended();
    config.listen = "127.0.0.1:0".to_owned();
    config.workers = 2;
    config.shards = 4;
    config.seed = 7;
    parity_under(&config);
}
