//! Exposition-format conformance: the `/metrics` text a live fg-serve
//! produces after a seeded exchange must satisfy the Prometheus/OpenMetrics
//! histogram invariants scrapers rely on — cumulative buckets monotone
//! non-decreasing, `le` values ascending with a terminal `+Inf`, the `+Inf`
//! bucket equal to `_count`, `_sum` present for every series, and exemplar
//! labels drawn from the allowed charset.

use fg_scenario::workload::{generate, WorkloadConfig};
use fg_serve::{ServeConfig, Server};
use fg_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One full HTTP exchange on a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status present")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One parsed sample line: base name, label pairs, value, optional
/// exemplar `(labels, value)`.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    exemplar: Option<(Vec<(String, String)>, f64)>,
}

/// Parses `name{k="v",...} value [# {k="v"} value]` exposition lines.
fn parse_line(line: &str) -> Option<Sample> {
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (series, rest) = match line.find('}') {
        Some(close) => (&line[..close + 1], line[close + 1..].trim()),
        None => {
            let mut it = line.splitn(2, ' ');
            (it.next()?, it.next()?.trim())
        }
    };
    let (name, labels) = match series.find('{') {
        Some(open) => (
            series[..open].to_owned(),
            parse_labels(&series[open + 1..series.len() - 1]),
        ),
        None => (series.to_owned(), Vec::new()),
    };
    let (value_str, exemplar) = match rest.find('#') {
        Some(hash) => {
            let ex = rest[hash + 1..].trim();
            let open = ex.find('{')?;
            let close = ex.find('}')?;
            let ex_labels = parse_labels(&ex[open + 1..close]);
            let ex_value: f64 = ex[close + 1..].trim().parse().ok()?;
            (rest[..hash].trim(), Some((ex_labels, ex_value)))
        }
        None => (rest, None),
    };
    let value: f64 = match value_str {
        "+Inf" => f64::INFINITY,
        v => v.parse().ok()?,
    };
    Some(Sample {
        name,
        labels,
        value,
        exemplar,
    })
}

fn parse_labels(s: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for pair in s.split(',') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').expect("label pair has =");
        out.push((k.to_owned(), v.trim_matches('"').to_owned()));
    }
    out
}

/// The identity of one histogram series: base name (sans suffix) plus its
/// labels with `le` removed.
fn series_key(name: &str, labels: &[(String, String)]) -> (String, Vec<(String, String)>) {
    let base = name
        .trim_end_matches("_bucket")
        .trim_end_matches("_count")
        .trim_end_matches("_sum");
    let labels: Vec<(String, String)> = labels.iter().filter(|(k, _)| k != "le").cloned().collect();
    (base.to_owned(), labels)
}

#[derive(Default)]
struct HistogramSeries {
    /// `(le, cumulative count)` in exposition order.
    buckets: Vec<(f64, f64)>,
    count: Option<f64>,
    sum: Option<f64>,
    exemplars: Vec<(Vec<(String, String)>, f64)>,
}

#[test]
fn metrics_exposition_satisfies_histogram_and_exemplar_conformance() {
    let mut config = ServeConfig::recommended();
    config.listen = "127.0.0.1:0".to_owned();
    config.workers = 2;
    let server = Server::start(config, Telemetry::shared(), None).expect("boot");
    let addr = server.addr();

    // A seeded exchange with abusive traffic, so the latency grid holds
    // several (endpoint, status) cells and pinned exemplars.
    let workload = generate(&WorkloadConfig {
        seed: 11,
        horizon_hours: 2,
        arrivals_per_day: 400.0,
        seat_spinner: true,
        sms_pumper: false,
    });
    for req in workload.requests.iter().take(200) {
        let body = serde_json::to_string(req).expect("request serializes");
        let (status, _) = request(addr, "POST", "/v1/decide", body.as_bytes());
        assert_eq!(status, 200);
    }
    // A client error and a 404, so non-200 status cells exist too.
    let (status, _) = request(addr, "POST", "/v1/decide", b"{broken");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/nope", b"");
    assert_eq!(status, 404);

    let (status, text) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let report = server.drain(Duration::from_secs(10));
    assert!(report.clean, "{report:?}");

    // Collect every histogram family from the exposition.
    let mut series: BTreeMap<(String, Vec<(String, String)>), HistogramSeries> = BTreeMap::new();
    for line in text.lines() {
        let Some(sample) = parse_line(line) else {
            continue;
        };
        if sample.name.ends_with("_bucket") {
            let key = series_key(&sample.name, &sample.labels);
            let le = sample
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| match v.as_str() {
                    "+Inf" => f64::INFINITY,
                    v => v.parse().expect("numeric le"),
                })
                .expect("bucket line has le");
            let entry = series.entry(key).or_default();
            entry.buckets.push((le, sample.value));
            if let Some(ex) = sample.exemplar {
                entry.exemplars.push(ex);
            }
        } else if sample.name.ends_with("_count") {
            series
                .entry(series_key(&sample.name, &sample.labels))
                .or_default()
                .count = Some(sample.value);
        } else if sample.name.ends_with("_sum") {
            series
                .entry(series_key(&sample.name, &sample.labels))
                .or_default()
                .sum = Some(sample.value);
        }
    }

    let histograms: Vec<_> = series
        .iter()
        .filter(|(_, s)| !s.buckets.is_empty())
        .collect();
    assert!(
        histograms
            .iter()
            .any(|((base, _), _)| base == "fg_http_request_duration_seconds"),
        "request-latency histogram missing from exposition"
    );

    let mut exemplars_seen = 0usize;
    for ((base, labels), h) in histograms {
        let id = format!("{base}{labels:?}");

        // le ascending, +Inf terminal, exactly one +Inf.
        for pair in h.buckets.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "{id}: le not strictly ascending: {} then {}",
                pair[0].0,
                pair[1].0
            );
        }
        let (last_le, last_count) = *h.buckets.last().expect("non-empty buckets");
        assert!(
            last_le.is_infinite(),
            "{id}: terminal bucket must be le=\"+Inf\""
        );
        assert_eq!(
            h.buckets.iter().filter(|(le, _)| le.is_infinite()).count(),
            1,
            "{id}: exactly one +Inf bucket"
        );

        // Cumulative counts monotone non-decreasing.
        for pair in h.buckets.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "{id}: cumulative counts must not decrease: {} then {}",
                pair[0].1,
                pair[1].1
            );
        }

        // _count and _sum present; +Inf bucket equals _count.
        let count = h.count.unwrap_or_else(|| panic!("{id}: _count missing"));
        let sum = h.sum.unwrap_or_else(|| panic!("{id}: _sum missing"));
        assert_eq!(last_count, count, "{id}: +Inf bucket != _count");
        assert!(sum >= 0.0, "{id}: negative _sum");
        if count == 0.0 {
            assert_eq!(sum, 0.0, "{id}: empty histogram with non-zero _sum");
        }

        // Exemplars: label names/values in the allowed charset, and the
        // exemplar value inside the attached bucket's range.
        for (ex_labels, ex_value) in &h.exemplars {
            exemplars_seen += 1;
            for (k, v) in ex_labels {
                assert!(
                    k.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "{id}: exemplar label name {k:?} outside charset"
                );
                assert!(
                    v.chars().all(|c| c.is_ascii_graphic()),
                    "{id}: exemplar label value {v:?} outside charset"
                );
            }
            assert!(
                ex_labels.iter().any(|(k, v)| k == "trace_id"
                    && v.len() == 16
                    && v.bytes().all(|b| b.is_ascii_hexdigit())),
                "{id}: exemplar must carry a 16-hex trace_id: {ex_labels:?}"
            );
            assert!(
                *ex_value >= 0.0 && ex_value.is_finite(),
                "{id}: exemplar value {ex_value} out of range"
            );
        }
    }
    assert!(
        exemplars_seen > 0,
        "seeded abusive exchange must surface at least one exemplar"
    );
}
