//! Cross-crate integration: SMS pumping through the whole stack — bot →
//! defended app → reservation ticketing → SMS gateway → operator settlement.

use fg_behavior::{LegitConfig, LegitPopulation, SmsPumper, SmsPumperConfig};
use fg_core::ids::{ClientId, CountryCode, FlightId};
use fg_core::money::Money;
use fg_core::time::SimTime;
use fg_inventory::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_scenario::app::{AppConfig, DefendedApp};
use fg_scenario::engine::{share, Simulation};
use fg_smsgw::rates::RateTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pumping_world(
    policy: PolicyConfig,
    seed: u64,
    days: u64,
    sms_per_hour: f64,
) -> (DefendedApp, fg_behavior::sms_pumper::PumperStats, Money) {
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(days);
    let mut app = DefendedApp::new(AppConfig::airline(policy), seed);
    app.add_flight(Flight::new(
        FlightId(1),
        50_000,
        SimTime::from_days(days + 30),
    ));

    let mut sim = Simulation::new(app, seed);
    let (_legit, legit_agent) = share(LegitPopulation::new(
        LegitConfig::default_airline(vec![FlightId(1)], end),
        geo.clone(),
        1_000_000,
    ));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut cfg = SmsPumperConfig::airline_d(FlightId(1), end);
    cfg.sms_per_hour = sms_per_hour;
    let rates = RateTable::default_world();
    let mut rng = StdRng::seed_from_u64(seed);
    let (bot, bot_agent) = share(SmsPumper::new(cfg, ClientId(1), geo, &rates, &mut rng));
    sim.add_agent(bot_agent, SimTime::ZERO);

    let app = sim.run(end);
    let stats = bot.borrow().stats();
    let mut ledger = bot.borrow().ledger();
    ledger.sms_revenue = app.gateway().attacker_revenue();
    (app, stats, ledger.profit())
}

#[test]
fn undefended_pumping_is_profitable_and_premium_targeted() {
    let (app, stats, profit) = pumping_world(PolicyConfig::unprotected(), 1, 3, 300.0);

    assert_eq!(stats.tickets, 5, "provisioning completed");
    assert!(stats.sms_sent > 5_000, "pumped: {}", stats.sms_sent);
    assert!(profit.is_positive(), "undefended pumping profits: {profit}");

    // Premium destinations dominate; money flowed through the gateway to
    // fraudulent carriers.
    let uz = app.gateway().sent_to(CountryCode::new("UZ"));
    let fr = app.gateway().sent_to(CountryCode::new("FR"));
    assert!(uz > fr * 3, "UZ {uz} vs FR {fr}");
    assert!(app.gateway().attacker_revenue() > Money::ZERO);
    assert!(app.gateway().owner_cost() > app.gateway().attacker_revenue());
}

#[test]
fn per_booking_limit_starves_the_pump() {
    let mut policy = PolicyConfig::unprotected();
    policy.booking_sms_limit = Some((3.0, 1.0));
    let (_, defended_stats, defended_profit) = pumping_world(policy, 2, 3, 300.0);
    let (_, open_stats, _) = pumping_world(PolicyConfig::unprotected(), 2, 3, 300.0);

    assert!(
        defended_stats.sms_sent * 20 < open_stats.sms_sent,
        "limited {} vs open {}",
        defended_stats.sms_sent,
        open_stats.sms_sent
    );
    assert!(
        defended_profit < Money::ZERO,
        "the attack loses money under per-booking limits: {defended_profit}"
    );
}

#[test]
fn carrier_deregistration_cuts_revenue_mid_run() {
    // §V operator-side mitigation, applied as a scheduled intervention.
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(2);
    let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::unprotected()), 5);
    app.add_flight(Flight::new(FlightId(1), 50_000, SimTime::from_days(30)));

    let mut sim = Simulation::new(app, 5);
    let mut cfg = SmsPumperConfig::airline_d(FlightId(1), end);
    cfg.sms_per_hour = 300.0;
    let rates = RateTable::default_world();
    let mut rng = StdRng::seed_from_u64(5);
    let (_bot, bot_agent) = share(SmsPumper::new(cfg, ClientId(1), geo, &rates, &mut rng));
    sim.add_agent(bot_agent, SimTime::ZERO);

    // Halfway through, every fraudulent carrier is deregistered.
    sim.schedule(SimTime::from_days(1), |app, _| {
        let frauds = app.gateway().rates().countries();
        for c in frauds {
            app.gateway_mut().network_mut().deregister_fraudulent(c);
        }
    });

    let app = sim.run(end);
    // Revenue accrued only in the first half; cost kept accruing.
    let revenue = app.gateway().attacker_revenue();
    let cost = app.gateway().owner_cost();
    assert!(revenue > Money::ZERO);
    assert!(cost > revenue * 3i64, "cost {cost} vs revenue {revenue}");
}

#[test]
fn quota_exhaustion_harms_legitimate_users() {
    // §II-B: "if the volume of SMS exceeds the application's quotas …
    // legitimate users may be unable to leverage this feature."
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(2);
    let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::unprotected()), 6);
    app.add_flight(Flight::new(FlightId(1), 50_000, SimTime::from_days(30)));
    app.gateway_mut()
        .set_quota(400, fg_core::time::SimDuration::from_days(1));

    let mut sim = Simulation::new(app, 6);
    let (legit, legit_agent) = share(LegitPopulation::new(
        LegitConfig::default_airline(vec![FlightId(1)], end),
        geo.clone(),
        1_000_000,
    ));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut cfg = SmsPumperConfig::airline_d(FlightId(1), end);
    cfg.sms_per_hour = 600.0;
    let rates = RateTable::default_world();
    let mut rng = StdRng::seed_from_u64(6);
    let (_bot, bot_agent) = share(SmsPumper::new(cfg, ClientId(1), geo, &rates, &mut rng));
    sim.add_agent(bot_agent, SimTime::ZERO);

    let app = sim.run(end);
    assert!(app.gateway().rejected_by_quota() > 100, "quota saturated");
    // Legit OTP/BP sends were starved relative to an unquota'd run.
    let sent = legit.borrow().stats();
    assert!(
        sent.otp_sent + sent.bp_sms_sent < 400 * 2,
        "legit SMS crowded out: {sent:?}"
    );
}
