//! Offline API-compatible subset of `rand_distr`: the distributions the
//! workspace actually samples (currently the exponential distribution used
//! for legitimate-traffic inter-arrival times).

#![forbid(unsafe_code)]

pub use rand::distributions::Distribution;
use rand::Rng;

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpError {
    /// The rate parameter λ was not a positive finite number.
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exponential rate must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(λ)`, sampled by inversion.
///
/// # Example
///
/// ```
/// use rand_distr::{Distribution, Exp};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let exp = Exp::new(0.5).unwrap();
/// let v = exp.sample(&mut StdRng::seed_from_u64(1));
/// assert!(v >= 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with rate `lambda`.
    pub fn new(lambda: f64) -> Result<Exp, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit: f64 = rng.gen();
        // unit is in [0, 1), so 1 - unit is in (0, 1] and ln() is finite.
        -(1.0 - unit).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn mean_approximates_reciprocal_rate() {
        let exp = Exp::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let exp = Exp::new(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let v = exp.sample(&mut rng);
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
