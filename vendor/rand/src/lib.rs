//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the exact surface it uses: [`rngs::StdRng`] (a
//! deterministic xoshiro256** generator), the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, uniform range sampling for the integer and float
//! types the simulation draws, [`seq::SliceRandom`], and the
//! [`distributions::Distribution`] abstraction `rand_distr` builds on.
//!
//! Sequences are deterministic per seed and stable across platforms, which
//! is all the simulation requires; no claim of statistical equivalence with
//! upstream `rand` streams is made.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention upstream `rand` documents.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Sampling distributions over a generator.

    use super::Rng;

    /// A distribution of values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range distribution for primitive types.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty => $via:ident),+ $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )+};
    }
    impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
        i32 => next_u32, i64 => next_u64, isize => next_u64);

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        //! Uniform sampling from ranges.

        use crate::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Types with a uniform range sampler. The per-type sampling logic
        /// lives here so [`SampleRange`] can have a single blanket impl
        /// generic over `T` — that shape is what lets integer-literal
        /// ranges (`gen_range(0..1_000_000)`) infer their type from the
        /// surrounding expression, exactly as upstream `rand` does.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Draws uniformly from the half-open range `[lo, hi)`.
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

            /// Draws uniformly from the closed range `[lo, hi]`.
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        }

        /// Range-like arguments accepted by [`Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_half_open(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                T::sample_inclusive(rng, lo, hi)
            }
        }

        // Rejection sampling over the widened domain keeps draws unbiased
        // for every span (`zone` is the largest multiple of `span` that
        // fits in 2^64).
        fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
            debug_assert!(span > 0);
            let domain = u128::from(u64::MAX) + 1;
            let zone = domain - (domain % span);
            loop {
                let raw = u128::from(rng.next_u64());
                if raw < zone {
                    return raw % span;
                }
            }
        }

        macro_rules! impl_uniform_uint {
            ($($t:ty),+ $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                        let span = (hi - lo) as u128;
                        lo + sample_span(rng, span) as $t
                    }

                    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                        let span = (hi - lo) as u128 + 1;
                        if span > u128::from(u64::MAX) {
                            return rng.next_u64() as $t;
                        }
                        lo + sample_span(rng, span) as $t
                    }
                }
            )+};
        }
        impl_uniform_uint!(u8, u16, u32, u64, usize);

        macro_rules! impl_uniform_int {
            ($($t:ty),+ $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                        let span = (hi as i128 - lo as i128) as u128;
                        (lo as i128 + sample_span(rng, span) as i128) as $t
                    }

                    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u128::from(u64::MAX) {
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + sample_span(rng, span) as i128) as $t
                    }
                }
            )+};
        }
        impl_uniform_int!(i8, i16, i32, i64, isize);

        macro_rules! impl_uniform_float {
            ($($t:ty => $unit:expr),+ $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                        let unit = $unit(rng);
                        lo + (hi - lo) * unit
                    }

                    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                        let unit = $unit(rng);
                        lo + (hi - lo) * unit
                    }
                }
            )+};
        }
        impl_uniform_float!(
            f64 => |rng: &mut R| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
            f32 => |rng: &mut R| (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32),
        );
    }

    pub use uniform::{SampleRange, SampleUniform};
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12-based `StdRng` — the sequences differ — but
    /// deterministic per seed, fast, and statistically strong enough for
    /// simulation workloads.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API familiarity; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
