//! Offline API-compatible subset of `proptest`.
//!
//! Supports the strategy surface this workspace uses — numeric `Range`s,
//! tuples of strategies, `any::<bool>()`, and `collection::vec` — driven by
//! a deterministic runner that executes a fixed number of cases per
//! property. There is no shrinking: a failing case reports its inputs via
//! the panic message instead.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = rng.below_u128(span);
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )+};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            v.min(self.end - (self.end - self.start) * f64::EPSILON)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            let wide = Range {
                start: f64::from(self.start),
                end: f64::from(self.end),
            };
            wide.generate(rng) as f32
        }
    }

    /// Strategy generating uniformly random `bool`s (`any::<bool>()`).
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
    );
}

pub mod arbitrary {
    //! The `Arbitrary` trait behind `any::<T>()`.

    use crate::strategy::{AnyBool, Strategy};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<A: arbitrary::Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification for collection strategies: either an exact
    /// `usize` or a half-open `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for `Vec`s with `size` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below_u128(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner and its error type.

    use std::fmt;

    /// Number of cases executed per property (matches upstream's default).
    pub const CASES: u64 = 256;

    /// A failed or rejected test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG feeding the strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniformly random value in `[0, bound)`; `bound` must fit the
        /// strategies' span arithmetic (`bound <= u64::MAX + 1`).
        pub fn below_u128(&mut self, bound: u128) -> u64 {
            assert!(bound > 0 && bound <= (u64::MAX as u128) + 1);
            // Widening-multiply range reduction; the bias is far below
            // anything a 256-case property test could observe.
            ((u128::from(self.next_u64()) * bound) >> 64) as u64
        }

        /// A uniformly random `f64` in `[0, 1)` with 53 random bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for b in text.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Runs `body` for [`CASES`] deterministic cases, panicking on the first
    /// failure with the case number (re-runnable: seeding depends only on
    /// the property name and case index).
    pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let base = fnv1a(name);
        for case in 0..CASES {
            let mut rng = TestRng::new(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
            if let Err(e) = body(&mut rng) {
                panic!("property `{name}` failed at case {case}/{CASES}: {e}");
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test module needs in scope.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |prop_rng| {
                let ($($arg,)+) = $crate::strategy::Strategy::generate(
                    &($($strat,)+),
                    prop_rng,
                );
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property, failing the current case (rather
/// than panicking) so the runner can report which case failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..10_000 {
            let v = (5u8..9).generate(&mut rng);
            assert!((5..9).contains(&v));
            let s = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&s));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_is_reachable() {
        let mut rng = TestRng::new(2);
        let mut high = false;
        for _ in 0..1_000 {
            let v = (0u64..u64::MAX).generate(&mut rng);
            high |= v > u64::MAX / 2;
        }
        assert!(high, "upper half of u64 range never sampled");
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = TestRng::new(3);
        for _ in 0..1_000 {
            let exact = crate::collection::vec(0u8..10, 7).generate(&mut rng);
            assert_eq!(exact.len(), 7);
            let ranged = crate::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        crate::test_runner::run("det", |rng| {
            first.push((0u32..1_000).generate(rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run("det", |rng| {
            second.push((0u32..1_000).generate(rng));
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), crate::test_runner::CASES as usize);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_the_property_name() {
        crate::test_runner::run("always_fails", |_| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }

    proptest! {
        /// The macro itself: patterns (incl. `mut`), tuples, vec, any.
        #[test]
        fn macro_surface(
            mut xs in crate::collection::vec((0u8..4, any::<bool>()), 1..20),
            scale in 1u64..5,
        ) {
            xs.push((0, true));
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(scale < 5, true);
        }
    }
}
