//! Offline API-compatible subset of `serde`.
//!
//! The build environment has no crates registry, so the workspace vendors a
//! compact serialization framework under the same crate name. Instead of the
//! upstream visitor-based architecture, everything routes through one
//! in-memory tree, [`value::Value`]:
//!
//! * [`Serialize`] converts a type **to** a [`value::Value`];
//! * [`Deserialize`] reconstructs a type **from** a [`value::Value`];
//! * the derive macros (re-exported from `serde_derive`) generate both for
//!   structs and enums, mirroring upstream's externally-tagged enum format;
//! * the `serde_json` vendor crate renders and parses `Value` as JSON text.
//!
//! The surface is exactly what this workspace uses; it is not a general
//! replacement for serde.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The in-memory data model shared by `Serialize` and `Deserialize`.

    use std::fmt;

    /// A serialized value tree (the JSON data model plus distinct signed /
    /// unsigned integers so `u64` and `i64` round-trip losslessly).
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// Null / unit.
        Null,
        /// Boolean.
        Bool(bool),
        /// Signed integer.
        Int(i64),
        /// Unsigned integer (used when the value exceeds `i64::MAX`).
        UInt(u64),
        /// Floating point.
        Float(f64),
        /// String.
        String(String),
        /// Ordered sequence.
        Array(Vec<Value>),
        /// Ordered key/value map (declaration order for derived structs).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(pairs) => Some(pairs),
                _ => None,
            }
        }

        /// The array elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// A signed-integer view accepting both integer variants.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                Value::UInt(u) => i64::try_from(*u).ok(),
                _ => None,
            }
        }

        /// An unsigned-integer view accepting both integer variants.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) => u64::try_from(*i).ok(),
                Value::UInt(u) => Some(*u),
                _ => None,
            }
        }

        /// A float view accepting every numeric variant.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(i) => Some(*i as f64),
                Value::UInt(u) => Some(*u as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }

        /// Looks up a key in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()
                .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        }

        /// A short human-readable name of the variant, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "float",
                Value::String(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }

    /// Deserialization error.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct DeError {
        message: String,
    }

    impl DeError {
        /// Creates an error with the given message.
        pub fn custom(message: impl Into<String>) -> Self {
            DeError {
                message: message.into(),
            }
        }

        /// A "found the wrong shape" error.
        pub fn mismatch(expected: &str, found: &Value) -> Self {
            DeError::custom(format!("expected {expected}, found {}", found.kind()))
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for DeError {}

    /// Looks up a required struct field in a decoded object (helper used by
    /// the `Deserialize` derive).
    pub fn get_field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
    }
}

use value::{DeError, Value};

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::mismatch(stringify!($t), v))
            }
        }
    )+};
}
impl_serde_signed!(i8, i16, i32, i64);

macro_rules! impl_serde_unsigned {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::mismatch(stringify!($t), v))
            }
        }
    )+};
}
impl_serde_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .ok_or_else(|| DeError::mismatch("usize", v))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_i64()
            .and_then(|i| isize::try_from(i).ok())
            .ok_or_else(|| DeError::mismatch("isize", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::mismatch("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::mismatch("f32", v))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::mismatch("single-character string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::mismatch("string", v))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::mismatch("null", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {found}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::mismatch("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

fn key_to_string(key: Value) -> String {
    match key {
        Value::String(s) => s,
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => f.to_string(),
        other => format!("{other:?}"),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    // Try the string itself first, then numeric reinterpretations — enough
    // to round-trip every key type the workspace uses.
    if let Ok(k) = K::from_value(&Value::String(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(f) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Float(f)) {
            return Ok(k);
        }
    }
    Err(DeError::custom(format!(
        "cannot rebuild map key from `{key}`"
    )))
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        // Hash iteration order is arbitrary; sort for stable artifacts.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::mismatch("object", v))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::mismatch("object", v))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        // Hash iteration order is arbitrary; sort the rendered values for
        // stable artifacts.
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
    }

    #[test]
    fn u64_beyond_i64_uses_uint() {
        let big = u64::MAX;
        assert_eq!(big.to_value(), Value::UInt(big));
        assert_eq!(u64::from_value(&Value::UInt(big)), Ok(big));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Int(3)), Ok(Some(3)));
    }

    #[test]
    fn vec_and_array_round_trip() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()), Ok(xs));
        let arr = [9u8, 8, 7];
        assert_eq!(<[u8; 3]>::from_value(&arr.to_value()), Ok(arr));
        assert!(<[u8; 4]>::from_value(&arr.to_value()).is_err());
    }

    #[test]
    fn maps_serialize_with_sorted_string_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert(2u32, "b".to_owned());
        m.insert(1u32, "a".to_owned());
        let v = m.to_value();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "1");
        assert_eq!(pairs[1].0, "2");
        let back = std::collections::HashMap::<u32, String>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u8, -2i64, 0.5f64);
        assert_eq!(<(u8, i64, f64)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn errors_name_the_mismatch() {
        let e = u64::from_value(&Value::String("x".into())).unwrap_err();
        assert!(e.to_string().contains("expected u64"));
        let missing = value::get_field(&[], "absent").unwrap_err();
        assert!(missing.to_string().contains("absent"));
    }
}
