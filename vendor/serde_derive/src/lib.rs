//! Derive macros for the vendored serde subset.
//!
//! Upstream `serde_derive` rests on `syn`/`quote`; neither is available in
//! this registry-less environment, so the item is parsed directly from its
//! `proc_macro` token stream. Supported shapes — the ones this workspace
//! declares — are structs (named, tuple, unit, optionally generic) and
//! enums whose variants are unit, tuple, or struct-like. Enums use the
//! upstream externally-tagged representation: `"Variant"` for unit
//! variants, `{"Variant": ...}` otherwise.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    kind: Kind,
}

struct GenericParam {
    /// Bare parameter name as used in the type position (`T`, `N`, `'a`).
    name: String,
    /// Full declaration including original bounds (`T: Clone`, `const N: usize`).
    decl: String,
    /// Whether a `::serde` trait bound may be attached (type params only).
    is_type: bool,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            // Outer attribute body: `[...]`.
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.next();
                }
                _ => panic!("serde derive: malformed attribute"),
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    /// Parses `<...>` generics if present.
    fn parse_generics(&mut self) -> Vec<GenericParam> {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
            _ => return Vec::new(),
        }
        self.next(); // consume '<'
        let mut depth = 1usize;
        let mut segments: Vec<Vec<TokenTree>> = vec![Vec::new()];
        while depth > 0 {
            let tok = self.next().expect("serde derive: unclosed generics");
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        segments.push(Vec::new());
                        continue;
                    }
                    _ => {}
                }
            }
            segments.last_mut().expect("segment exists").push(tok);
        }
        segments
            .into_iter()
            .filter(|seg| !seg.is_empty())
            .map(|seg| {
                let decl = render_tokens(&seg);
                let first = seg.first().expect("non-empty segment");
                match first {
                    TokenTree::Punct(p) if p.as_char() == '\'' => {
                        let name = render_tokens(&seg[..2.min(seg.len())]);
                        GenericParam {
                            name,
                            decl,
                            is_type: false,
                        }
                    }
                    TokenTree::Ident(id) if id.to_string() == "const" => {
                        let name = match seg.get(1) {
                            Some(TokenTree::Ident(n)) => n.to_string(),
                            other => panic!("serde derive: malformed const param {other:?}"),
                        };
                        GenericParam {
                            name,
                            decl,
                            is_type: false,
                        }
                    }
                    TokenTree::Ident(id) => GenericParam {
                        name: id.to_string(),
                        decl,
                        is_type: true,
                    },
                    other => panic!("serde derive: unsupported generic param {other:?}"),
                }
            })
            .collect()
    }
}

fn render_tokens(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in tokens {
        let _ = write!(out, "{t} ");
    }
    out.trim().to_owned()
}

/// Splits a token list on top-level commas, treating `<...>` as nesting
/// (parens/brackets/braces are already nested inside `Group` tokens).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().expect("segment exists").push(t.clone());
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut cursor = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        cursor.skip_attributes();
        if cursor.peek().is_none() {
            break;
        }
        cursor.skip_visibility();
        fields.push(cursor.expect_ident());
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field name, found {other:?}"),
        }
        // Skip the type, angle-aware, up to the next top-level comma.
        let mut angle_depth = 0usize;
        loop {
            match cursor.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    cursor.next();
                    match c {
                        '<' => angle_depth += 1,
                        '>' => angle_depth = angle_depth.saturating_sub(1),
                        ',' if angle_depth == 0 => break,
                        _ => {}
                    }
                }
                Some(_) => {
                    cursor.next();
                }
            }
        }
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        cursor.skip_attributes();
        if cursor.peek().is_none() {
            break;
        }
        let name = cursor.expect_ident();
        let kind = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                cursor.next();
                VariantKind::Tuple(split_top_level_commas(&inner).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        loop {
            match cursor.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident();
    let name = cursor.expect_ident();
    let generics = cursor.parse_generics();
    match keyword.as_str() {
        "struct" => {
            // A `where` clause would sit between generics and the body; the
            // workspace has none, so reject loudly rather than mis-parse.
            match cursor.peek() {
                Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                    panic!("serde derive: `where` clauses are not supported")
                }
                _ => {}
            }
            match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                    name,
                    generics,
                    kind: Kind::NamedStruct(parse_named_fields(g.stream())),
                },
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Item {
                        name,
                        generics,
                        kind: Kind::TupleStruct(split_top_level_commas(&inner).len()),
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                    name,
                    generics,
                    kind: Kind::UnitStruct,
                },
                other => panic!("serde derive: unsupported struct body {other:?}"),
            }
        }
        "enum" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                generics,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde derive: malformed enum body {other:?}"),
        },
        other => panic!("serde derive: only structs and enums are supported, found `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let decls: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            if p.is_type {
                if p.decl.contains(':') {
                    format!("{} + {trait_bound}", p.decl)
                } else {
                    format!("{}: {trait_bound}", p.decl)
                }
            } else {
                p.decl.clone()
            }
        })
        .collect();
    let names: Vec<String> = item.generics.iter().map(|p| p.name.clone()).collect();
    (
        format!("<{}>", decls.join(", ")),
        format!("<{}>", names.join(", ")),
    )
}

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(String::from(\"{key}\"), {value_expr})")
}

fn generate_serialize(item: &Item) -> String {
    let (impl_gen, ty_gen) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!(
                "::serde::value::Value::Object(vec![{}])",
                entries.join(", ")
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::value::Value::Null".to_owned(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::String(String::from(\"{vname}\"))"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_owned()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::value::Value::Array(vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::value::Value::Object(vec![{}])",
                                binds.join(", "),
                                obj_entry(vname, &inner)
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value({f})")))
                                .collect();
                            let inner = format!(
                                "::serde::value::Value::Object(vec![{}])",
                                entries.join(", ")
                            );
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::value::Value::Object(vec![{}])",
                                fields.join(", "),
                                obj_entry(vname, &inner)
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_gen} ::serde::Serialize for {name}{ty_gen} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let (impl_gen, ty_gen) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::value::get_field(fields, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let fields = v.as_object().ok_or_else(|| ::serde::value::DeError::mismatch(\"object\", v))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::value::DeError::mismatch(\"array\", v))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::value::DeError::custom(format!(\"expected {n} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!(
            "match v {{\n\
                 ::serde::value::Value::Null => Ok({name}),\n\
                 other => Err(::serde::value::DeError::mismatch(\"null\", other)),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!("\"{vname}\" => Ok({name}::{vname})"),
                        VariantKind::Tuple(1) => format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                        ),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| ::serde::value::DeError::mismatch(\"array\", inner))?;\n\
                                     if items.len() != {n} {{\n\
                                         return Err(::serde::value::DeError::custom(format!(\"expected {n} elements, found {{}}\", items.len())));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::value::get_field(fields, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let fields = inner.as_object().ok_or_else(|| ::serde::value::DeError::mismatch(\"object\", inner))?;\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::value::Value::String(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => Err(::serde::value::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::value::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {payload}\n\
                             other => Err(::serde::value::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::value::DeError::mismatch(\"enum representation\", other)),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                payload = if payload_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", payload_arms.join(",\n"))
                },
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_gen} ::serde::Deserialize for {name}{ty_gen} {{\n\
             fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::value::DeError> {{ {body} }}\n\
         }}"
    )
}
