//! Offline API-compatible subset of `serde_json`.
//!
//! Renders and parses JSON text over the vendored `serde` crate's
//! [`Value`] data model. The compact and pretty writers match upstream
//! formatting (`,`/`:` separators compact, two-space indent and `"key": v`
//! pretty), so artifacts written by this crate look identical to ones
//! written by the real serde_json.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Error produced while converting, rendering, or parsing JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::DeError> for Error {
    fn from(e: serde::value::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Serializes to compact JSON (no whitespace).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (two-space indent, as upstream).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; upstream errors, which would force every
        // caller to handle an impossible case — emit null instead.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Keep the fractional point so the value re-parses as a float.
        let _ = fmt::Write::write_fmt(out, format_args!("{f:.1}"));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                }
                _ => {
                    // Bulk-copy the run of plain bytes up to the next quote or
                    // escape. `"` and `\` are ASCII and never appear inside a
                    // multi-byte UTF-8 sequence, so the run boundary is always
                    // a code-point boundary and the slice is valid UTF-8
                    // (the input arrived as a &str). Copying per-run instead
                    // of per-character keeps parsing linear in input size —
                    // multi-megabyte trace artifacts made the difference
                    // between milliseconds and minutes.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let run =
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is UTF-8");
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        // Surrogate pair: a high surrogate must be followed by `\u` + low.
        if (0xD800..=0xDBFF).contains(&first) {
            if !self.eat_literal("\\u") {
                return Err(self.error("unpaired high surrogate"));
            }
            let second = self.parse_hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"));
        }
        if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.error("unpaired low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_format_matches_upstream() {
        let v = Value::Object(vec![
            ("x".into(), Value::Int(7)),
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"x\": 7,\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn compact_format_has_no_whitespace() {
        let v = Value::Object(vec![
            ("a".into(), Value::Bool(true)),
            ("b".into(), Value::Null),
        ]);
        assert_eq!(to_string(&v).unwrap(), "{\"a\":true,\"b\":null}");
    }

    #[test]
    fn integral_floats_keep_the_point() {
        assert_eq!(to_string(&7.0f64).unwrap(), "7.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&-3.0f64).unwrap(), "-3.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t✓";
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn plain_runs_copy_in_bulk_around_escapes() {
        // Exercises the run-copy fast path: multi-byte code points adjacent
        // to escapes, runs at both ends, and back-to-back escapes.
        let original = "héllo\\wörld\"ünïcode✓😀\n\t\"tail";
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "Aé😀");
    }

    #[test]
    fn numbers_pick_the_right_variant() {
        assert_eq!(from_str::<Value>("42").unwrap(), Value::Int(42));
        assert_eq!(from_str::<Value>("-9").unwrap(), Value::Int(-9));
        assert_eq!(
            from_str::<Value>("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str::<Value>("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(from_str::<Value>("2e3").unwrap(), Value::Float(2000.0));
    }

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![(
            "nested".into(),
            Value::Array(vec![
                Value::Object(vec![("k".into(), Value::String("v".into()))]),
                Value::Float(0.5),
                Value::Null,
            ]),
        )]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str::<Value>(&render).unwrap(), v);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
