//! Offline API-compatible subset of `criterion`.
//!
//! Provides the harness surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and `Bencher::iter`
//! — backed by a deliberately small measurement loop: a warm-up pass, then
//! a timed pass, reporting mean time per iteration. Pass `--test` (as
//! `cargo test --benches` does) to run each benchmark body once and skip
//! measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_benchmark(name, sample_size, test_mode, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Benchmarks a closure under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &label,
            self.effective_sample_size(),
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmarks a closure over a borrowed input under `group/name`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into the string label benchmarks report under.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    ran: bool,
}

impl Bencher {
    /// Times `routine`, running it enough times to produce a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.ran = true;
        if self.iterations <= 1 {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations = self.iterations.max(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    // Test mode: execute the body once so assertions run, skip measurement.
    if test_mode {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
            ran: false,
        };
        f(&mut b);
        println!("{label}: ok (test mode)");
        return;
    }

    // Calibration: run single iterations until ~10ms elapses to pick an
    // iteration count that keeps the whole benchmark bounded.
    let mut probe = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
        ran: false,
    };
    let calibration_start = Instant::now();
    let mut probes = 0u64;
    while calibration_start.elapsed() < Duration::from_millis(10) && probes < 1_000 {
        f(&mut probe);
        probes += 1;
    }
    if !probe.ran {
        println!("{label}: no iterations recorded");
        return;
    }
    let per_iter = probe.elapsed.as_secs_f64() / probe.iterations.max(1) as f64;
    // Budget ~200ms of measurement across the requested samples.
    let budget = 0.2_f64;
    let total_iters = (budget / per_iter.max(1e-9)).clamp(1.0, 5e7) as u64;
    let iters_per_sample = (total_iters / sample_size as u64).max(1);

    let mut elapsed = Duration::ZERO;
    let mut iterations = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iterations: iters_per_sample,
            elapsed: Duration::ZERO,
            ran: false,
        };
        f(&mut b);
        elapsed += b.elapsed;
        iterations += b.iterations;
    }
    let mean = Duration::from_secs_f64(elapsed.as_secs_f64() / iterations.max(1) as f64);
    println!(
        "{label}: {} per iteration ({iterations} iterations)",
        format_duration(mean)
    );
}

/// Declares a benchmark group runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_render_labels() {
        assert_eq!(
            BenchmarkId::new("keyed_limiter", 100).into_benchmark_id(),
            "keyed_limiter/100"
        );
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iterations: 25,
            elapsed: Duration::ZERO,
            ran: false,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 25);
        assert!(b.ran);
    }

    #[test]
    fn harness_runs_everything_in_test_mode() {
        let mut c = Criterion {
            sample_size: 10,
            test_mode: true,
        };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("a", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("b", 3), &3, |b, &x| {
            b.iter(|| ran += x);
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn durations_format_human_readably() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
