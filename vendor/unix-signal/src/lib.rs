//! Minimal POSIX signal-flag shim.
//!
//! `fg-serve` needs exactly one thing from the operating system's signal
//! machinery: "has anyone asked this process to shut down?" This crate
//! installs handlers for `SIGTERM` and `SIGINT` that set a process-wide
//! atomic flag, which the serving loop polls between requests to begin a
//! graceful drain. Nothing else — no handler chaining, no masks, no
//! self-pipe — so the whole libc surface is the classic `signal(2)` entry
//! point.
//!
//! The handler body is a single relaxed atomic store, which is
//! async-signal-safe. The two FFI call sites are the only `unsafe` code in
//! the workspace; the crate root pins `#![deny(unsafe_code)]` and scopes
//! `#[allow]` to the shim module so nothing else can grow one silently.
//!
//! On non-Unix targets [`install`] is a no-op that still returns the flag,
//! so callers compile everywhere and simply never observe a signal.

// fg-analyze: allow(missing-forbid-unsafe): signal(2) FFI requires two scoped unsafe call sites
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a `SIGTERM` or `SIGINT` has been delivered (or [`notify`] ran).
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `SIGINT` — interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` — polite termination request, the orchestration default.
pub const SIGTERM: i32 = 15;

#[cfg(unix)]
mod shim {
    /// Handlers take the signal number; ours ignores it.
    type SigHandler = extern "C" fn(i32);

    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            /// POSIX `signal(2)`. Returns the previous disposition (opaque
            /// here); `usize::MAX` is `SIG_ERR`.
            pub fn signal(signum: i32, handler: super::SigHandler) -> usize;
        }
    }

    extern "C" fn on_signal(_signum: i32) {
        // A relaxed store is async-signal-safe: no allocation, no locks.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    #[allow(unsafe_code)]
    mod raise_ffi {
        extern "C" {
            /// C89 `raise(3)`: deliver a signal to the calling process.
            pub fn raise(signum: i32) -> i32;
        }
    }

    #[allow(unsafe_code)]
    pub fn install_handlers() {
        // Safety: `signal` is called with a valid signal number and a
        // handler that only performs an atomic store. Replacing the
        // disposition for SIGTERM/SIGINT is this shim's documented purpose.
        unsafe {
            ffi::signal(super::SIGTERM, on_signal);
            ffi::signal(super::SIGINT, on_signal);
        }
    }

    #[allow(unsafe_code)]
    pub fn raise(signum: i32) -> i32 {
        // Safety: raise(3) with a valid signal number; with our handler
        // installed the only effect is the atomic store above.
        unsafe { raise_ffi::raise(signum) }
    }
}

/// Installs the `SIGTERM`/`SIGINT` handlers (idempotent) and returns the
/// shutdown flag to poll. On non-Unix targets the flag is returned without
/// installing anything.
pub fn install() -> &'static AtomicBool {
    #[cfg(unix)]
    shim::install_handlers();
    &SHUTDOWN
}

/// `true` once a shutdown signal has been delivered.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Sets the flag as if a signal had arrived — the safe, in-process path the
/// integration tests and programmatic shutdowns use.
pub fn notify() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Clears the flag (test isolation between cases in one process).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

/// Delivers `signum` to this process (Unix only) — the safe wrapper the
/// drain tests use to exercise the real `SIGTERM` path in-process. Call
/// [`install`] first, or the process takes the signal's default action
/// (for `SIGTERM`, termination). Returns `false` on failure or non-Unix.
pub fn raise_self(signum: i32) -> bool {
    #[cfg(unix)]
    {
        shim::raise(signum) == 0
    }
    #[cfg(not(unix))]
    {
        let _ = signum;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_follows_notify_reset() {
        reset();
        assert!(!shutdown_requested());
        notify();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn installed_handler_catches_a_real_sigterm() {
        reset();
        let flag = install();
        assert!(!flag.load(Ordering::Relaxed));
        assert!(raise_self(SIGTERM), "raise(3) failed");
        // Signal delivery to the calling thread is synchronous for raise().
        assert!(shutdown_requested(), "handler did not set the flag");
        reset();
    }
}
